//! Miss-ratio models in the style of Smith's design target miss ratios.

use serde::{Deserialize, Serialize};

/// A miss ratio as a function of cache geometry.
///
/// Implementations must return values in `[0, 1]`.
pub trait MissRatioModel {
    /// The miss ratio of a `cache_bytes` cache with `line_bytes` lines.
    fn miss_ratio(&self, cache_bytes: f64, line_bytes: f64) -> f64;

    /// Convenience: the hit ratio `1 − m`.
    fn hit_ratio(&self, cache_bytes: f64, line_bytes: f64) -> f64 {
        1.0 - self.miss_ratio(cache_bytes, line_bytes)
    }
}

/// Relative miss ratio versus line size at the 16 KB reference point,
/// `(line_bytes, m(L) / m(4 B))`.
///
/// The shape is the canonical one from trace-driven studies (Smith 1987,
/// Przybylski 1990): each doubling of the line roughly multiplies the
/// miss ratio by 0.62–0.67 while spatial locality lasts, with the gains
/// drying up past 64 B and reversing at 256 B.
const LINE_SHAPE: [(f64, f64); 7] = [
    (4.0, 1.0),
    (8.0, 0.62),
    (16.0, 0.403),
    (32.0, 0.270),
    (64.0, 0.216),
    (128.0, 0.205),
    (256.0, 0.236),
];

/// A calibrated design-target-style miss-ratio model:
///
/// ```text
/// m(C, L) = m₀ · (C₀/C)^σ · shape(L) · (1 + κ·L/C)
/// ```
///
/// with `shape` the tabulated 16 KB line-size profile (geometrically
/// interpolated) and `κ·L/C` the line-pollution term that makes large
/// lines pay in small caches. Defaults are calibrated so the four
/// Figure 6 panels select Smith's published optimal line sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignTargetModel {
    /// Miss ratio of the reference cache (16 KB, 4 B lines).
    pub base_miss: f64,
    /// Reference cache size in bytes.
    pub base_cache: f64,
    /// Cache-size exponent `σ` (miss ratio ∝ C^−σ).
    pub size_exponent: f64,
    /// Pollution coefficient `κ`.
    pub pollution: f64,
}

impl Default for DesignTargetModel {
    fn default() -> Self {
        DesignTargetModel {
            base_miss: 0.12,
            base_cache: 16.0 * 1024.0,
            size_exponent: 0.30,
            pollution: 16.0,
        }
    }
}

impl DesignTargetModel {
    /// Geometric interpolation of the tabulated line shape.
    fn shape(line_bytes: f64) -> f64 {
        let l = line_bytes.max(1.0);
        let first = LINE_SHAPE[0];
        let last = LINE_SHAPE[LINE_SHAPE.len() - 1];
        if l <= first.0 {
            // Below the table: spatial locality loss, extrapolate with
            // the first segment's ratio.
            let (l0, v0) = first;
            let (l1, v1) = LINE_SHAPE[1];
            let slope = (v1 / v0).ln() / (l1 / l0).ln();
            return v0 * (l / l0).powf(slope);
        }
        if l >= last.0 {
            let (l0, v0) = LINE_SHAPE[LINE_SHAPE.len() - 2];
            let (l1, v1) = last;
            let slope = (v1 / v0).ln() / (l1 / l0).ln();
            return v1 * (l / l1).powf(slope);
        }
        for pair in LINE_SHAPE.windows(2) {
            let (l0, v0) = pair[0];
            let (l1, v1) = pair[1];
            if l >= l0 && l <= l1 {
                let t = (l / l0).ln() / (l1 / l0).ln();
                return v0 * (v1 / v0).powf(t);
            }
        }
        unreachable!("line size covered by table bounds");
    }
}

impl MissRatioModel for DesignTargetModel {
    fn miss_ratio(&self, cache_bytes: f64, line_bytes: f64) -> f64 {
        let size_factor = (self.base_cache / cache_bytes).powf(self.size_exponent);
        let pollution = 1.0 + self.pollution * line_bytes / cache_bytes;
        (self.base_miss * size_factor * Self::shape(line_bytes) * pollution).clamp(0.0, 1.0)
    }
}

/// A two-parameter power-law model: `m(C, L) = k·C^(−σ)` with a fixed
/// √L spatial-locality factor — the textbook "square-root rule"
/// (miss ratio halves when the cache quadruples).
///
/// Useful as a sanity alternative to [`DesignTargetModel`]: the Figure 6
/// *selector agreement* (Smith ≡ Eq. 19) must hold for any model, even
/// one whose optima differ from Smith's published choices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawModel {
    /// Miss ratio at 1 KB with 16-byte lines.
    pub k: f64,
    /// Cache-size exponent (≈ 0.5 for the square-root rule).
    pub sigma: f64,
}

impl Default for PowerLawModel {
    fn default() -> Self {
        PowerLawModel {
            k: 0.25,
            sigma: 0.5,
        }
    }
}

impl MissRatioModel for PowerLawModel {
    fn miss_ratio(&self, cache_bytes: f64, line_bytes: f64) -> f64 {
        let size = (1024.0 / cache_bytes).powf(self.sigma);
        let spatial = (16.0 / line_bytes).sqrt();
        (self.k * size * spatial).clamp(0.0, 1.0)
    }
}

/// A miss-ratio model backed by explicit `(line_bytes, miss_ratio)`
/// measurements at one cache size — e.g. points produced by the
/// `simcache` sweep helpers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableModel {
    cache_bytes: f64,
    points: Vec<(f64, f64)>,
}

impl TableModel {
    /// Creates a table model; points are sorted by line size.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains a miss ratio outside
    /// `[0, 1]`.
    pub fn new(cache_bytes: f64, mut points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "table model needs at least one point");
        for &(l, m) in &points {
            assert!(l > 0.0, "line size must be positive");
            assert!((0.0..=1.0).contains(&m), "miss ratio {m} outside [0, 1]");
        }
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        TableModel {
            cache_bytes,
            points,
        }
    }

    /// The cache size the table was measured at.
    pub fn cache_bytes(&self) -> f64 {
        self.cache_bytes
    }

    /// The tabulated points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl MissRatioModel for TableModel {
    /// Log-linear interpolation in line size; the cache-size argument is
    /// ignored (the table is for one size).
    fn miss_ratio(&self, _cache_bytes: f64, line_bytes: f64) -> f64 {
        let pts = &self.points;
        if line_bytes <= pts[0].0 {
            return pts[0].1;
        }
        if line_bytes >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for pair in pts.windows(2) {
            let (l0, m0) = pair[0];
            let (l1, m1) = pair[1];
            if line_bytes >= l0 && line_bytes <= l1 {
                let t = (line_bytes / l0).ln() / (l1 / l0).ln();
                return m0 + (m1 - m0) * t;
            }
        }
        pts[pts.len() - 1].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_at_knots() {
        for (l, v) in LINE_SHAPE {
            assert!((DesignTargetModel::shape(l) - v).abs() < 1e-12, "L={l}");
        }
    }

    #[test]
    fn shape_interpolates_between_knots() {
        let v = DesignTargetModel::shape(24.0);
        assert!(v < 0.403 && v > 0.270);
    }

    #[test]
    fn miss_ratio_decreases_with_cache_size() {
        let m = DesignTargetModel::default();
        assert!(m.miss_ratio(8_192.0, 32.0) > m.miss_ratio(16_384.0, 32.0));
        assert!(m.miss_ratio(16_384.0, 32.0) > m.miss_ratio(65_536.0, 32.0));
    }

    #[test]
    fn line_size_sweet_spot_moves_with_cache_size() {
        // The miss-minimising line is larger for larger caches (pollution
        // term) — the paper's "larger line sizes are better in larger
        // caches".
        let model = DesignTargetModel::default();
        let best_line = |cache: f64| {
            [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
                .into_iter()
                .min_by(|&a, &b| {
                    model
                        .miss_ratio(cache, a)
                        .total_cmp(&model.miss_ratio(cache, b))
                })
                .unwrap()
        };
        assert!(best_line(128.0 * 1024.0) >= best_line(2.0 * 1024.0));
    }

    #[test]
    fn miss_ratio_is_clamped() {
        let model = DesignTargetModel {
            base_miss: 0.9,
            ..DesignTargetModel::default()
        };
        let m = model.miss_ratio(256.0, 256.0);
        assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn hit_ratio_complements_miss_ratio() {
        let model = DesignTargetModel::default();
        let c = 16_384.0;
        assert!((model.hit_ratio(c, 32.0) + model.miss_ratio(c, 32.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_model_interpolates_and_clamps() {
        let t = TableModel::new(8_192.0, vec![(8.0, 0.10), (32.0, 0.04), (16.0, 0.06)]);
        assert_eq!(t.miss_ratio(0.0, 4.0), 0.10); // below range
        assert_eq!(t.miss_ratio(0.0, 64.0), 0.04); // above range
        assert_eq!(t.miss_ratio(0.0, 16.0), 0.06); // exact knot
        let mid = t.miss_ratio(0.0, 11.3); // between 8 and 16
        assert!(mid < 0.10 && mid > 0.06);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_table_panics() {
        TableModel::new(8_192.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_miss_ratio_panics() {
        TableModel::new(8_192.0, vec![(8.0, 1.5)]);
    }

    #[test]
    fn power_law_follows_square_root_rule() {
        let m = PowerLawModel::default();
        let at = |c: f64| m.miss_ratio(c, 32.0);
        // Quadrupling the cache halves the miss ratio (σ = 0.5).
        assert!((at(4.0 * 8192.0) / at(8192.0) - 0.5).abs() < 1e-12);
        // Larger lines help monotonically under this simple model.
        assert!(m.miss_ratio(8192.0, 64.0) < m.miss_ratio(8192.0, 16.0));
        // Clamped to a probability.
        assert!(m.miss_ratio(1.0, 1.0) <= 1.0);
    }

    #[test]
    fn sixteen_k_shape_has_interior_minimum() {
        let model = DesignTargetModel::default();
        let m = |l: f64| model.miss_ratio(16_384.0, l);
        assert!(m(128.0) < m(4.0));
        assert!(
            m(256.0) > m(128.0) * 0.99,
            "gains dry up at very large lines"
        );
    }
}
