//! Figure 6: validation against Smith's design targets.
//!
//! Each panel fixes a cache size, a bus width `D` and a memory
//! technology `Delay = T_lat + T_byte × bytes`. Normalising to CPU
//! cycles with the bus speed `β` as the free variable gives the fill
//! timing `c(β) = (T_lat / (T_byte·D))·β + 1` (the `+1` carries the hit
//! cycle, so Smith's latency constant is `c − 1`). The panel plots the
//! *reduced memory delay per reference* (Eq. 19) of each candidate line
//! against `β`; the line with the highest positive curve is optimal, and
//! it must match Smith's published choice.

use crate::model::MissRatioModel;
use serde::{Deserialize, Serialize};
use tradeoff::linesize::{
    optimal_line_eq19, optimal_line_smith, reduced_delay, FillTiming, LineCandidate,
};
use tradeoff::{HitRatio, TradeoffError};

/// The candidate line sizes the panels consider.
pub const CANDIDATE_LINES: [f64; 7] = [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// One panel of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig6Panel {
    /// Panel label, e.g. `"(a) 16K full blocking data cache"`.
    pub name: &'static str,
    /// Cache capacity in bytes.
    pub cache_bytes: f64,
    /// Bus width `D` in bytes.
    pub bus_bytes: f64,
    /// Memory access latency in nanoseconds.
    pub latency_ns: f64,
    /// Transfer time per byte in nanoseconds.
    pub per_byte_ns: f64,
    /// Smith's published optimal line size(s) for this design point.
    pub smith_optimal: &'static [f64],
    /// The normalised bus speed at which Smith quotes the optimum.
    pub quoted_beta: f64,
}

impl Fig6Panel {
    /// The latency-to-transfer ratio `T_lat / (T_byte · D)`.
    pub fn latency_ratio(&self) -> f64 {
        self.latency_ns / (self.per_byte_ns * self.bus_bytes)
    }

    /// The fill-timing latency `c(β) = ratio·β + 1`.
    pub fn c_of_beta(&self, beta: f64) -> f64 {
        self.latency_ratio() * beta + 1.0
    }

    /// The panel's fill timing at bus speed `beta`.
    ///
    /// # Errors
    ///
    /// Propagates timing-validation errors for non-positive `beta`.
    pub fn timing(&self, beta: f64) -> Result<FillTiming, TradeoffError> {
        FillTiming::new(self.c_of_beta(beta), beta)
    }

    /// The candidate list with hit ratios supplied by `model`.
    pub fn candidates(&self, model: &dyn MissRatioModel) -> Vec<LineCandidate> {
        CANDIDATE_LINES
            .iter()
            .map(|&l| LineCandidate {
                line_bytes: l,
                hit_ratio: HitRatio::new(model.hit_ratio(self.cache_bytes, l))
                    .expect("model returns a valid ratio"),
            })
            .collect()
    }

    /// The reduced-delay series (Eq. 19) of one candidate line across
    /// bus speeds, relative to the 4-byte base line. Values are per
    /// hundred references, matching the figure's axis scale.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn reduced_delay_series(
        &self,
        model: &dyn MissRatioModel,
        line_bytes: f64,
        betas: &[f64],
    ) -> Result<Vec<(f64, f64)>, TradeoffError> {
        let base_l = CANDIDATE_LINES[0];
        let hr0 = HitRatio::new(model.hit_ratio(self.cache_bytes, base_l))?;
        let hri = HitRatio::new(model.hit_ratio(self.cache_bytes, line_bytes))?;
        let mut out = Vec::with_capacity(betas.len());
        for &beta in betas {
            let timing = self.timing(beta)?;
            let v = reduced_delay(&timing, self.bus_bytes, base_l, hr0, line_bytes, hri, 0.0)?;
            out.push((beta, 100.0 * v));
        }
        Ok(out)
    }
}

/// The four Figure 6 design points.
///
/// Panels (a)–(d) as annotated in the paper; the 8 KB panel's latency
/// ratio `360/(15·8) = 3` follows from its stated technology.
pub const PANELS: [Fig6Panel; 4] = [
    Fig6Panel {
        name: "(a) 16K data cache, 360ns + 15ns/B, D=4",
        cache_bytes: 16.0 * 1024.0,
        bus_bytes: 4.0,
        latency_ns: 360.0,
        per_byte_ns: 15.0,
        smith_optimal: &[32.0],
        quoted_beta: 2.0,
    },
    Fig6Panel {
        name: "(b) 16K data cache, 160ns + 15ns/B, D=8",
        cache_bytes: 16.0 * 1024.0,
        bus_bytes: 8.0,
        latency_ns: 160.0,
        per_byte_ns: 15.0,
        smith_optimal: &[16.0],
        quoted_beta: 3.0,
    },
    Fig6Panel {
        name: "(c) 16K data cache, 600ns + 4ns/B, D=8",
        cache_bytes: 16.0 * 1024.0,
        bus_bytes: 8.0,
        latency_ns: 600.0,
        per_byte_ns: 4.0,
        smith_optimal: &[64.0, 128.0],
        quoted_beta: 1.0,
    },
    Fig6Panel {
        name: "(d) 8K data cache, 360ns + 15ns/B, D=8",
        cache_bytes: 8.0 * 1024.0,
        bus_bytes: 8.0,
        latency_ns: 360.0,
        per_byte_ns: 15.0,
        smith_optimal: &[32.0],
        quoted_beta: 2.0,
    },
];

/// The outcome of validating one panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelValidation {
    /// Panel name.
    pub panel: &'static str,
    /// The line Smith's criterion (Eq. 16) picks.
    pub smith_line: f64,
    /// The line the tradeoff methodology (Eq. 19) picks.
    pub eq19_line: f64,
    /// Whether the two selectors agree (the paper's validation claim).
    pub selectors_agree: bool,
    /// Whether the selection matches Smith's published optimum.
    pub matches_paper: bool,
}

/// Runs the Figure 6 validation on all four panels at their quoted bus
/// speeds.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn validate_all_panels(
    model: &dyn MissRatioModel,
) -> Result<Vec<PanelValidation>, TradeoffError> {
    PANELS
        .iter()
        .map(|panel| {
            let cands = panel.candidates(model);
            let timing = panel.timing(panel.quoted_beta)?;
            let smith = optimal_line_smith(&timing, panel.bus_bytes, &cands)?;
            let ours = optimal_line_eq19(&timing, panel.bus_bytes, &cands)?;
            Ok(PanelValidation {
                panel: panel.name,
                smith_line: smith.line_bytes,
                eq19_line: ours.line_bytes,
                selectors_agree: smith.line_bytes == ours.line_bytes,
                matches_paper: panel.smith_optimal.contains(&smith.line_bytes),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DesignTargetModel;

    #[test]
    fn latency_ratios_match_annotations() {
        assert!((PANELS[0].latency_ratio() - 6.0).abs() < 1e-12);
        assert!((PANELS[1].latency_ratio() - 4.0 / 3.0).abs() < 1e-12);
        assert!((PANELS[2].latency_ratio() - 18.75).abs() < 1e-12);
        assert!((PANELS[3].latency_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_panels_reproduce_smith_optima() {
        let model = DesignTargetModel::default();
        for v in validate_all_panels(&model).unwrap() {
            assert!(
                v.selectors_agree,
                "{}: Smith {} vs Eq.19 {}",
                v.panel, v.smith_line, v.eq19_line
            );
            assert!(
                v.matches_paper,
                "{}: selected {} not in Smith's set",
                v.panel, v.smith_line
            );
        }
    }

    #[test]
    fn selectors_agree_across_bus_speeds() {
        // The equivalence is not specific to the quoted β.
        let model = DesignTargetModel::default();
        for panel in &PANELS {
            let cands = panel.candidates(&model);
            for beta in [0.5, 1.0, 2.0, 4.0, 8.0] {
                let timing = panel.timing(beta).unwrap();
                let s = optimal_line_smith(&timing, panel.bus_bytes, &cands).unwrap();
                let o = optimal_line_eq19(&timing, panel.bus_bytes, &cands).unwrap();
                assert_eq!(s.line_bytes, o.line_bytes, "{} at β={beta}", panel.name);
            }
        }
    }

    #[test]
    fn selectors_agree_even_for_alternative_models() {
        // The Smith ≡ Eq. 19 identity is model-independent; check it on
        // the simple power-law model whose optima differ from Smith's.
        let model = crate::model::PowerLawModel::default();
        for v in validate_all_panels(&model).unwrap() {
            assert!(v.selectors_agree, "{}", v.panel);
        }
    }

    #[test]
    fn reduced_delay_series_has_positive_peak_for_optimal_line() {
        let model = DesignTargetModel::default();
        let panel = &PANELS[0];
        let betas: Vec<f64> = (1..=10).map(f64::from).collect();
        let series = panel.reduced_delay_series(&model, 32.0, &betas).unwrap();
        assert!(
            series.iter().any(|&(_, v)| v > 0.0),
            "32B should be beneficial somewhere"
        );
    }

    #[test]
    fn very_slow_bus_turns_large_lines_negative() {
        // Figure 6's negative region: past some β the large line's
        // transfer cost wipes out its hit-ratio advantage.
        let model = DesignTargetModel::default();
        let panel = &PANELS[1]; // lowest latency ratio → earliest crossover
        let series = panel.reduced_delay_series(&model, 256.0, &[10.0]).unwrap();
        assert!(
            series[0].1 < 0.0,
            "256B at β=10 should be harmful: {}",
            series[0].1
        );
    }

    #[test]
    fn candidates_cover_the_line_set() {
        let model = DesignTargetModel::default();
        let cands = PANELS[0].candidates(&model);
        assert_eq!(cands.len(), CANDIDATE_LINES.len());
        for w in cands.windows(2) {
            assert!(w[0].line_bytes < w[1].line_bytes);
        }
    }
}
