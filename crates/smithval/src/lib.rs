//! Smith (1987) line-size methodology and the paper's Figure 6
//! validation.
//!
//! Section 5.4 of Chen & Somani validates the tradeoff methodology by
//! showing that the optimal line size selected by their Eq. 19 is
//! *identical* to the one Smith's minimum-mean-delay criterion selects,
//! across four cache/bus design points. Smith's design-target miss-ratio
//! tables are not redistributable, so this crate provides a calibrated
//! parametric model ([`DesignTargetModel`]) with the canonical shape —
//! power law in cache size, strong spatial-locality gains for small
//! lines, and a pollution term that punishes large lines in small caches
//! — tuned so the four Figure 6 panels reproduce Smith's published
//! optima (32 B, 16 B, 64–128 B, 32 B).
//!
//! # Example
//!
//! ```
//! use smithval::{DesignTargetModel, MissRatioModel};
//!
//! let model = DesignTargetModel::default();
//! let m32 = model.miss_ratio(16_384.0, 32.0);
//! let m4 = model.miss_ratio(16_384.0, 4.0);
//! assert!(m32 < m4, "larger lines hit more in a 16K cache");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig6;
pub mod model;

pub use fig6::{validate_all_panels, Fig6Panel, PanelValidation, PANELS};
pub use model::{DesignTargetModel, MissRatioModel, PowerLawModel, TableModel};
