//! Design-space exploration helpers.
//!
//! The line-size experiments (paper Section 5.4 and Figure 6) need hit
//! ratios as a function of cache size and line size for a fixed workload.
//! These helpers run the same regenerable trace through a grid of
//! configurations, with an optional warm-up period excluded from the
//! statistics so cold-start misses do not bias small sweeps.

use crate::cache::Cache;
use crate::config::{CacheConfig, ConfigError};
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};
use simtrace::Instr;

/// One point of a hit-ratio sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitRatioPoint {
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Data-cache hit ratio measured after warm-up.
    pub hit_ratio: f64,
    /// Measured flush ratio `α` (writebacks per fill).
    pub flush_ratio: f64,
}

/// Runs the data references of `trace` through a cache and returns the
/// post-warm-up statistics.
///
/// `warmup` instructions are executed first with statistics discarded.
pub fn measure_dcache(
    cfg: CacheConfig,
    trace: impl IntoIterator<Item = Instr>,
    warmup: u64,
) -> CacheStats {
    let mut cache = Cache::new(cfg);
    let mut n = 0u64;
    for instr in trace {
        if let Some(m) = instr.mem {
            cache.access(m.op, m.addr);
        }
        n += 1;
        if n == warmup {
            cache.reset_stats();
        }
    }
    *cache.stats()
}

/// Measures the hit ratio for every `(cache_bytes, line_bytes)` pair in
/// the grid, regenerating the trace per point via `make_trace`.
///
/// # Errors
///
/// Returns the first [`ConfigError`] produced by an invalid combination
/// (for example a line larger than a way).
///
/// # Example
///
/// ```
/// use simcache::explore::hit_ratio_grid;
/// use simtrace::gen::{PatternTrace, TraceShape, WorkingSet};
///
/// let points = hit_ratio_grid(
///     &[4096, 8192],
///     &[16, 32],
///     2,
///     || PatternTrace::new(WorkingSet::new(0, 16 * 1024, 0.3, 4), TraceShape::default(), 1)
///         .take(20_000),
///     2_000,
/// )?;
/// assert_eq!(points.len(), 4);
/// // Bigger cache, same line: hit ratio must not fall.
/// assert!(points[2].hit_ratio >= points[0].hit_ratio - 0.01);
/// # Ok::<(), simcache::ConfigError>(())
/// ```
pub fn hit_ratio_grid<T, F>(
    cache_sizes: &[u64],
    line_sizes: &[u64],
    assoc: u32,
    mut make_trace: F,
    warmup: u64,
) -> Result<Vec<HitRatioPoint>, ConfigError>
where
    T: IntoIterator<Item = Instr>,
    F: FnMut() -> T,
{
    let mut out = Vec::with_capacity(cache_sizes.len() * line_sizes.len());
    for &cache_bytes in cache_sizes {
        for &line_bytes in line_sizes {
            let cfg = CacheConfig::new(cache_bytes, line_bytes, assoc)?;
            let stats = measure_dcache(cfg, make_trace(), warmup);
            out.push(HitRatioPoint {
                cache_bytes,
                line_bytes,
                hit_ratio: stats.hit_ratio(),
                flush_ratio: stats.flush_ratio(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtrace::gen::{PatternTrace, StridedSweep, TraceShape, WorkingSet};

    fn ws_trace(bytes: u64, n: usize) -> impl Iterator<Item = Instr> {
        PatternTrace::new(WorkingSet::new(0, bytes, 0.3, 4), TraceShape::default(), 7).take(n)
    }

    #[test]
    fn fitting_working_set_hits_after_warmup() {
        let cfg = CacheConfig::new(16 * 1024, 32, 2).unwrap();
        let stats = measure_dcache(cfg, ws_trace(8 * 1024, 100_000), 50_000);
        assert!(stats.hit_ratio() > 0.999, "resident set should hit: {}", stats.hit_ratio());
    }

    #[test]
    fn oversized_working_set_misses_more() {
        let cfg = CacheConfig::new(4 * 1024, 32, 2).unwrap();
        let small = measure_dcache(cfg, ws_trace(2 * 1024, 50_000), 10_000);
        let large = measure_dcache(cfg, ws_trace(64 * 1024, 50_000), 10_000);
        assert!(small.hit_ratio() > large.hit_ratio() + 0.2);
    }

    #[test]
    fn hit_ratio_grows_with_cache_size() {
        let points = hit_ratio_grid(
            &[2048, 8192, 32768],
            &[32],
            2,
            || ws_trace(16 * 1024, 60_000),
            10_000,
        )
        .unwrap();
        assert!(points[0].hit_ratio < points[1].hit_ratio);
        assert!(points[1].hit_ratio <= points[2].hit_ratio + 1e-9);
    }

    #[test]
    fn larger_lines_help_strided_code() {
        let strided = || {
            PatternTrace::new(
                StridedSweep::new(0, 1 << 20, 4, 4, 0),
                TraceShape::default(),
                3,
            )
            .take(60_000)
        };
        let points = hit_ratio_grid(&[8192], &[8, 64], 2, strided, 5_000).unwrap();
        // A unit-stride sweep misses once per line: larger lines mean
        // fewer misses.
        assert!(
            points[1].hit_ratio > points[0].hit_ratio + 0.05,
            "64B {} vs 8B {}",
            points[1].hit_ratio,
            points[0].hit_ratio
        );
    }

    #[test]
    fn grid_propagates_config_errors() {
        let err = hit_ratio_grid(&[64], &[64], 2, || ws_trace(128, 10), 0);
        assert!(err.is_err());
    }

    #[test]
    fn warmup_zero_counts_everything() {
        let cfg = CacheConfig::new(1024, 32, 2).unwrap();
        let stats = measure_dcache(cfg, ws_trace(512, 1_000), 0);
        assert!(stats.accesses() > 0);
        assert!(stats.misses() > 0, "cold misses counted when warmup is 0");
    }
}
