//! Design-space exploration helpers.
//!
//! The line-size experiments (paper Section 5.4 and Figure 6) need hit
//! ratios as a function of cache size and line size for a fixed workload.
//! These helpers measure the same regenerable trace over a grid of
//! configurations, with an optional warm-up period excluded from the
//! statistics so cold-start misses do not bias small sweeps.
//!
//! [`hit_ratio_grid`] answers the whole grid from one
//! [`StackDistSweep`](crate::stackdist::StackDistSweep) pass per line
//! size — `O(|lines| · N)` instead of the naive
//! `O(|sizes| · |lines| · N)` — run in parallel across line sizes. The
//! per-configuration replay survives as [`hit_ratio_grid_replay`], the
//! reference implementation the sweep is validated against.

use crate::cache::Cache;
use crate::config::{CacheConfig, ConfigError};
use crate::stackdist::StackDistSweep;
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};
use simtrace::Instr;

/// One point of a hit-ratio sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HitRatioPoint {
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Data-cache hit ratio measured after warm-up.
    pub hit_ratio: f64,
    /// Measured flush ratio `α` (writebacks per fill).
    pub flush_ratio: f64,
}

/// Runs the data references of `trace` through a cache and returns the
/// post-warm-up statistics.
///
/// `warmup` instructions are executed first with statistics discarded.
pub fn measure_dcache(
    cfg: CacheConfig,
    trace: impl IntoIterator<Item = Instr>,
    warmup: u64,
) -> CacheStats {
    let mut cache = Cache::new(cfg);
    let mut n = 0u64;
    for instr in trace {
        if let Some(m) = instr.mem {
            cache.access(m.op, m.addr);
        }
        n += 1;
        if n == warmup {
            cache.reset_stats();
        }
    }
    *cache.stats()
}

/// Measures the hit ratio for every `(cache_bytes, line_bytes)` pair in
/// the grid from a single trace pass per line size.
///
/// The trace produced by `make_trace` is materialised once and shared;
/// each line size gets one generalized stack simulation
/// ([`StackDistSweep`]) that answers every cache size exactly, and the
/// per-line sweeps run on their own threads. The result is
/// bit-identical to [`hit_ratio_grid_replay`] — the grid is LRU +
/// write-back + write-allocate throughout, which is exactly the fast
/// path's domain.
///
/// # Errors
///
/// Returns the first [`ConfigError`] produced by an invalid combination
/// (for example a line larger than a way), in the same grid order as
/// the replay path.
///
/// # Example
///
/// ```
/// use simcache::explore::hit_ratio_grid;
/// use simtrace::gen::{PatternTrace, TraceShape, WorkingSet};
///
/// let points = hit_ratio_grid(
///     &[4096, 8192],
///     &[16, 32],
///     2,
///     || PatternTrace::new(WorkingSet::new(0, 16 * 1024, 0.3, 4), TraceShape::default(), 1)
///         .take(20_000),
///     2_000,
/// )?;
/// assert_eq!(points.len(), 4);
/// // Bigger cache, same line: hit ratio must not fall.
/// assert!(points[2].hit_ratio >= points[0].hit_ratio - 0.01);
/// # Ok::<(), simcache::ConfigError>(())
/// ```
pub fn hit_ratio_grid<T, F>(
    cache_sizes: &[u64],
    line_sizes: &[u64],
    assoc: u32,
    mut make_trace: F,
    warmup: u64,
) -> Result<Vec<HitRatioPoint>, ConfigError>
where
    T: IntoIterator<Item = Instr>,
    F: FnMut() -> T,
{
    // Validate the whole grid up front so an invalid combination
    // surfaces as the same first error the replay path would report.
    for &cache_bytes in cache_sizes {
        for &line_bytes in line_sizes {
            CacheConfig::new(cache_bytes, line_bytes, assoc)?;
        }
    }
    if cache_sizes.is_empty() || line_sizes.is_empty() {
        return Ok(Vec::new());
    }
    if assoc >= u32::from(u16::MAX) {
        // Wider than the sweep's 16-bit dirty thresholds; replay instead.
        return hit_ratio_grid_replay(cache_sizes, line_sizes, assoc, make_trace, warmup);
    }

    // The trace does not depend on the configuration: materialise it
    // once and share it read-only across the sweeps.
    let trace: Vec<Instr> = make_trace().into_iter().collect();

    // One single-pass sweep per line size covers every cache size; the
    // line sizes are independent, so fan them out across threads.
    let sweeps: Vec<StackDistSweep> = std::thread::scope(|s| {
        let handles: Vec<_> = line_sizes
            .iter()
            .map(|&line_bytes| {
                let trace = &trace;
                let sets_of = |c: u64| c / (line_bytes * u64::from(assoc));
                let min_sets = cache_sizes.iter().map(|&c| sets_of(c)).min().unwrap();
                let max_sets = cache_sizes.iter().map(|&c| sets_of(c)).max().unwrap();
                s.spawn(move || {
                    let mut sweep = StackDistSweep::new_range(
                        line_bytes,
                        min_sets.trailing_zeros(),
                        max_sets.trailing_zeros(),
                        assoc,
                        warmup,
                    )
                    .expect("grid validated above");
                    for instr in trace {
                        sweep.process(*instr);
                    }
                    sweep
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect()
    });

    let mut out = Vec::with_capacity(cache_sizes.len() * line_sizes.len());
    for &cache_bytes in cache_sizes {
        for (li, &line_bytes) in line_sizes.iter().enumerate() {
            let sets = cache_bytes / (line_bytes * u64::from(assoc));
            let stats = sweeps[li].stats(sets.trailing_zeros(), assoc);
            out.push(HitRatioPoint {
                cache_bytes,
                line_bytes,
                hit_ratio: stats.hit_ratio(),
                flush_ratio: stats.flush_ratio(),
            });
        }
    }
    Ok(out)
}

/// Reference implementation of [`hit_ratio_grid`]: replays the trace
/// once per configuration through a live [`Cache`].
///
/// Costs `O(|sizes| · |lines| · N)` trace work against the sweep's
/// `O(|lines| · N)`; kept as the oracle the single-pass engine is
/// validated and benchmarked against.
///
/// # Errors
///
/// Returns the first [`ConfigError`] produced by an invalid combination.
pub fn hit_ratio_grid_replay<T, F>(
    cache_sizes: &[u64],
    line_sizes: &[u64],
    assoc: u32,
    mut make_trace: F,
    warmup: u64,
) -> Result<Vec<HitRatioPoint>, ConfigError>
where
    T: IntoIterator<Item = Instr>,
    F: FnMut() -> T,
{
    let mut out = Vec::with_capacity(cache_sizes.len() * line_sizes.len());
    for &cache_bytes in cache_sizes {
        for &line_bytes in line_sizes {
            let cfg = CacheConfig::new(cache_bytes, line_bytes, assoc)?;
            let stats = measure_dcache(cfg, make_trace(), warmup);
            out.push(HitRatioPoint {
                cache_bytes,
                line_bytes,
                hit_ratio: stats.hit_ratio(),
                flush_ratio: stats.flush_ratio(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtrace::gen::{PatternTrace, StridedSweep, TraceShape, WorkingSet};

    fn ws_trace(bytes: u64, n: usize) -> impl Iterator<Item = Instr> {
        PatternTrace::new(WorkingSet::new(0, bytes, 0.3, 4), TraceShape::default(), 7).take(n)
    }

    #[test]
    fn fitting_working_set_hits_after_warmup() {
        let cfg = CacheConfig::new(16 * 1024, 32, 2).unwrap();
        let stats = measure_dcache(cfg, ws_trace(8 * 1024, 100_000), 50_000);
        assert!(
            stats.hit_ratio() > 0.999,
            "resident set should hit: {}",
            stats.hit_ratio()
        );
    }

    #[test]
    fn oversized_working_set_misses_more() {
        let cfg = CacheConfig::new(4 * 1024, 32, 2).unwrap();
        let small = measure_dcache(cfg, ws_trace(2 * 1024, 50_000), 10_000);
        let large = measure_dcache(cfg, ws_trace(64 * 1024, 50_000), 10_000);
        assert!(small.hit_ratio() > large.hit_ratio() + 0.2);
    }

    #[test]
    fn hit_ratio_grows_with_cache_size() {
        let points = hit_ratio_grid(
            &[2048, 8192, 32768],
            &[32],
            2,
            || ws_trace(16 * 1024, 60_000),
            10_000,
        )
        .unwrap();
        assert!(points[0].hit_ratio < points[1].hit_ratio);
        assert!(points[1].hit_ratio <= points[2].hit_ratio + 1e-9);
    }

    #[test]
    fn larger_lines_help_strided_code() {
        let strided = || {
            PatternTrace::new(
                StridedSweep::new(0, 1 << 20, 4, 4, 0),
                TraceShape::default(),
                3,
            )
            .take(60_000)
        };
        let points = hit_ratio_grid(&[8192], &[8, 64], 2, strided, 5_000).unwrap();
        // A unit-stride sweep misses once per line: larger lines mean
        // fewer misses.
        assert!(
            points[1].hit_ratio > points[0].hit_ratio + 0.05,
            "64B {} vs 8B {}",
            points[1].hit_ratio,
            points[0].hit_ratio
        );
    }

    #[test]
    fn grid_propagates_config_errors() {
        let err = hit_ratio_grid(&[64], &[64], 2, || ws_trace(128, 10), 0);
        assert!(err.is_err());
    }

    #[test]
    fn grid_fast_path_is_bit_identical_to_replay() {
        let sizes = [1024, 4096, 16 * 1024];
        let lines = [16, 32, 64];
        let trace = || ws_trace(8 * 1024, 30_000);
        let fast = hit_ratio_grid(&sizes, &lines, 2, trace, 5_000).unwrap();
        let replay = hit_ratio_grid_replay(&sizes, &lines, 2, trace, 5_000).unwrap();
        // Same counters, same divisions: the f64s must be identical,
        // not merely close.
        assert_eq!(fast, replay);
    }

    #[test]
    fn empty_grid_yields_no_points() {
        assert_eq!(
            hit_ratio_grid(&[], &[32], 2, || ws_trace(128, 10), 0).unwrap(),
            vec![]
        );
        assert_eq!(
            hit_ratio_grid(&[1024], &[], 2, || ws_trace(128, 10), 0).unwrap(),
            vec![]
        );
    }

    #[test]
    fn replay_grid_propagates_config_errors() {
        let err = hit_ratio_grid_replay(&[64], &[64], 2, || ws_trace(128, 10), 0);
        assert!(err.is_err());
    }

    #[test]
    fn warmup_zero_counts_everything() {
        let cfg = CacheConfig::new(1024, 32, 2).unwrap();
        let stats = measure_dcache(cfg, ws_trace(512, 1_000), 0);
        assert!(stats.accesses() > 0);
        assert!(stats.misses() > 0, "cold misses counted when warmup is 0");
    }
}
