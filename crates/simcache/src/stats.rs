//! Cache statistics and the quantities the tradeoff model consumes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Event counters for one cache.
///
/// From these the paper's application parameters follow directly:
/// `R = lines_filled_by_reads(+writes under allocate) × L`,
/// `W = write_around_misses`, `α = writebacks / fills`, and the hit/miss
/// ratios that anchor every tradeoff curve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Load accesses that hit.
    pub load_hits: u64,
    /// Load accesses that missed.
    pub load_misses: u64,
    /// Store accesses that hit.
    pub store_hits: u64,
    /// Store accesses that missed.
    pub store_misses: u64,
    /// Lines brought into the cache.
    pub fills: u64,
    /// Dirty lines written back on eviction (flushes).
    pub writebacks: u64,
    /// Stores sent around the cache (write-around misses, the `W` term).
    pub write_arounds: u64,
    /// Stores propagated directly to memory by a write-through cache.
    pub write_throughs: u64,
    /// Lines brought in by prefetches (not counted in `fills`).
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.load_hits + self.load_misses + self.store_hits + self.store_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.load_hits + self.store_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }

    /// Hit ratio over all accesses (`HR`); 0 for an idle cache.
    pub fn hit_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.hits() as f64 / a as f64
        }
    }

    /// Miss ratio over all accesses (`MR = 1 − HR`); 0 for an idle cache.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }

    /// The flush ratio `α`: dirty lines written back per line filled.
    ///
    /// The paper assumes `α = 0.5` "considering the average situation"; the
    /// simulator measures it.
    pub fn flush_ratio(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.writebacks as f64 / self.fills as f64
        }
    }

    /// Bytes read from memory by line fills, i.e. the paper's `R`, given
    /// the line size used.
    pub fn read_bytes(&self, line_bytes: u64) -> u64 {
        self.fills * line_bytes
    }

    /// Bytes written back to memory by flushes (`αR`).
    pub fn flush_bytes(&self, line_bytes: u64) -> u64 {
        self.writebacks * line_bytes
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.load_hits += other.load_hits;
        self.load_misses += other.load_misses;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.fills += other.fills;
        self.writebacks += other.writebacks;
        self.write_arounds += other.write_arounds;
        self.write_throughs += other.write_throughs;
        self.prefetch_fills += other.prefetch_fills;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, HR {:.4}, {} fills, {} writebacks (α {:.3})",
            self.accesses(),
            self.hit_ratio(),
            self.fills,
            self.writebacks,
            self.flush_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheStats {
        CacheStats {
            load_hits: 70,
            load_misses: 10,
            store_hits: 15,
            store_misses: 5,
            fills: 15,
            writebacks: 6,
            write_arounds: 0,
            write_throughs: 0,
            prefetch_fills: 0,
        }
    }

    #[test]
    fn ratios() {
        let s = sample();
        assert_eq!(s.accesses(), 100);
        assert!((s.hit_ratio() - 0.85).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.15).abs() < 1e-12);
        assert!((s.hit_ratio() + s.miss_ratio() - 1.0).abs() < 1e-12);
        assert!((s.flush_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn byte_volumes_scale_with_line() {
        let s = sample();
        assert_eq!(s.read_bytes(32), 480);
        assert_eq!(s.flush_bytes(32), 192);
    }

    #[test]
    fn idle_cache_ratios_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.flush_ratio(), 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.accesses(), 200);
        assert_eq!(a.fills, 30);
    }

    #[test]
    fn display_contains_hit_ratio() {
        assert!(sample().to_string().contains("HR 0.85"));
    }
}
