//! Sector (sub-block) caches.
//!
//! The paper's related work (Alpert & Flynn) notes that larger lines
//! amortise tag storage; the classic way to get large-line tag economy
//! *without* large-line memory traffic is a sector cache: one tag covers
//! an address block of several sub-blocks, each with its own valid/dirty
//! bit, and misses fetch only the needed sub-block. This module provides
//! a sector-cache simulator so the tradeoff methodology can price that
//! design too (see the `sector` experiment).

use crate::config::ConfigError;
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};
use simtrace::{Addr, MemOp};
use std::fmt;

/// Geometry of a sector cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SectorConfig {
    size_bytes: u64,
    block_bytes: u64,
    subblock_bytes: u64,
    assoc: u32,
}

impl SectorConfig {
    /// Creates a sector-cache configuration: `block_bytes` is the
    /// tag-granularity address block, `subblock_bytes` the transfer
    /// granularity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a parameter is not a power of two,
    /// the sub-block does not divide the block, or the block does not
    /// fit a way.
    pub fn new(
        size_bytes: u64,
        block_bytes: u64,
        subblock_bytes: u64,
        assoc: u32,
    ) -> Result<Self, ConfigError> {
        for (what, v) in [
            ("cache size", size_bytes),
            ("block size", block_bytes),
            ("subblock size", subblock_bytes),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { what, value: v });
            }
        }
        if assoc == 0 || !assoc.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                value: u64::from(assoc),
            });
        }
        if subblock_bytes > block_bytes || block_bytes / subblock_bytes > 64 {
            return Err(ConfigError::LineTooLarge {
                line_bytes: subblock_bytes,
                way_bytes: block_bytes,
            });
        }
        let way_bytes = size_bytes / u64::from(assoc);
        if block_bytes > way_bytes {
            return Err(ConfigError::LineTooLarge {
                line_bytes: block_bytes,
                way_bytes,
            });
        }
        Ok(SectorConfig {
            size_bytes,
            block_bytes,
            subblock_bytes,
            assoc,
        })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Address-block (tag-granularity) size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Sub-block (transfer-granularity) size in bytes.
    pub fn subblock_bytes(&self) -> u64 {
        self.subblock_bytes
    }

    /// Sub-blocks per block.
    pub fn subblocks(&self) -> u32 {
        (self.block_bytes / self.subblock_bytes) as u32
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes / u64::from(self.assoc)
    }
}

impl fmt::Display for SectorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way sector {}B/{}B",
            self.size_bytes / 1024,
            self.assoc,
            self.block_bytes,
            self.subblock_bytes
        )
    }
}

/// Counters specific to sector caches, on top of [`CacheStats`].
///
/// In [`CacheStats`] terms: `fills` counts *sub-block* fetches (the unit
/// of memory traffic), so `read_bytes(subblock_bytes)` gives `R`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectorStats {
    /// Misses that found the tag but not the sub-block.
    pub subblock_misses: u64,
    /// Misses that missed the tag entirely (block allocation).
    pub block_misses: u64,
    /// Dirty sub-blocks written back.
    pub subblock_writebacks: u64,
}

#[derive(Debug, Clone, Copy)]
struct Block {
    tag: u64,
    valid: u64,
    dirty: u64,
    use_stamp: u64,
}

/// A sector cache with LRU replacement and write-back sub-blocks
/// (write-allocate at sub-block granularity).
#[derive(Debug, Clone)]
pub struct SectorCache {
    cfg: SectorConfig,
    sets: Vec<Vec<Option<Block>>>,
    stats: CacheStats,
    sector_stats: SectorStats,
    stamp: u64,
}

/// What one sector-cache access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectorOutcome {
    /// Tag and sub-block both present.
    Hit,
    /// Tag present, sub-block fetched (one sub-block of traffic).
    SubblockMiss,
    /// Tag absent: block allocated, one sub-block fetched, `dirty_evicted`
    /// sub-blocks written back.
    BlockMiss {
        /// Dirty sub-blocks of the victim flushed to memory.
        dirty_evicted: u32,
    },
}

impl SectorCache {
    /// Creates an empty sector cache.
    pub fn new(cfg: SectorConfig) -> Self {
        let sets = (0..cfg.num_sets())
            .map(|_| vec![None; cfg.assoc as usize])
            .collect();
        SectorCache {
            cfg,
            sets,
            stats: CacheStats::new(),
            sector_stats: SectorStats::default(),
            stamp: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SectorConfig {
        &self.cfg
    }

    /// Generic access/traffic counters (fills = sub-block fetches).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Sector-specific counters.
    pub fn sector_stats(&self) -> &SectorStats {
        &self.sector_stats
    }

    fn locate(&self, addr: Addr) -> (usize, u64, u64) {
        let block = addr.raw() / self.cfg.block_bytes;
        let sets = self.cfg.num_sets();
        let sub = (addr.raw() % self.cfg.block_bytes) / self.cfg.subblock_bytes;
        ((block % sets) as usize, block / sets, sub)
    }

    /// Performs one access.
    pub fn access(&mut self, op: MemOp, addr: Addr) -> SectorOutcome {
        self.stamp += 1;
        let (set_idx, tag, sub) = self.locate(addr);
        let sub_bit = 1u64 << sub;
        let stamp = self.stamp;

        let set = &mut self.sets[set_idx];
        if let Some(block) = set.iter_mut().flatten().find(|b| b.tag == tag) {
            block.use_stamp = stamp;
            let valid = block.valid & sub_bit != 0;
            if op.is_store() {
                block.dirty |= sub_bit;
            }
            if valid {
                match op {
                    MemOp::Load => self.stats.load_hits += 1,
                    MemOp::Store => self.stats.store_hits += 1,
                }
                return SectorOutcome::Hit;
            }
            // Sub-block miss: fetch just this sub-block.
            block.valid |= sub_bit;
            match op {
                MemOp::Load => self.stats.load_misses += 1,
                MemOp::Store => self.stats.store_misses += 1,
            }
            self.stats.fills += 1;
            self.sector_stats.subblock_misses += 1;
            return SectorOutcome::SubblockMiss;
        }

        // Block miss: evict LRU (or take an invalid way).
        match op {
            MemOp::Load => self.stats.load_misses += 1,
            MemOp::Store => self.stats.store_misses += 1,
        }
        let victim_idx = set.iter().position(Option::is_none).unwrap_or_else(|| {
            (0..set.len())
                .min_by_key(|&i| set[i].expect("all valid").use_stamp)
                .expect("associativity positive")
        });
        let dirty_evicted = set[victim_idx]
            .map(|b| (b.valid & b.dirty).count_ones())
            .unwrap_or(0);
        set[victim_idx] = Some(Block {
            tag,
            valid: sub_bit,
            dirty: if op.is_store() { sub_bit } else { 0 },
            use_stamp: stamp,
        });
        self.stats.fills += 1;
        self.stats.writebacks += u64::from(dirty_evicted);
        self.sector_stats.block_misses += 1;
        self.sector_stats.subblock_writebacks += u64::from(dirty_evicted);
        SectorOutcome::BlockMiss { dirty_evicted }
    }

    /// Bytes fetched from memory so far.
    pub fn read_bytes(&self) -> u64 {
        self.stats.fills * self.cfg.subblock_bytes
    }

    /// Bytes written back so far.
    pub fn writeback_bytes(&self) -> u64 {
        self.sector_stats.subblock_writebacks * self.cfg.subblock_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u64, block: u64, sub: u64) -> SectorCache {
        SectorCache::new(SectorConfig::new(size, block, sub, 2).expect("valid"))
    }

    fn load(c: &mut SectorCache, a: u64) -> SectorOutcome {
        c.access(MemOp::Load, Addr::new(a))
    }

    fn store(c: &mut SectorCache, a: u64) -> SectorOutcome {
        c.access(MemOp::Store, Addr::new(a))
    }

    #[test]
    fn config_validation() {
        assert!(SectorConfig::new(8192, 64, 8, 2).is_ok());
        assert!(
            SectorConfig::new(8192, 64, 128, 2).is_err(),
            "subblock > block"
        );
        assert!(SectorConfig::new(8192, 48, 8, 2).is_err());
        assert!(SectorConfig::new(8192, 8192, 8, 2).is_err(), "block > way");
        assert!(
            SectorConfig::new(1 << 20, 1024, 8, 2).is_err(),
            "more than 64 subblocks"
        );
        let c = SectorConfig::new(8192, 64, 8, 2).unwrap();
        assert_eq!(c.subblocks(), 8);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    fn block_then_subblock_then_hit() {
        let mut c = cache(8192, 64, 8);
        assert!(matches!(
            load(&mut c, 0x100),
            SectorOutcome::BlockMiss { dirty_evicted: 0 }
        ));
        // Same sub-block: hit.
        assert_eq!(load(&mut c, 0x104), SectorOutcome::Hit);
        // Same block, different sub-block: sub-block miss.
        assert_eq!(load(&mut c, 0x108), SectorOutcome::SubblockMiss);
        assert_eq!(load(&mut c, 0x108), SectorOutcome::Hit);
        assert_eq!(c.sector_stats().block_misses, 1);
        assert_eq!(c.sector_stats().subblock_misses, 1);
        assert_eq!(c.stats().fills, 2);
    }

    #[test]
    fn traffic_is_subblock_granular() {
        let mut c = cache(8192, 64, 8);
        load(&mut c, 0x100);
        load(&mut c, 0x108);
        assert_eq!(
            c.read_bytes(),
            16,
            "two 8-byte sub-blocks, not 64-byte lines"
        );
    }

    #[test]
    fn dirty_subblocks_flush_on_eviction() {
        let mut c = cache(128, 64, 8); // 2 ways, 1 set
        store(&mut c, 0x000);
        store(&mut c, 0x008);
        load(&mut c, 0x040); // second way
                             // Third block evicts the LRU (the dirty one): 2 dirty sub-blocks.
        let out = load(&mut c, 0x080);
        assert_eq!(out, SectorOutcome::BlockMiss { dirty_evicted: 2 });
        assert_eq!(c.writeback_bytes(), 16);
    }

    #[test]
    fn store_to_invalid_subblock_fetches_then_dirties() {
        let mut c = cache(8192, 64, 8);
        load(&mut c, 0x100);
        assert_eq!(store(&mut c, 0x110), SectorOutcome::SubblockMiss);
        // Evict it via two conflicting blocks in the same set and check
        // the dirty sub-block flushes.
        let sets = c.config().num_sets();
        load(&mut c, 0x100 + sets * 64);
        let out = load(&mut c, 0x100 + 2 * sets * 64);
        assert_eq!(out, SectorOutcome::BlockMiss { dirty_evicted: 1 });
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = cache(128, 64, 8); // 2 ways, 1 set
        load(&mut c, 0x000); // A
        load(&mut c, 0x040); // B
        load(&mut c, 0x000); // touch A
        load(&mut c, 0x080); // C evicts B
        assert_eq!(load(&mut c, 0x000), SectorOutcome::Hit, "A survived");
        assert!(
            matches!(load(&mut c, 0x040), SectorOutcome::BlockMiss { .. }),
            "B evicted"
        );
    }

    #[test]
    fn sector_beats_wide_line_on_traffic_for_sparse_access() {
        // Touch one word per 64-byte block across many blocks: a sector
        // cache fetches 8 bytes per touch, a 64-byte-line cache fetches 64.
        let mut sector = cache(8192, 64, 8);
        let mut wide =
            crate::cache::Cache::new(crate::config::CacheConfig::new(8192, 64, 2).expect("valid"));
        for i in 0..64u64 {
            load(&mut sector, i * 64);
            wide.access(MemOp::Load, Addr::new(i * 64));
        }
        assert_eq!(sector.read_bytes(), 64 * 8);
        assert_eq!(wide.stats().read_bytes(64), 64 * 64);
    }

    #[test]
    fn display_mentions_geometry() {
        let c = SectorConfig::new(8192, 64, 8, 2).unwrap();
        assert!(c.to_string().contains("sector 64B/8B"));
    }
}
