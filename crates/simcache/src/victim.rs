//! Victim caches (Jouppi, the paper's reference 7).
//!
//! A small fully-associative buffer holds the last few lines evicted
//! from a direct-mapped cache; conflict misses that would re-fetch from
//! memory are satisfied by swapping the victim back in. The tradeoff
//! methodology prices this like any other feature: the victim buffer
//! converts some misses into (near-)hits, i.e. it buys hit ratio with a
//! few lines of fully-associative silicon instead of doubling the
//! associativity.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};
use simtrace::{Addr, LineAddr, MemOp};
use std::collections::VecDeque;

/// Counters for the victim buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimStats {
    /// Main-cache misses satisfied by the victim buffer (swaps).
    pub victim_hits: u64,
    /// Main-cache misses that also missed the victim buffer.
    pub victim_misses: u64,
    /// Dirty lines that left the victim buffer towards memory.
    pub writebacks_to_memory: u64,
}

impl VictimStats {
    /// The fraction of main-cache misses the buffer recovered.
    pub fn recovery_ratio(&self) -> f64 {
        let total = self.victim_hits + self.victim_misses;
        if total == 0 {
            0.0
        } else {
            self.victim_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VictimLine {
    line: LineAddr,
    dirty: bool,
}

/// A main cache backed by a small fully-associative victim buffer.
#[derive(Debug, Clone)]
pub struct VictimCache {
    main: Cache,
    buffer: VecDeque<VictimLine>,
    capacity: usize,
    stats: VictimStats,
}

/// What one access did, at the hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimOutcome {
    /// Hit in the main cache.
    Hit,
    /// Miss in main, hit in the victim buffer (cheap swap, no memory
    /// traffic).
    VictimHit,
    /// Miss everywhere: a memory fill, with `writeback` true when a
    /// dirty line fell out of the victim buffer to memory.
    Miss {
        /// A dirty line left the hierarchy towards memory.
        writeback: bool,
    },
}

impl VictimCache {
    /// Creates a victim-buffered cache; `victim_lines` is the buffer's
    /// capacity in lines.
    ///
    /// # Panics
    ///
    /// Panics if `victim_lines` is zero.
    pub fn new(main: CacheConfig, victim_lines: usize) -> Self {
        assert!(victim_lines > 0, "victim buffer needs at least one line");
        VictimCache {
            main: Cache::new(main),
            buffer: VecDeque::with_capacity(victim_lines),
            capacity: victim_lines,
            stats: VictimStats::default(),
        }
    }

    /// The main cache's statistics (its misses include those the victim
    /// buffer recovered).
    pub fn main_stats(&self) -> &CacheStats {
        self.main.stats()
    }

    /// The victim buffer's statistics.
    pub fn victim_stats(&self) -> &VictimStats {
        &self.stats
    }

    /// The hierarchy hit ratio: main hits plus victim swaps per access.
    pub fn effective_hit_ratio(&self) -> f64 {
        let s = self.main.stats();
        let accesses = s.accesses();
        if accesses == 0 {
            0.0
        } else {
            (s.hits() + self.stats.victim_hits) as f64 / accesses as f64
        }
    }

    /// Memory line fills actually performed (main misses minus victim
    /// recoveries).
    pub fn memory_fills(&self) -> u64 {
        self.stats.victim_misses
    }

    fn push_victim(&mut self, line: LineAddr, dirty: bool) -> bool {
        let mut wrote_back = false;
        if self.buffer.len() == self.capacity {
            if let Some(out) = self.buffer.pop_front() {
                if out.dirty {
                    self.stats.writebacks_to_memory += 1;
                    wrote_back = true;
                }
            }
        }
        self.buffer.push_back(VictimLine { line, dirty });
        wrote_back
    }

    /// Performs one access.
    pub fn access(&mut self, op: MemOp, addr: Addr) -> VictimOutcome {
        let out = self.main.access(op, addr);
        if out.hit {
            return VictimOutcome::Hit;
        }
        debug_assert!(
            out.filled,
            "victim hierarchy assumes a write-allocate main cache"
        );

        // The main cache evicted `out.writeback` (dirty) or some clean
        // victim we cannot see; only dirty victims are reported, so track
        // clean ones through the fill event: the evicted line (if any)
        // enters the buffer. For clean evictions the main cache gives no
        // address, so the buffer can only capture dirty ones *exactly* —
        // we additionally capture the requested line's previous occupant
        // via the writeback report when dirty, which is the common
        // conflict-miss case the buffer exists for.
        let was_in_victim = {
            let line = out.line;
            if let Some(pos) = self.buffer.iter().position(|v| v.line == line) {
                self.buffer.remove(pos);
                true
            } else {
                false
            }
        };
        let mut wrote_back = false;
        if let Some(victim) = out.writeback {
            wrote_back = self.push_victim(victim, true);
        }
        if was_in_victim {
            self.stats.victim_hits += 1;
            VictimOutcome::VictimHit
        } else {
            self.stats.victim_misses += 1;
            VictimOutcome::Miss {
                writeback: wrote_back,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_cache(size: u64) -> CacheConfig {
        CacheConfig::new(size, 32, 1).expect("valid direct-mapped cache")
    }

    fn store(c: &mut VictimCache, a: u64) -> VictimOutcome {
        c.access(MemOp::Store, Addr::new(a))
    }

    #[test]
    fn conflict_ping_pong_recovered_by_victim_buffer() {
        // Two dirty lines mapping to the same direct-mapped set.
        let cfg = dm_cache(1024);
        let sets = cfg.num_sets();
        let mut c = VictimCache::new(cfg, 4);
        let a = 0u64;
        let b = sets * 32;
        store(&mut c, a);
        store(&mut c, b); // evicts dirty A into the buffer
                          // From now on the ping-pong is served by swaps, not memory.
        let mut swaps = 0;
        for _ in 0..10 {
            if store(&mut c, a) == VictimOutcome::VictimHit {
                swaps += 1;
            }
            if store(&mut c, b) == VictimOutcome::VictimHit {
                swaps += 1;
            }
        }
        assert!(swaps >= 19, "ping-pong should swap: {swaps}");
        assert!(c.victim_stats().recovery_ratio() > 0.8);
        assert!(c.effective_hit_ratio() > c.main_stats().hit_ratio());
    }

    #[test]
    fn buffer_capacity_bounds_recovery() {
        // Three conflicting dirty lines with a 1-line buffer: the buffer
        // holds only the latest victim, so rotation mostly misses.
        let cfg = dm_cache(1024);
        let sets = cfg.num_sets();
        let mut tiny = VictimCache::new(cfg, 1);
        let mut big = VictimCache::new(cfg, 4);
        for i in 0..60u64 {
            let addr = (i % 3) * sets * 32;
            store(&mut tiny, addr);
            store(&mut big, addr);
        }
        assert!(
            big.victim_stats().recovery_ratio() > tiny.victim_stats().recovery_ratio(),
            "bigger buffer recovers more: {} vs {}",
            big.victim_stats().recovery_ratio(),
            tiny.victim_stats().recovery_ratio()
        );
    }

    #[test]
    fn dirty_lines_falling_out_write_back() {
        let cfg = dm_cache(1024);
        let sets = cfg.num_sets();
        let mut c = VictimCache::new(cfg, 1);
        // Rotate three conflicting dirty lines: each new victim pushes the
        // previous one (dirty) to memory.
        for i in 0..9u64 {
            store(&mut c, (i % 3) * sets * 32);
        }
        assert!(c.victim_stats().writebacks_to_memory > 0);
    }

    #[test]
    fn memory_fills_exclude_recovered_misses() {
        let cfg = dm_cache(1024);
        let sets = cfg.num_sets();
        let mut c = VictimCache::new(cfg, 4);
        store(&mut c, 0);
        store(&mut c, sets * 32);
        for _ in 0..10 {
            store(&mut c, 0);
            store(&mut c, sets * 32);
        }
        let main_misses = c.main_stats().misses();
        assert_eq!(c.memory_fills() + c.victim_stats().victim_hits, main_misses);
        assert!(
            c.memory_fills() <= 3,
            "memory sees only the cold misses: {}",
            c.memory_fills()
        );
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        VictimCache::new(dm_cache(1024), 0);
    }
}
