//! Set-associative cache simulator.
//!
//! This crate is the trace-driven substrate behind the paper's measured
//! quantities: it produces hit ratios (`HR`), write-back flush ratios (`α`)
//! and per-miss events that the CPU timing simulator turns into stalling
//! factors (`φ`). It models:
//!
//! * arbitrary power-of-two geometry (size, line, associativity),
//! * LRU / FIFO / random / tree-PLRU replacement,
//! * write-back and write-through policies,
//! * write-allocate and write-around miss handling (both modes appear in
//!   the paper's equations — write-around contributes the `W` term, while
//!   write-allocate folds write misses into `R`),
//! * split instruction/data configurations.
//!
//! # Example
//!
//! ```
//! use simcache::{Cache, CacheConfig};
//! use simtrace::{Addr, MemOp};
//!
//! let cfg = CacheConfig::new(8 * 1024, 32, 2)?;
//! let mut cache = Cache::new(cfg);
//! let first = cache.access(MemOp::Load, Addr::new(0x1000));
//! assert!(!first.hit);
//! let second = cache.access(MemOp::Load, Addr::new(0x1004));
//! assert!(second.hit); // same 32-byte line
//! # Ok::<(), simcache::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod explore;
pub mod hitratio;
pub mod sector;
pub mod split;
pub mod stackdist;
pub mod stats;
pub mod victim;

pub use cache::{AccessOutcome, Cache};
pub use config::{CacheConfig, ConfigError, Replacement, WriteMiss, WritePolicy};
pub use hitratio::{Analytic, BackendError, HitRatioBackend, Resolution, Simulated};
pub use sector::{SectorCache, SectorConfig, SectorOutcome};
pub use split::SplitCache;
pub use stackdist::{StackDistSweep, SweepQueryError};
pub use stats::CacheStats;
pub use victim::{VictimCache, VictimOutcome, VictimStats};
