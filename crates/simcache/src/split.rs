//! Split instruction/data cache front end.
//!
//! The paper's processor model (Section 3.1, assumption 1) is a RISC core
//! with separate on-chip instruction and write-back data caches. This
//! wrapper routes instruction fetches to the I-cache and data references
//! to the D-cache and aggregates their statistics.

use crate::cache::{AccessOutcome, Cache};
use crate::config::CacheConfig;
use crate::stats::CacheStats;
use simtrace::{Addr, Instr, MemOp};

/// Per-instruction cache activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrOutcome {
    /// Outcome of the instruction fetch.
    pub fetch: AccessOutcome,
    /// Outcome of the data reference, if the instruction had one.
    pub data: Option<AccessOutcome>,
}

/// A split I/D cache pair.
#[derive(Debug, Clone)]
pub struct SplitCache {
    icache: Cache,
    dcache: Cache,
}

impl SplitCache {
    /// Creates a split cache from two configurations.
    pub fn new(icache_cfg: CacheConfig, dcache_cfg: CacheConfig) -> Self {
        SplitCache {
            icache: Cache::new(icache_cfg),
            dcache: Cache::new(dcache_cfg),
        }
    }

    /// Runs one instruction through both caches.
    pub fn step(&mut self, instr: &Instr) -> InstrOutcome {
        let fetch = self.icache.access(MemOp::Load, instr.pc);
        let data = instr.mem.map(|m| self.dcache.access(m.op, m.addr));
        InstrOutcome { fetch, data }
    }

    /// Runs a whole trace, returning the number of instructions executed.
    pub fn run(&mut self, trace: impl IntoIterator<Item = Instr>) -> u64 {
        let mut n = 0;
        for instr in trace {
            self.step(&instr);
            n += 1;
        }
        n
    }

    /// The instruction cache.
    pub fn icache(&self) -> &Cache {
        &self.icache
    }

    /// The data cache.
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// Mutable access to the data cache (e.g. to reset statistics).
    pub fn dcache_mut(&mut self) -> &mut Cache {
        &mut self.dcache
    }

    /// Mutable access to the instruction cache.
    pub fn icache_mut(&mut self) -> &mut Cache {
        &mut self.icache
    }

    /// Combined statistics of both caches.
    pub fn combined_stats(&self) -> CacheStats {
        let mut s = *self.icache.stats();
        s.merge(self.dcache.stats());
        s
    }

    /// Convenience probe: is `addr` resident in the data cache?
    pub fn data_contains(&self, addr: Addr) -> bool {
        self.dcache.contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtrace::MemRef;

    fn cfg(size: u64) -> CacheConfig {
        CacheConfig::new(size, 32, 2).expect("valid")
    }

    #[test]
    fn routes_fetches_and_data_separately() {
        let mut sc = SplitCache::new(cfg(1024), cfg(1024));
        let i = Instr::mem(0x40u64, MemRef::load(0x40u64, 4));
        // Same address, but I and D caches are independent: both miss.
        let out = sc.step(&i);
        assert!(!out.fetch.hit);
        assert!(!out.data.expect("has data ref").hit);
        assert_eq!(sc.icache().stats().misses(), 1);
        assert_eq!(sc.dcache().stats().misses(), 1);
    }

    #[test]
    fn plain_instruction_touches_only_icache() {
        let mut sc = SplitCache::new(cfg(1024), cfg(1024));
        let out = sc.step(&Instr::plain(0u64));
        assert!(out.data.is_none());
        assert_eq!(sc.dcache().stats().accesses(), 0);
        assert_eq!(sc.icache().stats().accesses(), 1);
    }

    #[test]
    fn sequential_code_has_high_icache_hit_ratio() {
        let mut sc = SplitCache::new(cfg(4096), cfg(4096));
        let trace: Vec<Instr> = (0..4096u64).map(|i| Instr::plain((i * 4) % 2048)).collect();
        let n = sc.run(trace);
        assert_eq!(n, 4096);
        assert!(
            sc.icache().stats().hit_ratio() > 0.95,
            "looping sequential code should mostly hit: {}",
            sc.icache().stats().hit_ratio()
        );
    }

    #[test]
    fn combined_stats_sum_both_caches() {
        let mut sc = SplitCache::new(cfg(1024), cfg(1024));
        sc.step(&Instr::mem(0u64, MemRef::store(0x200u64, 4)));
        let combined = sc.combined_stats();
        assert_eq!(combined.accesses(), 2);
        assert_eq!(combined.fills, 2);
    }
}
