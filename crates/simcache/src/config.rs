//! Cache configuration and validation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Replacement policy for a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (exact stack algorithm).
    #[default]
    Lru,
    /// First-in-first-out (victim is the oldest *fill*).
    Fifo,
    /// Uniform random victim (seeded, reproducible).
    Random,
    /// Tree pseudo-LRU (the common hardware approximation).
    TreePlru,
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Replacement::Lru => f.write_str("LRU"),
            Replacement::Fifo => f.write_str("FIFO"),
            Replacement::Random => f.write_str("random"),
            Replacement::TreePlru => f.write_str("tree-PLRU"),
        }
    }
}

/// Write-hit policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Dirty lines accumulate in the cache and are flushed on eviction
    /// (the paper's model: flushes contribute the `α(R/D)βm` term).
    #[default]
    WriteBack,
    /// Every store is propagated to memory immediately; no dirty lines.
    WriteThrough,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::WriteBack => f.write_str("write-back"),
            WritePolicy::WriteThrough => f.write_str("write-through"),
        }
    }
}

/// Write-miss policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WriteMiss {
    /// Fetch the line on a write miss (write misses join `R`; `W = 0`).
    #[default]
    Allocate,
    /// Send the write around the cache (write misses form the `W` term).
    Around,
}

impl fmt::Display for WriteMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteMiss::Allocate => f.write_str("write-allocate"),
            WriteMiss::Around => f.write_str("write-around"),
        }
    }
}

/// Errors from cache-configuration validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Which parameter failed.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The line size exceeds the cache size divided by associativity.
    LineTooLarge {
        /// Requested line size in bytes.
        line_bytes: u64,
        /// Cache capacity of a single way in bytes.
        way_bytes: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a non-zero power of two, got {value}")
            }
            ConfigError::LineTooLarge {
                line_bytes,
                way_bytes,
            } => {
                write!(f, "line size {line_bytes} exceeds way capacity {way_bytes}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry and policy of one cache.
///
/// Construct with [`CacheConfig::new`] (validated) and refine with the
/// `with_*` builder methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    line_bytes: u64,
    assoc: u32,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Write-hit policy.
    pub write_policy: WritePolicy,
    /// Write-miss policy.
    pub write_miss: WriteMiss,
    /// Seed for the random replacement policy.
    pub seed: u64,
}

impl CacheConfig {
    /// Creates a configuration with LRU, write-back, write-allocate
    /// defaults (the paper's baseline data cache).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any geometry parameter is zero or not a
    /// power of two, if the line does not fit a way, or if the
    /// associativity exceeds the number of lines.
    pub fn new(size_bytes: u64, line_bytes: u64, assoc: u32) -> Result<Self, ConfigError> {
        fn pow2(what: &'static str, v: u64) -> Result<(), ConfigError> {
            if v == 0 || !v.is_power_of_two() {
                Err(ConfigError::NotPowerOfTwo { what, value: v })
            } else {
                Ok(())
            }
        }
        pow2("cache size", size_bytes)?;
        pow2("line size", line_bytes)?;
        pow2("associativity", u64::from(assoc))?;
        let way_bytes = size_bytes / u64::from(assoc);
        if line_bytes > way_bytes {
            return Err(ConfigError::LineTooLarge {
                line_bytes,
                way_bytes,
            });
        }
        Ok(CacheConfig {
            size_bytes,
            line_bytes,
            assoc,
            replacement: Replacement::Lru,
            write_policy: WritePolicy::WriteBack,
            write_miss: WriteMiss::Allocate,
            seed: 0x5EED,
        })
    }

    /// Sets the replacement policy.
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Sets the write-hit policy.
    pub fn with_write_policy(mut self, write_policy: WritePolicy) -> Self {
        self.write_policy = write_policy;
        self
    }

    /// Sets the write-miss policy.
    pub fn with_write_miss(mut self, write_miss: WriteMiss) -> Self {
        self.write_miss = write_miss;
        self
    }

    /// Sets the seed for random replacement.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes (`L`).
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.assoc)
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way L={}B {} {} {}",
            self.size_bytes / 1024,
            self.assoc,
            self.line_bytes,
            self.replacement,
            self.write_policy,
            self.write_miss
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_geometry() {
        let c = CacheConfig::new(8 * 1024, 32, 2).unwrap();
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.num_lines(), 256);
        assert_eq!(c.size_bytes(), 8192);
    }

    #[test]
    fn direct_mapped_and_fully_associative() {
        let dm = CacheConfig::new(4096, 16, 1).unwrap();
        assert_eq!(dm.num_sets(), 256);
        let fa = CacheConfig::new(4096, 16, 256).unwrap();
        assert_eq!(fa.num_sets(), 1);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheConfig::new(3000, 32, 2),
            Err(ConfigError::NotPowerOfTwo {
                what: "cache size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::new(4096, 24, 2),
            Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::new(4096, 32, 3),
            Err(ConfigError::NotPowerOfTwo {
                what: "associativity",
                ..
            })
        ));
        assert!(CacheConfig::new(0, 32, 2).is_err());
    }

    #[test]
    fn rejects_line_bigger_than_way() {
        assert!(matches!(
            CacheConfig::new(1024, 1024, 2),
            Err(ConfigError::LineTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_excess_associativity() {
        // assoc 64 over 32 lines means a line no longer fits one way.
        assert!(matches!(
            CacheConfig::new(1024, 32, 64),
            Err(ConfigError::LineTooLarge { .. })
        ));
    }

    #[test]
    fn builder_methods_set_policies() {
        let c = CacheConfig::new(4096, 32, 2)
            .unwrap()
            .with_replacement(Replacement::Fifo)
            .with_write_policy(WritePolicy::WriteThrough)
            .with_write_miss(WriteMiss::Around)
            .with_seed(7);
        assert_eq!(c.replacement, Replacement::Fifo);
        assert_eq!(c.write_policy, WritePolicy::WriteThrough);
        assert_eq!(c.write_miss, WriteMiss::Around);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn errors_display() {
        let e = CacheConfig::new(3000, 32, 2).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn config_display_mentions_geometry() {
        let c = CacheConfig::new(8192, 32, 2).unwrap();
        let s = c.to_string();
        assert!(s.contains("8KB") && s.contains("2-way") && s.contains("L=32B"));
    }
}
