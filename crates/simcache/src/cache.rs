//! The core set-associative cache model.

use crate::config::{CacheConfig, Replacement, WriteMiss, WritePolicy};
use crate::stats::CacheStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simtrace::{Addr, LineAddr, MemOp};

/// What one access did to the cache and to memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The line the access touched.
    pub line: LineAddr,
    /// A line fill was started (read miss, or write miss under
    /// write-allocate).
    pub filled: bool,
    /// A dirty victim must be written back to memory.
    pub writeback: Option<LineAddr>,
    /// The access was a store sent around the cache (write-around miss).
    pub write_around: bool,
    /// The access was a store propagated to memory by write-through.
    pub write_through: bool,
}

impl AccessOutcome {
    /// Returns `true` when the access needs any memory traffic at all.
    pub fn uses_memory(&self) -> bool {
        self.filled || self.writeback.is_some() || self.write_around || self.write_through
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    dirty: bool,
    use_stamp: u64,
    fill_stamp: u64,
}

#[derive(Debug, Clone)]
struct Set {
    ways: Vec<Option<Way>>,
    plru: u128,
}

/// A single set-associative cache.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Set>,
    stats: CacheStats,
    stamp: u64,
    rng: SmallRng,
    // Geometry is all powers of two; the hot path indexes with shifts
    // and masks instead of division.
    line_shift: u32,
    set_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if tree-PLRU replacement is requested with more than 64
    /// ways (the tree state is bounded).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.replacement != Replacement::TreePlru || cfg.assoc() <= 64,
            "tree-PLRU supports at most 64 ways"
        );
        let sets = (0..cfg.num_sets())
            .map(|_| Set {
                ways: vec![None; cfg.assoc() as usize],
                plru: 0,
            })
            .collect();
        Cache {
            cfg,
            sets,
            stats: CacheStats::new(),
            stamp: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            line_shift: cfg.line_bytes().trailing_zeros(),
            set_shift: cfg.num_sets().trailing_zeros(),
            set_mask: cfg.num_sets() - 1,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics without touching cache contents (useful for
    /// warm-up periods).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    #[inline]
    fn line_addr(&self, addr: Addr) -> LineAddr {
        LineAddr::new(addr.raw() >> self.line_shift)
    }

    #[inline]
    fn set_and_tag(&self, line: LineAddr) -> (usize, u64) {
        (
            (line.raw() & self.set_mask) as usize,
            line.raw() >> self.set_shift,
        )
    }

    #[inline]
    fn line_of(&self, set_idx: usize, tag: u64) -> LineAddr {
        LineAddr::new((tag << self.set_shift) | set_idx as u64)
    }

    /// Index of the valid way holding `tag`, if any.
    #[inline]
    fn find_way(ways: &[Option<Way>], tag: u64) -> Option<usize> {
        ways.iter()
            .position(|w| matches!(w, Some(w) if w.tag == tag))
    }

    /// Returns `true` if the line holding `addr` is resident.
    pub fn contains(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.set_and_tag(self.line_addr(addr));
        self.sets[set_idx]
            .ways
            .iter()
            .flatten()
            .any(|w| w.tag == tag)
    }

    /// Returns `true` if the line holding `addr` is resident and dirty.
    pub fn is_dirty(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.set_and_tag(self.line_addr(addr));
        self.sets[set_idx]
            .ways
            .iter()
            .flatten()
            .any(|w| w.tag == tag && w.dirty)
    }

    /// Number of currently valid lines.
    pub fn resident_lines(&self) -> u64 {
        self.sets
            .iter()
            .map(|s| s.ways.iter().flatten().count() as u64)
            .sum()
    }

    /// Invalidates every line, returning how many dirty lines were dropped.
    ///
    /// No writebacks are generated; callers modelling a flush should use
    /// [`Cache::flush_all`].
    pub fn invalidate_all(&mut self) -> u64 {
        let mut dirty = 0;
        for set in &mut self.sets {
            for way in &mut set.ways {
                if matches!(way, Some(w) if w.dirty) {
                    dirty += 1;
                }
                *way = None;
            }
            set.plru = 0;
        }
        dirty
    }

    /// Writes back every dirty line (marking it clean) and returns the
    /// written-back line addresses.
    pub fn flush_all(&mut self) -> Vec<LineAddr> {
        let mut flushed = Vec::new();
        let set_shift = self.set_shift;
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for way in set.ways.iter_mut().flatten() {
                if way.dirty {
                    way.dirty = false;
                    flushed.push(LineAddr::new((way.tag << set_shift) | set_idx as u64));
                }
            }
        }
        self.stats.writebacks += flushed.len() as u64;
        flushed
    }

    /// Performs one access and returns its outcome.
    ///
    /// Operand size is assumed not to straddle a line (the trace
    /// generators align operands), so a single line is touched.
    #[inline]
    pub fn access(&mut self, op: MemOp, addr: Addr) -> AccessOutcome {
        self.stamp += 1;
        let line = self.line_addr(addr);
        let (set_idx, tag) = self.set_and_tag(line);
        let assoc = self.cfg.assoc() as usize;

        // Hit path.
        if let Some(way_idx) = Self::find_way(&self.sets[set_idx].ways, tag) {
            let stamp = self.stamp;
            let write_through;
            {
                let set = &mut self.sets[set_idx];
                let way = set.ways[way_idx].as_mut().expect("hit way is valid");
                way.use_stamp = stamp;
                write_through = match (op, self.cfg.write_policy) {
                    (MemOp::Store, WritePolicy::WriteBack) => {
                        way.dirty = true;
                        false
                    }
                    (MemOp::Store, WritePolicy::WriteThrough) => true,
                    (MemOp::Load, _) => false,
                };
                if self.cfg.replacement == Replacement::TreePlru {
                    Self::plru_touch(&mut set.plru, way_idx, assoc);
                }
            }
            match op {
                MemOp::Load => self.stats.load_hits += 1,
                MemOp::Store => self.stats.store_hits += 1,
            }
            if write_through {
                self.stats.write_throughs += 1;
            }
            return AccessOutcome {
                hit: true,
                line,
                filled: false,
                writeback: None,
                write_around: false,
                write_through,
            };
        }

        // Miss path.
        match op {
            MemOp::Load => self.stats.load_misses += 1,
            MemOp::Store => self.stats.store_misses += 1,
        }

        if op.is_store() && self.cfg.write_miss == WriteMiss::Around {
            // Write-around: no allocation; the store itself travels to
            // memory (one `W` event).
            self.stats.write_arounds += 1;
            return AccessOutcome {
                hit: false,
                line,
                filled: false,
                writeback: None,
                write_around: true,
                write_through: false,
            };
        }

        // Allocate a way (read miss, or write miss under write-allocate).
        let victim_idx = self.pick_victim(set_idx);
        let set_shift = self.set_shift;
        let stamp = self.stamp;
        let set = &mut self.sets[set_idx];
        let writeback = set.ways[victim_idx]
            .filter(|w| w.dirty)
            .map(|w| LineAddr::new((w.tag << set_shift) | set_idx as u64));
        let dirty_after_fill = op.is_store() && self.cfg.write_policy == WritePolicy::WriteBack;
        set.ways[victim_idx] = Some(Way {
            tag,
            dirty: dirty_after_fill,
            use_stamp: stamp,
            fill_stamp: stamp,
        });
        if self.cfg.replacement == Replacement::TreePlru {
            Self::plru_touch(&mut set.plru, victim_idx, assoc);
        }

        self.stats.fills += 1;
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        let write_through = op.is_store() && self.cfg.write_policy == WritePolicy::WriteThrough;
        if write_through {
            self.stats.write_throughs += 1;
        }
        AccessOutcome {
            hit: false,
            line,
            filled: true,
            writeback,
            write_around: false,
            write_through,
        }
    }

    fn pick_victim(&mut self, set_idx: usize) -> usize {
        // Invalid ways first.
        if let Some(idx) = self.sets[set_idx].ways.iter().position(Option::is_none) {
            return idx;
        }
        let assoc = self.cfg.assoc() as usize;
        let set = &self.sets[set_idx];
        match self.cfg.replacement {
            Replacement::Lru => (0..assoc)
                .min_by_key(|&i| set.ways[i].expect("all ways valid").use_stamp)
                .expect("associativity is positive"),
            Replacement::Fifo => (0..assoc)
                .min_by_key(|&i| set.ways[i].expect("all ways valid").fill_stamp)
                .expect("associativity is positive"),
            Replacement::Random => self.rng.gen_range(0..assoc),
            Replacement::TreePlru => Self::plru_victim(set.plru, assoc),
        }
    }

    /// Updates the PLRU tree so the path to `way` points *away* from it.
    ///
    /// The tree is stored as a heap in the bits of `plru`: node 1 is the
    /// root, node `n` has children `2n` (left, bit = 0) and `2n + 1`
    /// (right, bit = 1).
    fn plru_touch(plru: &mut u128, way: usize, assoc: usize) {
        if assoc <= 1 {
            return;
        }
        let mut node = 1usize;
        let mut levels = assoc.trailing_zeros();
        while levels > 0 {
            levels -= 1;
            let right = (way >> levels) & 1;
            // Point the bit at the *other* child.
            if right == 1 {
                *plru &= !(1u128 << node);
            } else {
                *plru |= 1u128 << node;
            }
            node = node * 2 + right;
        }
    }

    /// Follows the PLRU tree bits to the pseudo-least-recently-used way.
    fn plru_victim(plru: u128, assoc: usize) -> usize {
        if assoc <= 1 {
            return 0;
        }
        let mut node = 1usize;
        let mut way = 0usize;
        let mut levels = assoc.trailing_zeros();
        while levels > 0 {
            levels -= 1;
            let bit = ((plru >> node) & 1) as usize;
            way = (way << 1) | bit;
            node = node * 2 + bit;
        }
        way
    }

    /// Brings the line containing `addr` into the cache *without* a
    /// demand access — the insertion half of a next-line prefetcher.
    ///
    /// Returns `None` when the line is already resident (no traffic);
    /// otherwise returns the dirty victim that must be written back, if
    /// any. Prefetched lines are clean and counted in
    /// [`CacheStats::prefetch_fills`], not in `fills`, so demand-miss
    /// accounting (and the measured `φ`) stays untouched.
    pub fn prefetch(&mut self, addr: Addr) -> Option<Option<LineAddr>> {
        let line = self.line_addr(addr);
        let (set_idx, tag) = self.set_and_tag(line);
        if Self::find_way(&self.sets[set_idx].ways, tag).is_some() {
            return None;
        }
        self.stamp += 1;
        let assoc = self.cfg.assoc() as usize;
        let victim_idx = self.pick_victim(set_idx);
        let set_shift = self.set_shift;
        let stamp = self.stamp;
        let set = &mut self.sets[set_idx];
        let writeback = set.ways[victim_idx]
            .filter(|w| w.dirty)
            .map(|w| LineAddr::new((w.tag << set_shift) | set_idx as u64));
        set.ways[victim_idx] = Some(Way {
            tag,
            dirty: false,
            use_stamp: stamp,
            fill_stamp: stamp,
        });
        if self.cfg.replacement == Replacement::TreePlru {
            Self::plru_touch(&mut set.plru, victim_idx, assoc);
        }
        self.stats.prefetch_fills += 1;
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        Some(writeback)
    }

    /// Convenience: returns the line address corresponding to a victim's
    /// set and tag — exposed for tests.
    #[doc(hidden)]
    pub fn debug_line_of(&self, set_idx: usize, tag: u64) -> LineAddr {
        self.line_of(set_idx, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u64, line: u64, assoc: u32) -> CacheConfig {
        CacheConfig::new(size, line, assoc).expect("valid config")
    }

    fn load(c: &mut Cache, a: u64) -> AccessOutcome {
        c.access(MemOp::Load, Addr::new(a))
    }

    fn store(c: &mut Cache, a: u64) -> AccessOutcome {
        c.access(MemOp::Store, Addr::new(a))
    }

    #[test]
    fn cold_miss_then_hit_same_line() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        assert!(!load(&mut c, 0x100).hit);
        assert!(load(&mut c, 0x11F).hit);
        assert!(!load(&mut c, 0x120).hit);
        assert_eq!(c.stats().load_hits, 1);
        assert_eq!(c.stats().load_misses, 2);
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut c = Cache::new(cfg(512, 32, 2));
        for i in 0..1000u64 {
            load(&mut c, (i * 13) % 4096);
        }
        assert_eq!(c.stats().accesses(), 1000);
        assert_eq!(c.stats().hits() + c.stats().misses(), 1000);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 ways, 1 set (fully associative 64B cache, 32B lines).
        let mut c = Cache::new(cfg(64, 32, 2));
        load(&mut c, 0x000); // line A
        load(&mut c, 0x020); // line B
        load(&mut c, 0x000); // touch A: B is LRU
        let out = load(&mut c, 0x040); // line C evicts B
        assert!(!out.hit);
        assert!(c.contains(Addr::new(0x000)), "A should survive");
        assert!(!c.contains(Addr::new(0x020)), "B should be evicted");
    }

    #[test]
    fn fifo_evicts_oldest_fill() {
        let mut c = Cache::new(cfg(64, 32, 2).with_replacement(Replacement::Fifo));
        load(&mut c, 0x000); // A filled first
        load(&mut c, 0x020); // B
        load(&mut c, 0x000); // touching A does not matter for FIFO
        load(&mut c, 0x040); // C evicts A
        assert!(!c.contains(Addr::new(0x000)));
        assert!(c.contains(Addr::new(0x020)));
    }

    #[test]
    fn tree_plru_is_exact_lru_for_two_ways() {
        let mut plru_cache = Cache::new(cfg(64, 32, 2).with_replacement(Replacement::TreePlru));
        let mut lru_cache = Cache::new(cfg(64, 32, 2));
        let pattern = [0x000u64, 0x020, 0x000, 0x040, 0x020, 0x060, 0x000];
        for a in pattern {
            let p = load(&mut plru_cache, a).hit;
            let l = load(&mut lru_cache, a).hit;
            assert_eq!(p, l, "PLRU and LRU diverged at {a:#x}");
        }
    }

    #[test]
    fn random_replacement_is_reproducible() {
        let mk = || {
            Cache::new(
                cfg(128, 32, 4)
                    .with_replacement(Replacement::Random)
                    .with_seed(9),
            )
        };
        let mut a = mk();
        let mut b = mk();
        for i in 0..2000u64 {
            let addr = (i * 97) % 8192;
            assert_eq!(load(&mut a, addr).hit, load(&mut b, addr).hit);
        }
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = Cache::new(cfg(64, 32, 2));
        store(&mut c, 0x000); // A dirty (write-allocate fill)
        load(&mut c, 0x020); // B
        let out = load(&mut c, 0x040); // evicts A (LRU) → writeback
        assert_eq!(out.writeback, Some(Addr::new(0x000).line(32)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Cache::new(cfg(64, 32, 2));
        load(&mut c, 0x000);
        load(&mut c, 0x020);
        let out = load(&mut c, 0x040);
        assert_eq!(out.writeback, None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_allocate_fills_on_store_miss() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        let out = store(&mut c, 0x100);
        assert!(!out.hit && out.filled && !out.write_around);
        assert!(c.contains(Addr::new(0x100)));
        assert!(c.is_dirty(Addr::new(0x100)));
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn write_around_does_not_allocate() {
        let mut c = Cache::new(cfg(1024, 32, 2).with_write_miss(WriteMiss::Around));
        let out = store(&mut c, 0x100);
        assert!(!out.hit && !out.filled && out.write_around);
        assert!(!c.contains(Addr::new(0x100)));
        assert_eq!(c.stats().write_arounds, 1);
        // A subsequent load still misses.
        assert!(!load(&mut c, 0x100).hit);
    }

    #[test]
    fn write_through_never_dirties() {
        let mut c = Cache::new(cfg(1024, 32, 2).with_write_policy(WritePolicy::WriteThrough));
        store(&mut c, 0x100);
        store(&mut c, 0x104);
        assert!(!c.is_dirty(Addr::new(0x100)));
        assert_eq!(c.stats().write_throughs, 2);
        // Eviction of a write-through line produces no writeback.
        let mut tiny = Cache::new(
            CacheConfig::new(64, 32, 2)
                .unwrap()
                .with_write_policy(WritePolicy::WriteThrough),
        );
        store(&mut tiny, 0x000);
        load(&mut tiny, 0x020);
        let out = load(&mut tiny, 0x040);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn store_hit_dirties_write_back_line() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        load(&mut c, 0x100);
        assert!(!c.is_dirty(Addr::new(0x100)));
        store(&mut c, 0x104);
        assert!(c.is_dirty(Addr::new(0x100)));
    }

    #[test]
    fn flush_all_cleans_dirty_lines() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        store(&mut c, 0x000);
        store(&mut c, 0x100);
        load(&mut c, 0x200);
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 2);
        assert!(!c.is_dirty(Addr::new(0x000)));
        assert_eq!(c.stats().writebacks, 2);
        assert!(c.flush_all().is_empty(), "second flush finds nothing dirty");
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        store(&mut c, 0x000);
        load(&mut c, 0x100);
        let dropped_dirty = c.invalidate_all();
        assert_eq!(dropped_dirty, 1);
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.contains(Addr::new(0x000)));
    }

    #[test]
    fn fills_bounded_by_capacity_for_resident_working_set() {
        // Working set fits: after the cold pass everything hits.
        let mut c = Cache::new(cfg(4096, 32, 2));
        for round in 0..3 {
            for i in 0..64u64 {
                let hit = load(&mut c, i * 32).hit;
                assert_eq!(hit, round > 0, "round {round} line {i}");
            }
        }
        assert_eq!(c.stats().fills, 64);
        assert_eq!(c.resident_lines(), 64);
    }

    #[test]
    fn direct_mapped_conflict_thrashing() {
        // Two lines mapping to the same set of a direct-mapped cache
        // alternate and never hit.
        let c_cfg = cfg(1024, 32, 1);
        let sets = c_cfg.num_sets(); // 32
        let mut c = Cache::new(c_cfg);
        let a = 0u64;
        let b = sets * 32; // same set, different tag
        for _ in 0..10 {
            assert!(!load(&mut c, a).hit);
            assert!(!load(&mut c, b).hit);
        }
    }

    #[test]
    fn two_way_resolves_that_conflict() {
        let c_cfg = cfg(1024, 32, 2);
        let sets = c_cfg.num_sets(); // 16
        let mut c = Cache::new(c_cfg);
        let a = 0u64;
        let b = sets * 32;
        load(&mut c, a);
        load(&mut c, b);
        for _ in 0..10 {
            assert!(load(&mut c, a).hit);
            assert!(load(&mut c, b).hit);
        }
    }

    #[test]
    fn uses_memory_flags() {
        let mut c = Cache::new(cfg(64, 32, 2));
        assert!(load(&mut c, 0).uses_memory()); // fill
        assert!(!load(&mut c, 0).uses_memory()); // pure hit
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        load(&mut c, 0x100);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(load(&mut c, 0x100).hit, "contents survive reset");
    }

    #[test]
    fn prefetch_inserts_clean_line() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        assert_eq!(c.prefetch(Addr::new(0x100)), Some(None));
        assert!(c.contains(Addr::new(0x100)));
        assert!(!c.is_dirty(Addr::new(0x100)));
        assert!(load(&mut c, 0x100).hit, "prefetched line hits on demand");
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().fills, 0, "prefetches are not demand fills");
    }

    #[test]
    fn prefetch_of_resident_line_is_a_no_op() {
        let mut c = Cache::new(cfg(1024, 32, 2));
        load(&mut c, 0x100);
        assert_eq!(c.prefetch(Addr::new(0x104)), None);
        assert_eq!(c.stats().prefetch_fills, 0);
    }

    #[test]
    fn prefetch_evicting_dirty_line_reports_writeback() {
        let mut c = Cache::new(cfg(64, 32, 2));
        store(&mut c, 0x000);
        load(&mut c, 0x020);
        // Set is full; prefetching a third line evicts LRU (the dirty
        // store line).
        let wb = c.prefetch(Addr::new(0x040)).expect("line not resident");
        assert_eq!(wb, Some(Addr::new(0x000).line(32)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn plru_victim_covers_all_ways_over_time() {
        // With 4 ways and accesses cycling 5 lines in one set, every way
        // must eventually be chosen as a victim (no way is starved).
        let c_cfg = cfg(128, 32, 4); // 1 set
        let mut c = Cache::new(c_cfg.with_replacement(Replacement::TreePlru));
        let mut evictions = std::collections::HashSet::new();
        for i in 0..200u64 {
            let addr = (i % 5) * 32;
            let before: Vec<u64> = (0..5)
                .map(|k| k * 32)
                .filter(|&a| c.contains(Addr::new(a)))
                .collect();
            let out = load(&mut c, addr);
            if out.filled {
                for a in before {
                    if !c.contains(Addr::new(a)) {
                        evictions.insert(a);
                    }
                }
            }
        }
        assert!(
            evictions.len() >= 4,
            "evictions spread across ways: {evictions:?}"
        );
    }
}
