//! Hit-ratio backends: simulated sweeps and the closed-form
//! reuse-distance model behind one trait.
//!
//! The methodology prices every architectural feature in units of cache
//! hit ratio, so answering `(cache, line, assoc) → hit ratio` is the
//! hot path of the whole system. [`HitRatioBackend`] abstracts the two
//! ways to answer it:
//!
//! * [`Simulated`] — the exact [`StackDistSweep`] engine: one pass over
//!   the trace per line size, every covered geometry bit-identical to
//!   [`crate::Cache`] replay.
//! * [`Analytic`] — no simulation at all: a reuse-distance histogram
//!   per line size (one streaming
//!   [`ReuseHistograms`](simtrace::ReuseHistograms) pass per workload,
//!   memoised upstream) answers **fully-associative LRU exactly** (a
//!   cache of `k` lines hits precisely the references with reuse
//!   distance `< k` — Mattson 1970) and set-associative geometries via
//!   the *binomial set-conflict model*: the `d` distinct lines between
//!   consecutive touches of a line land in its set
//!   `Binomial(d, 1/sets)`-distributed, so the reference hits with
//!   probability `P[B(d, 1/sets) ≤ assoc − 1]`. The model is standard
//!   in the analytical-cache literature ("A Fast Analytical Model of
//!   Fully Associative Caches", PAPERS.md). One correction: uniform
//!   placement over-counts sets when the workload's footprint aliases —
//!   power-of-two strides and aligned arrays concentrate lines on a
//!   subset of set-index residues. The backend therefore measures the
//!   *collision factor* `κ = S · Σ g_c²` (the inverse participation
//!   ratio of the distinct-line footprint over residue classes `g_c`,
//!   `κ = 1` for a uniform footprint) and runs the binomial with
//!   `S_eff = S / κ` effective sets. The residual error against the
//!   simulated sweep is bounded by [`SET_CONFLICT_TOLERANCE`], enforced
//!   by `./ci.sh analytic` and `tests/analytic_oracle.rs` across the
//!   SPEC92 proxies.
//!
//! The payoff is asymptotic: after the single histogram pass, every
//! additional geometry costs `O(window)` floats (exact) or `O(assoc)`
//! per point on the log-bucketed path ([`Resolution::Bucketed`]) — a
//! million-point design grid evaluates in less time than the simulated
//! backend needs for the 35-point Figure-6 grid (`BENCH_analytic.json`).

use crate::config::CacheConfig;
use crate::stackdist::StackDistSweep;
use crate::stats::CacheStats;
use simtrace::{ReuseHistograms, ReuseProfile};
use std::fmt;

/// Maximum |analytic − simulated| hit-ratio error of the set-conflict
/// model on set-associative geometries. Measured across the six SPEC92
/// proxies over lines 8–128 B, caches 1–64 KB, associativity 1–4
/// (warmed, 120 k instructions): worst case 0.17 (nasa7,
/// direct-mapped, small lines — the proxies' power-of-two strides are
/// adversarial for bit-selection indexing), mean |Δ| 0.025. Pinned at
/// 0.20 with margin and asserted by `./ci.sh analytic` and the oracle
/// tests; fully-associative queries are exact, not toleranced.
pub const SET_CONFLICT_TOLERANCE: f64 = 0.20;

/// Why a backend could not answer a hit-ratio query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The backend holds no data at the queried line granularity.
    UnknownLineSize {
        /// The granularity asked for.
        line_bytes: u64,
    },
    /// The geometry itself is malformed or outside the backend's
    /// coverage.
    Geometry {
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::UnknownLineSize { line_bytes } => {
                write!(f, "no data at line size {line_bytes} B")
            }
            BackendError::Geometry { reason } => write!(f, "unsupported geometry: {reason}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A source of cache hit ratios over the (size, line, assoc) design
/// space for one fixed workload.
pub trait HitRatioBackend {
    /// A short stable name (`"sim"` / `"analytic"`) for reports.
    fn name(&self) -> &'static str;

    /// The data-cache hit ratio of an LRU write-back write-allocate
    /// cache of `cache_bytes` with `line_bytes` lines and `assoc` ways
    /// (`sets = cache / (line × assoc)`).
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the geometry is malformed or outside the
    /// backend's coverage.
    fn hit_ratio(&self, cache_bytes: u64, line_bytes: u64, assoc: u32)
        -> Result<f64, BackendError>;
}

fn derive_sets(cache_bytes: u64, line_bytes: u64, assoc: u32) -> Result<u64, BackendError> {
    if assoc == 0 {
        return Err(BackendError::Geometry {
            reason: "associativity must be at least 1".into(),
        });
    }
    if line_bytes == 0 || !line_bytes.is_power_of_two() {
        return Err(BackendError::Geometry {
            reason: format!("line size {line_bytes} is not a power of two"),
        });
    }
    let way_bytes = line_bytes * u64::from(assoc);
    if cache_bytes == 0 || !cache_bytes.is_multiple_of(way_bytes) {
        return Err(BackendError::Geometry {
            reason: format!(
                "cache size {cache_bytes} is not a multiple of line × assoc = {way_bytes}"
            ),
        });
    }
    Ok(cache_bytes / way_bytes)
}

/// The simulated backend: per-line-size [`StackDistSweep`]s, exact by
/// construction for every geometry within their coverage.
#[derive(Debug)]
pub struct Simulated {
    sweeps: Vec<StackDistSweep>,
}

impl Simulated {
    /// Wraps finished sweeps (one per line size of interest).
    pub fn from_sweeps(sweeps: Vec<StackDistSweep>) -> Self {
        Simulated { sweeps }
    }

    /// The line granularities covered.
    pub fn line_sizes(&self) -> Vec<u64> {
        self.sweeps.iter().map(StackDistSweep::line_bytes).collect()
    }

    /// The full post-warm-up statistics for a geometry, when covered.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when no sweep covers `cfg`.
    pub fn stats(&self, cfg: &CacheConfig) -> Result<CacheStats, BackendError> {
        let sweep = self
            .sweeps
            .iter()
            .find(|s| s.line_bytes() == cfg.line_bytes())
            .ok_or(BackendError::UnknownLineSize {
                line_bytes: cfg.line_bytes(),
            })?;
        sweep.stats_for(cfg).map_err(|e| BackendError::Geometry {
            reason: e.to_string(),
        })
    }
}

impl HitRatioBackend for Simulated {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn hit_ratio(
        &self,
        cache_bytes: u64,
        line_bytes: u64,
        assoc: u32,
    ) -> Result<f64, BackendError> {
        derive_sets(cache_bytes, line_bytes, assoc)?;
        let cfg = CacheConfig::new(cache_bytes, line_bytes, assoc).map_err(|e| {
            BackendError::Geometry {
                reason: e.to_string(),
            }
        })?;
        Ok(self.stats(&cfg)?.hit_ratio())
    }
}

/// Precision of an [`Analytic`] bulk evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Walk the full histogram: `O(min(cap, conflict window))` per
    /// (line, sets) pair. What the agreement checks use.
    Exact,
    /// Walk ~100 log-spaced buckets (exact below distance 64,
    /// quarter-octave means above): `O(assoc)` per point, for dense
    /// million-point grids. Agrees with [`Resolution::Exact`] to well
    /// under the set-conflict tolerance.
    Bucketed,
}

/// One log-compressed histogram cell: `count` references at mean
/// reuse distance `mean`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    mean: f64,
    count: f64,
}

/// Distances below this are kept as individual (exact) buckets on the
/// bucketed path; above, quarter-octave cells.
const BUCKET_EXACT_BELOW: usize = 64;
/// Cells per octave above [`BUCKET_EXACT_BELOW`].
const BUCKETS_PER_OCTAVE: usize = 4;
/// Conflict-probability floor: once `P[B(d, p) ≤ assoc − 1]` drops
/// below this the remaining histogram tail cannot move the hit ratio
/// (it is monotonically decreasing in `d`), so the exact walk stops.
const CDF_FLOOR: f64 = 1e-15;

#[derive(Debug, Clone)]
struct AnalyticLine {
    line_bytes: u64,
    total: u64,
    /// Collision factor `κ` of the distinct-line footprint at every
    /// power-of-two set-index modulus: `kappa[k]` is the inverse
    /// participation ratio `2^k · Σ g_c²` of the footprint mass over
    /// `line mod 2^k` residue classes, `k ≤ SET_CLASS_LOG2`. A uniform
    /// footprint gives `κ = 1`; aliased footprints (power-of-two
    /// strides, aligned arrays) give `κ > 1` and shrink the effective
    /// set count `S_eff = S / κ` the binomial runs with. Empty when no
    /// footprint statistics were supplied (pure binomial, `κ = 1`).
    kappa: Vec<f64>,
    /// Post-warm-up reuse-distance histogram; the final bucket is open
    /// (distances ≥ cap) and always counts as a miss — a conservative
    /// floor for capacities beyond the cap.
    hist: Vec<u64>,
    /// `prefix[k]` = references with distance `< k` = exact hits of a
    /// fully-associative LRU cache of `k` lines, `k ≤ cap`.
    prefix: Vec<u64>,
    buckets: Vec<Bucket>,
}

impl AnalyticLine {
    /// Effective set count the binomial model runs with at `sets`
    /// physical sets: `S / κ`, with `κ` read at the largest
    /// power-of-two modulus `≤ min(sets, 2^SET_CLASS_LOG2)` (exact for
    /// the power-of-two set counts real bit-selection hardware has;
    /// nearest-modulus approximation off the dyadic lattice).
    fn eff_sets(&self, sets: u64) -> f64 {
        if self.kappa.is_empty() {
            return sets as f64;
        }
        let level = (u64::BITS - 1 - sets.leading_zeros()).min(self.kappa.len() as u32 - 1);
        (sets as f64 / self.kappa[level as usize]).max(1.0)
    }
}

/// `κ` at every power-of-two modulus `2^0 ..= 2^SET_CLASS_LOG2` from a
/// distinct-line footprint over `2^SET_CLASS_LOG2` residue classes.
fn kappa_pyramid(set_mass: &[u64]) -> Vec<f64> {
    if set_mass.is_empty() || set_mass.iter().all(|&m| m == 0) {
        return Vec::new();
    }
    assert!(
        set_mass.len().is_power_of_two(),
        "footprint must cover a power-of-two residue range"
    );
    let levels = set_mass.len().trailing_zeros() as usize + 1;
    let mut folded = set_mass.to_vec();
    let total: f64 = set_mass.iter().map(|&m| m as f64).sum();
    let mut out = vec![1.0; levels];
    for level in (0..levels).rev() {
        let classes = 1usize << level;
        if classes < folded.len() {
            for c in 0..classes {
                folded[c] += folded[c + classes];
            }
            folded.truncate(classes);
        }
        let sq: f64 = folded.iter().map(|&m| (m as f64) * (m as f64)).sum();
        out[level] = (classes as f64 * sq / (total * total)).max(1.0);
    }
    out
}

fn build_buckets(hist: &[u64]) -> Vec<Bucket> {
    let cap = hist.len() - 1;
    let mut out = Vec::new();
    for (d, &h) in hist.iter().enumerate().take(cap.min(BUCKET_EXACT_BELOW)) {
        if h > 0 {
            out.push(Bucket {
                mean: d as f64,
                count: h as f64,
            });
        }
    }
    let mut lo = BUCKET_EXACT_BELOW;
    while lo < cap {
        let hi = (lo * 2).min(cap);
        for s in 0..BUCKETS_PER_OCTAVE {
            let from = lo + (hi - lo) * s / BUCKETS_PER_OCTAVE;
            let to = lo + (hi - lo) * (s + 1) / BUCKETS_PER_OCTAVE;
            if from == to {
                continue;
            }
            let mut count = 0u64;
            let mut weighted = 0.0f64;
            for (d, &h) in hist.iter().enumerate().take(to).skip(from) {
                count += h;
                weighted += d as f64 * h as f64;
            }
            if count > 0 {
                out.push(Bucket {
                    mean: weighted / count as f64,
                    count: count as f64,
                });
            }
        }
        lo = hi;
    }
    out
}

/// The closed-form backend: per-line-size reuse-distance histograms,
/// zero further trace work per query.
#[derive(Debug, Clone)]
pub struct Analytic {
    lines: Vec<AnalyticLine>,
}

impl Analytic {
    /// Builds the backend from a finished streaming histogram fold
    /// (one line entry per folded granularity, post-warm-up), using
    /// each granularity's distinct-line footprint residues for the
    /// collision-factor correction.
    pub fn from_histograms(hists: &ReuseHistograms) -> Self {
        let pairs = hists
            .line_sizes()
            .into_iter()
            .map(|l| {
                (
                    hists.profile(l).expect("folded granularity"),
                    hists.set_mass(l).expect("folded granularity").to_vec(),
                )
            })
            .collect();
        Self::from_footprint_profiles(pairs)
    }

    /// Builds the backend from standalone reuse profiles with the pure
    /// uniform-placement binomial model (`κ = 1`, no footprint data).
    pub fn from_profiles(profiles: Vec<ReuseProfile>) -> Self {
        Self::from_footprint_profiles(profiles.into_iter().map(|p| (p, Vec::new())).collect())
    }

    /// Builds the backend from `(profile, footprint)` pairs, where the
    /// footprint is a power-of-two-length vector of distinct-line
    /// counts per set-index residue class (as
    /// [`ReuseHistograms::set_mass`] produces). An empty footprint
    /// means `κ = 1` (uniform placement).
    pub fn from_footprint_profiles(profiles: Vec<(ReuseProfile, Vec<u64>)>) -> Self {
        let lines = profiles
            .into_iter()
            .map(|(p, set_mass)| {
                let hist = p.histogram().to_vec();
                let cap = hist.len() - 1;
                let mut prefix = Vec::with_capacity(cap + 1);
                let mut sum = 0u64;
                prefix.push(0);
                for &h in &hist[..cap] {
                    sum += h;
                    prefix.push(sum);
                }
                AnalyticLine {
                    line_bytes: p.line_bytes(),
                    total: p.total(),
                    kappa: kappa_pyramid(&set_mass),
                    buckets: build_buckets(&hist),
                    hist,
                    prefix,
                }
            })
            .collect();
        Analytic { lines }
    }

    /// The line granularities covered.
    pub fn line_sizes(&self) -> Vec<u64> {
        self.lines.iter().map(|l| l.line_bytes).collect()
    }

    /// Histogram cap (largest exactly-resolved reuse distance + 1) at
    /// `line_bytes`.
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownLineSize`] when the granularity was not
    /// folded.
    pub fn distance_cap(&self, line_bytes: u64) -> Result<usize, BackendError> {
        Ok(self.line(line_bytes)?.hist.len() - 1)
    }

    fn line(&self, line_bytes: u64) -> Result<&AnalyticLine, BackendError> {
        self.lines
            .iter()
            .find(|l| l.line_bytes == line_bytes)
            .ok_or(BackendError::UnknownLineSize { line_bytes })
    }

    /// Exact fully-associative LRU hit ratio of a cache holding `lines`
    /// lines: `hits(< lines) / total`, the same integer division
    /// [`CacheStats::hit_ratio`] performs, so the value is bit-equal to
    /// `Cache` replay. Capacities beyond the histogram cap saturate at
    /// the cap (a conservative lower bound).
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownLineSize`] when the granularity was not
    /// folded.
    pub fn fa_hit_ratio(&self, line_bytes: u64, lines: u64) -> Result<f64, BackendError> {
        let line = self.line(line_bytes)?;
        if line.total == 0 {
            return Ok(0.0);
        }
        let k = (lines as usize).min(line.prefix.len() - 1);
        Ok(line.prefix[k] as f64 / line.total as f64)
    }

    /// Set-conflict model hit ratios for `assoc = 1..=max_assoc` at
    /// fixed `(line_bytes, sets)` — the bulk query dense grids use,
    /// since every associativity of a (line, sets) pair falls out of
    /// one histogram walk.
    ///
    /// # Errors
    ///
    /// [`BackendError`] on an unknown granularity, `sets == 0` or
    /// `max_assoc == 0`.
    pub fn conflict_curve(
        &self,
        line_bytes: u64,
        sets: u64,
        max_assoc: u32,
        resolution: Resolution,
    ) -> Result<Vec<f64>, BackendError> {
        if sets == 0 || max_assoc == 0 {
            return Err(BackendError::Geometry {
                reason: "need at least one set and one way".into(),
            });
        }
        let line = self.line(line_bytes)?;
        if line.total == 0 {
            return Ok(vec![0.0; max_assoc as usize]);
        }
        if sets == 1 {
            // Fully associative at every assoc: exact integer path.
            return Ok((1..=u64::from(max_assoc))
                .map(|a| {
                    let k = (a as usize).min(line.prefix.len() - 1);
                    line.prefix[k] as f64 / line.total as f64
                })
                .collect());
        }
        let eff = line.eff_sets(sets);
        let hits = match resolution {
            Resolution::Exact => curve_exact(line, eff, max_assoc as usize),
            Resolution::Bucketed => curve_bucketed(line, eff, max_assoc as usize),
        };
        Ok(hits.into_iter().map(|h| h / line.total as f64).collect())
    }
}

/// Full-resolution conflict walk: for every distance `d`, advance the
/// truncated `Binomial(d, 1/S_eff)` pmf by one trial (`O(assoc)`) and
/// credit `hist[d] · P[B ≤ a]` to every associativity `a + 1`. Stops
/// once the conflict probability drops below [`CDF_FLOOR`] — it is
/// monotonically decreasing in `d`, so the remaining tail cannot move
/// the hit ratio.
fn curve_exact(line: &AnalyticLine, eff_sets: f64, amax: usize) -> Vec<f64> {
    let cap = line.hist.len() - 1;
    let p = (1.0 / eff_sets).min(1.0);
    let q = 1.0 - p;
    let mut hits = vec![0.0f64; amax];
    let mut pmf = vec![0.0f64; amax];
    pmf[0] = 1.0;
    for (d, &h) in line.hist.iter().enumerate().take(cap) {
        if h > 0 {
            let h = h as f64;
            let mut running = 0.0;
            for (a, hit) in hits.iter_mut().enumerate() {
                // `a + 1` ways hit iff at most `a` of the `d`
                // intervening lines landed in the set; for d ≤ a that
                // holds with certainty.
                if d <= a {
                    *hit += h;
                } else {
                    running += pmf[a];
                    *hit += h * running;
                }
            }
        }
        let mut cdf = 0.0;
        for &mass in pmf.iter() {
            cdf += mass;
        }
        if cdf < CDF_FLOOR {
            break;
        }
        for j in (1..amax).rev() {
            pmf[j] = pmf[j].mul_add(q, pmf[j - 1] * p);
        }
        pmf[0] *= q;
    }
    hits
}

/// Log-bucketed conflict walk: `O(assoc)` per bucket with a Chernoff
/// skip for buckets whose expected conflicts already swamp the widest
/// associativity.
fn curve_bucketed(line: &AnalyticLine, eff_sets: f64, amax: usize) -> Vec<f64> {
    let p = (1.0 / eff_sets).min(1.0);
    let q = 1.0 - p;
    let lnq = q.ln();
    let mut hits = vec![0.0f64; amax];
    for b in &line.buckets {
        let lam = b.mean * p;
        if lam > amax as f64 + 10.0 * lam.sqrt() + 10.0 {
            // P[B(mean, p) ≤ amax − 1] < e^{-50}: the bucket cannot
            // contribute a hit at any tracked associativity.
            continue;
        }
        let mut pmf = (b.mean * lnq).exp();
        let mut cdf = pmf;
        for (a, hit) in hits.iter_mut().enumerate() {
            if a > 0 && q > 0.0 {
                let trials_left = b.mean - (a as f64 - 1.0);
                pmf = if trials_left > 0.0 {
                    pmf * trials_left * p / (a as f64 * q)
                } else {
                    0.0
                };
                cdf += pmf;
            }
            // `mean ≤ a` interferers fit in `a + 1` ways with
            // certainty — also the numerically safe path when
            // `S_eff → 1` drives `q^mean` to underflow.
            *hit += b.count
                * if b.mean <= a as f64 {
                    1.0
                } else {
                    cdf.min(1.0)
                };
        }
    }
    hits
}

impl HitRatioBackend for Analytic {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn hit_ratio(
        &self,
        cache_bytes: u64,
        line_bytes: u64,
        assoc: u32,
    ) -> Result<f64, BackendError> {
        let sets = derive_sets(cache_bytes, line_bytes, assoc)?;
        if sets == 1 {
            return self.fa_hit_ratio(line_bytes, u64::from(assoc));
        }
        Ok(*self
            .conflict_curve(line_bytes, sets, assoc, Resolution::Exact)?
            .last()
            .expect("assoc ≥ 1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::measure_dcache;
    use simtrace::spec92::{spec92_trace, Spec92Program};
    use simtrace::{Instr, ReuseHistograms};

    fn trace(n: usize) -> Vec<Instr> {
        spec92_trace(Spec92Program::Ear, 11).take(n).collect()
    }

    fn analytic(trace: &[Instr], warmup: u64) -> Analytic {
        let mut fold = ReuseHistograms::new(8, 128, 1 << 14, warmup);
        fold.process_slice(trace);
        Analytic::from_histograms(&fold)
    }

    #[test]
    fn fully_associative_is_bit_exact_vs_cache_replay() {
        let t = trace(12_000);
        for warmup in [0u64, 2_400] {
            let a = analytic(&t, warmup);
            for (cache, line) in [(1024u64, 32u64), (4096, 32), (4096, 8), (16384, 128)] {
                let assoc = (cache / line) as u32;
                let cfg = CacheConfig::new(cache, line, assoc).expect("fully associative");
                let replay = measure_dcache(cfg, t.iter().copied(), warmup);
                let got = a.hit_ratio(cache, line, assoc).expect("covered");
                assert_eq!(
                    got,
                    replay.hit_ratio(),
                    "cache={cache} line={line} warmup={warmup}"
                );
            }
        }
    }

    #[test]
    fn simulated_backend_matches_its_own_sweep() {
        let t = trace(8_000);
        let sweep = StackDistSweep::run(32, 7, 4, 1_600, t.iter().copied()).expect("valid sweep");
        let sim = Simulated::from_sweeps(vec![sweep]);
        assert_eq!(sim.name(), "sim");
        for (cache, assoc) in [(1024u64, 1u32), (2048, 2), (8192, 4)] {
            let cfg = CacheConfig::new(cache, 32, assoc).expect("valid");
            let want = measure_dcache(cfg, t.iter().copied(), 1_600).hit_ratio();
            let got = sim.hit_ratio(cache, 32, assoc).expect("covered");
            assert_eq!(got, want, "cache={cache} assoc={assoc}");
        }
        assert!(matches!(
            sim.hit_ratio(1024, 64, 2),
            Err(BackendError::UnknownLineSize { line_bytes: 64 })
        ));
    }

    #[test]
    fn set_conflict_model_tracks_the_sweep() {
        let t = trace(20_000);
        let warmup = 4_000;
        let a = analytic(&t, warmup);
        let sweep = StackDistSweep::run(32, 10, 4, warmup, t.iter().copied()).expect("valid sweep");
        let sim = Simulated::from_sweeps(vec![sweep]);
        let mut worst = 0.0f64;
        for size_log2 in 10..=15 {
            for assoc in [1u32, 2, 4] {
                let cache = 1u64 << size_log2;
                let want = sim.hit_ratio(cache, 32, assoc).expect("covered");
                let got = a.hit_ratio(cache, 32, assoc).expect("covered");
                worst = worst.max((got - want).abs());
            }
        }
        assert!(
            worst <= SET_CONFLICT_TOLERANCE,
            "set-conflict model drift {worst} exceeds tolerance"
        );
    }

    #[test]
    fn bucketed_resolution_tracks_exact() {
        let t = trace(20_000);
        let a = analytic(&t, 0);
        for sets in [2u64, 16, 256, 1024] {
            let exact = a
                .conflict_curve(32, sets, 8, Resolution::Exact)
                .expect("covered");
            let bucketed = a
                .conflict_curve(32, sets, 8, Resolution::Bucketed)
                .expect("covered");
            for (e, b) in exact.iter().zip(&bucketed) {
                assert!(
                    (e - b).abs() < 5e-3,
                    "sets={sets}: exact {e} vs bucketed {b}"
                );
            }
        }
    }

    #[test]
    fn curves_are_monotone_in_associativity_and_sets() {
        let t = trace(10_000);
        let a = analytic(&t, 0);
        for sets in [1u64, 2, 64] {
            let curve = a
                .conflict_curve(32, sets, 16, Resolution::Exact)
                .expect("covered");
            for w in curve.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "assoc-monotone at sets={sets}");
            }
        }
        // More sets (same assoc) never hurts under the model.
        let hr_small = a.hit_ratio(1024, 32, 2).expect("covered");
        let hr_big = a.hit_ratio(8192, 32, 2).expect("covered");
        assert!(hr_big >= hr_small);
    }

    #[test]
    fn infinite_sets_recover_every_tracked_reuse() {
        let t = trace(6_000);
        let a = analytic(&t, 0);
        let curve = a
            .conflict_curve(32, 1 << 40, 1, Resolution::Exact)
            .expect("covered");
        // With astronomically many sets nothing conflicts: every
        // reference whose distance fits the histogram hits even with
        // one way.
        let cap = a.distance_cap(32).expect("covered");
        let fa = a.fa_hit_ratio(32, cap as u64).expect("covered");
        assert!((curve[0] - fa).abs() < 1e-9);
    }

    #[test]
    fn malformed_geometries_are_rejected() {
        let a = analytic(&trace(1_000), 0);
        assert!(matches!(
            a.hit_ratio(1000, 32, 2),
            Err(BackendError::Geometry { .. })
        ));
        assert!(matches!(
            a.hit_ratio(1024, 48, 2),
            Err(BackendError::Geometry { .. })
        ));
        assert!(matches!(
            a.hit_ratio(1024, 32, 0),
            Err(BackendError::Geometry { .. })
        ));
        assert!(matches!(
            a.hit_ratio(1024, 256, 2),
            Err(BackendError::UnknownLineSize { line_bytes: 256 })
        ));
        let err = BackendError::Geometry { reason: "x".into() };
        assert!(err.to_string().contains("unsupported geometry"));
    }
}
