//! Single-pass multi-configuration sweep via generalized stack
//! simulation over set-indexed stacks.
//!
//! Replaying a trace once per cache configuration makes a design-space
//! sweep cost `O(|sizes| × |assocs| × N)`. Mattson's stack algorithm
//! observes that for LRU the resident set of a small cache is always a
//! subset of a larger one's, so one pass computes *all* capacities at
//! once; Hill & Smith's all-associativity extension does the same for
//! set-indexed caches. This module implements that extension for
//! bit-selected sets: one pass over the trace yields, for a fixed line
//! size, the **exact** hit and writeback counts of every configuration
//! `(sets = 2^k ≤ 2^kmax, assoc ≤ max_assoc)` under the default policy
//! triple (LRU, write-back, write-allocate) — bit-identical to replaying
//! the trace through [`crate::Cache`].
//!
//! # Set-indexed stacks
//!
//! Lines map to sets by bit selection: with `2^k` sets, line `x` lands
//! in set `x mod 2^k`. The set-local stack distance `d_k` decides
//! hit-or-miss via `d_k < A`, and no tracked associativity exceeds
//! `max_assoc` — so only the top `max_assoc` positions of each set's
//! LRU stack are ever observable, and the engine stores exactly those:
//! per level, per set, a small contiguous run of resident lines in MRU
//! order, with clean thresholds in a parallel array (structure-of-
//! arrays: the depth scan touches lines only). An access scans the row
//! (capped distance
//! `max_assoc` means "missed everywhere"), shifts the shallower entries
//! down one slot, and reinserts `x` at the front — one or two cache
//! lines touched per level, no pointer chasing, no hash lookups. Each
//! access costs `O((kmax − kmin + 1) · max_assoc)` — independent of the
//! reuse distance — against the naive single-stack walk's
//! `O(reuse distance)`. Lines falling off a row lose nothing
//! observable: a reload from below the cap behaves identically to a
//! cold fetch in every tracked configuration.
//!
//! # Exact writebacks
//!
//! During the walk at level `k`, the line at set position `j < d_k` is
//! exactly the line evicted by this access from config
//! `(2^k sets, A = j + 1)` — that config misses (since `d_k ≥ j + 1`)
//! and its LRU victim is position `j`. Whether the eviction writes back
//! is determined by the victim's *clean threshold* `M_k(y)`: the
//! largest set-local depth at which `y` was loaded since it was last
//! stored (`∞` if never stored, `0` right after a store). A load deeper
//! than the associativity refetches the line clean, so `y` is dirty in
//! `(2^k, A)` iff `A > M_k(y)` — dirtiness is monotone in `A` and one
//! threshold per level captures it for every associativity.
//!
//! # Warm-up
//!
//! [`crate::explore::measure_dcache`] resets statistics once the
//! instruction count reaches `warmup` (cache contents survive). The
//! sweep mirrors that exactly by snapshotting its counters at the same
//! instant and subtracting the snapshot at query time — including the
//! corner where the trace is shorter than the warm-up, in which case no
//! reset ever happens and all accesses count.
//!
//! ```
//! use simcache::stackdist::StackDistSweep;
//! use simcache::{explore::measure_dcache, CacheConfig};
//! use simtrace::gen::{PatternTrace, TraceShape, WorkingSet};
//!
//! let trace = || {
//!     PatternTrace::new(WorkingSet::new(0, 8 * 1024, 0.3, 4), TraceShape::default(), 1)
//!         .take(20_000)
//! };
//! // One pass answers every power-of-two geometry at L = 32...
//! let sweep = StackDistSweep::run(32, 8, 4, 1_000, trace())?;
//! // ...bit-identical to a dedicated replay per configuration.
//! let cfg = CacheConfig::new(8 * 1024, 32, 2)?;
//! assert_eq!(sweep.stats_for(&cfg).unwrap(), measure_dcache(cfg, trace(), 1_000));
//! # Ok::<(), simcache::ConfigError>(())
//! ```

use crate::config::{CacheConfig, ConfigError, Replacement, WriteMiss, WritePolicy};
use crate::stats::CacheStats;
use simtrace::{Instr, MemOp};
use std::fmt;

/// Threshold sentinel marking an unoccupied row slot. Live thresholds
/// are capped at `max_assoc ≤ 65534`, so the value cannot collide.
const EMPTY_M: u16 = u16::MAX;

/// Why a sweep cannot answer for a particular configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepQueryError {
    /// The configuration's line size differs from the sweep's.
    LineMismatch {
        /// Line size the sweep was run with.
        sweep: u64,
        /// Line size of the queried configuration.
        queried: u64,
    },
    /// The configuration uses a policy other than LRU + write-back +
    /// write-allocate (the only triple with the LRU inclusion property
    /// the single-pass algorithm relies on).
    UnsupportedPolicy,
    /// The configuration needs a set count outside the sweep's range.
    SetsOutOfRange {
        /// Sets required by the configuration.
        sets: u64,
        /// Smallest set count the sweep covers.
        min_sets: u64,
        /// Largest set count the sweep covers.
        max_sets: u64,
    },
    /// The configuration needs more ways than the sweep tracked.
    AssocOutOfRange {
        /// Ways required by the configuration.
        assoc: u32,
        /// Largest associativity the sweep covers.
        max_assoc: u32,
    },
}

impl fmt::Display for SweepQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepQueryError::LineMismatch { sweep, queried } => {
                write!(f, "sweep ran with {sweep}B lines, queried for {queried}B")
            }
            SweepQueryError::UnsupportedPolicy => {
                f.write_str("single-pass sweep covers LRU + write-back + write-allocate only")
            }
            SweepQueryError::SetsOutOfRange {
                sets,
                min_sets,
                max_sets,
            } => {
                write!(
                    f,
                    "configuration needs {sets} sets, sweep covers {min_sets}..={max_sets}"
                )
            }
            SweepQueryError::AssocOutOfRange { assoc, max_assoc } => {
                write!(
                    f,
                    "configuration needs {assoc} ways, sweep covers up to {max_assoc}"
                )
            }
        }
    }
}

impl std::error::Error for SweepQueryError {}

/// Returns `true` when [`StackDistSweep`] can reproduce this
/// configuration's statistics exactly (policy-wise; geometry is checked
/// per query).
pub fn fast_path_supported(cfg: &CacheConfig) -> bool {
    cfg.replacement == Replacement::Lru
        && cfg.write_policy == WritePolicy::WriteBack
        && cfg.write_miss == WriteMiss::Allocate
}

#[derive(Debug, Clone, Default)]
struct Counters {
    /// `hist[op][lvl * (max_assoc + 1) + d]`: accesses of `op` whose
    /// set-local stack distance at level `lvl` is `d` (`d = max_assoc`
    /// buckets "at least `max_assoc`, or cold").
    hist: [Vec<u64>; 2],
    /// `wb[lvl * max_assoc + j]`: writebacks of config
    /// `(2^(kmin + lvl) sets, j + 1 ways)`.
    wb: Vec<u64>,
}

impl Counters {
    fn new(levels: usize, max_assoc: u32) -> Self {
        Counters {
            hist: [
                vec![0; levels * (max_assoc as usize + 1)],
                vec![0; levels * (max_assoc as usize + 1)],
            ],
            wb: vec![0; levels * max_assoc as usize],
        }
    }
}

/// Instructions per block of the slice-processing fast path: the
/// reference-extraction pre-pass runs over fixed-width `chunks_exact`
/// blocks (no data-dependent control flow), which the stable-Rust
/// autovectorizer turns into straight-line SIMD-friendly code.
const BLOCK: usize = 32;

/// A single-pass exact sweep over every power-of-two LRU configuration
/// at one line size. See the [module docs](self) for the algorithm.
///
/// The per-set stacks are stored structure-of-arrays: the depth scan —
/// the hottest loop of the whole sweep — touches only the contiguous
/// `u64` line array (8 bytes/slot instead of a 16-byte interleaved
/// entry), and the clean thresholds live in a parallel `u16` array read
/// only on the writeback walk and the reinsert.
#[derive(Debug, Clone)]
pub struct StackDistSweep {
    line_bytes: u64,
    line_shift: u32,
    kmin: u32,
    kmax: u32,
    max_assoc: u32,
    warmup: u64,
    instrs: u64,
    /// Truncated per-set LRU stacks, lines only: level `k = kmin + lvl`
    /// keeps its set `s`'s top `max_assoc` resident lines, MRU first,
    /// at `lines[lvl][s * max_assoc..][..max_assoc]`.
    lines: Vec<Vec<u64>>,
    /// Clean thresholds `M_k` parallel to `lines` (the line is dirty in
    /// `(2^k, A)` iff `A > m`; `EMPTY_M` marks an unoccupied slot;
    /// live thresholds at or above `max_assoc` mean "clean everywhere
    /// tracked").
    marks: Vec<Vec<u16>>,
    totals: Counters,
    /// Totals frozen when `instrs` reached `warmup` (the moment
    /// `measure_dcache` resets its statistics).
    warm_base: Option<Counters>,
}

impl StackDistSweep {
    /// Creates a sweep covering sets `1..=2^max_sets_log2` and
    /// associativities `1..=max_assoc` at the given line size, with the
    /// first `warmup` instructions excluded from statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NotPowerOfTwo`] for an invalid line size.
    ///
    /// # Panics
    ///
    /// Panics if `max_assoc` is zero or ≥ 65535 (the clean-threshold
    /// storage is 16-bit), or `max_sets_log2` exceeds 63.
    pub fn new(
        line_bytes: u64,
        max_sets_log2: u32,
        max_assoc: u32,
        warmup: u64,
    ) -> Result<Self, ConfigError> {
        Self::new_range(line_bytes, 0, max_sets_log2, max_assoc, warmup)
    }

    /// Like [`StackDistSweep::new`], but only tracking set counts
    /// `2^min_sets_log2..=2^max_sets_log2`. Skipping levels a grid will
    /// never query cuts the per-access work proportionally.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NotPowerOfTwo`] for an invalid line size.
    ///
    /// # Panics
    ///
    /// Panics on the same bounds as [`StackDistSweep::new`], or when
    /// `min_sets_log2 > max_sets_log2`.
    pub fn new_range(
        line_bytes: u64,
        min_sets_log2: u32,
        max_sets_log2: u32,
        max_assoc: u32,
        warmup: u64,
    ) -> Result<Self, ConfigError> {
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "line size",
                value: line_bytes,
            });
        }
        assert!(max_assoc > 0, "max_assoc must be at least 1");
        assert!(
            max_assoc < u32::from(EMPTY_M),
            "max_assoc must fit 16-bit thresholds"
        );
        assert!(max_sets_log2 < 64, "set count must fit an u64");
        assert!(min_sets_log2 <= max_sets_log2, "empty set-count range");
        let levels = (max_sets_log2 - min_sets_log2 + 1) as usize;
        Ok(StackDistSweep {
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            kmin: min_sets_log2,
            kmax: max_sets_log2,
            max_assoc,
            warmup,
            instrs: 0,
            lines: (min_sets_log2..=max_sets_log2)
                .map(|k| vec![0u64; (1usize << k) * max_assoc as usize])
                .collect(),
            marks: (min_sets_log2..=max_sets_log2)
                .map(|k| vec![EMPTY_M; (1usize << k) * max_assoc as usize])
                .collect(),
            totals: Counters::new(levels, max_assoc),
            warm_base: None,
        })
    }

    /// Builds a sweep and processes an entire trace through it.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NotPowerOfTwo`] for an invalid line size.
    pub fn run(
        line_bytes: u64,
        max_sets_log2: u32,
        max_assoc: u32,
        warmup: u64,
        trace: impl IntoIterator<Item = Instr>,
    ) -> Result<Self, ConfigError> {
        let mut sweep = Self::new(line_bytes, max_sets_log2, max_assoc, warmup)?;
        for instr in trace {
            sweep.process(instr);
        }
        Ok(sweep)
    }

    /// The line size this sweep was run with.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// The smallest set count covered (`2^min_sets_log2`).
    pub fn min_sets(&self) -> u64 {
        1u64 << self.kmin
    }

    /// The largest set count covered (`2^max_sets_log2`).
    pub fn max_sets(&self) -> u64 {
        1u64 << self.kmax
    }

    /// The largest associativity covered.
    pub fn max_assoc(&self) -> u32 {
        self.max_assoc
    }

    /// Feeds one instruction. Non-memory instructions advance the
    /// warm-up clock only, exactly like
    /// [`crate::explore::measure_dcache`].
    pub fn process(&mut self, instr: Instr) {
        if let Some(mem) = instr.mem {
            self.access(mem.op, mem.addr.raw() >> self.line_shift);
        }
        self.instrs += 1;
        if self.instrs == self.warmup {
            self.warm_base = Some(self.totals.clone());
        }
    }

    /// Feeds a block of instructions — the streaming-chunk entry point,
    /// bit-identical to calling [`StackDistSweep::process`] per
    /// instruction (including the exact warm-up snapshot instant, which
    /// may fall inside the slice).
    ///
    /// The slice path amortises the warm-up bookkeeping out of the
    /// inner loop and extracts references blockwise ahead of the stack
    /// walk, so the per-access state machine runs on compacted
    /// (kind, line) pairs instead of 24-byte instructions.
    pub fn process_slice(&mut self, instrs: &[Instr]) {
        let mut rest = instrs;
        // The warm-up boundary splits the slice: the snapshot must be
        // taken exactly when the instruction count reaches `warmup`.
        if self.warm_base.is_none() && self.warmup > self.instrs {
            let until = (self.warmup - self.instrs) as usize;
            if until <= rest.len() {
                let (head, tail) = rest.split_at(until);
                self.burst(head);
                self.warm_base = Some(self.totals.clone());
                rest = tail;
            }
        }
        self.burst(rest);
    }

    /// Processes a warm-up-free run of instructions. The extraction
    /// pre-pass has no data-dependent control flow over each
    /// `chunks_exact` block, so it autovectorizes on stable Rust; the
    /// stack walk then consumes the compacted reference stream.
    fn burst(&mut self, instrs: &[Instr]) {
        let shift = self.line_shift;
        let mut lines = [0u64; BLOCK];
        let mut kinds = [0u8; BLOCK]; // 0 = none, 1 = load, 2 = store
        let mut blocks = instrs.chunks_exact(BLOCK);
        for block in blocks.by_ref() {
            for (i, instr) in block.iter().enumerate() {
                match instr.mem {
                    Some(m) => {
                        lines[i] = m.addr.raw() >> shift;
                        kinds[i] = 1 + m.op.is_store() as u8;
                    }
                    None => kinds[i] = 0,
                }
            }
            for i in 0..BLOCK {
                match kinds[i] {
                    0 => {}
                    1 => self.access(MemOp::Load, lines[i]),
                    _ => self.access(MemOp::Store, lines[i]),
                }
            }
        }
        for instr in blocks.remainder() {
            if let Some(m) = instr.mem {
                self.access(m.op, m.addr.raw() >> shift);
            }
        }
        self.instrs += instrs.len() as u64;
    }

    fn access(&mut self, op: MemOp, x: u64) {
        let levels = self.lines.len();
        let max_a = self.max_assoc as usize;
        let Counters { hist, wb } = &mut self.totals;
        let hist = &mut hist[op_index(op)];

        for lvl in 0..levels {
            let k = self.kmin + lvl as u32;
            let set = (x & ((1u64 << k) - 1)) as usize;
            let base = set * max_a;
            let row_lines = &mut self.lines[lvl][base..base + max_a];
            let row_marks = &mut self.marks[lvl][base..base + max_a];

            // Depth scan: the MRU slot is checked first (the dominant,
            // perfectly-predicted case), then the rest of the row in a
            // branch-light reverse pass — no early exit, so the
            // contiguous equality scan over the line array vectorizes;
            // the lowest matching position wins. Empty slots
            // (m = EMPTY_M) never match.
            let depth = if row_lines[0] == x && row_marks[0] != EMPTY_M {
                0
            } else {
                let mut d = max_a; // Capped distance; max_a = "miss everywhere".
                for j in (1..max_a).rev() {
                    if row_lines[j] == x && row_marks[j] != EMPTY_M {
                        d = j;
                    }
                }
                d
            };

            // Position j < depth is the line evicted from config
            // (2^k sets, j + 1 ways) by this access (which misses
            // there, since depth ≥ j + 1): charge its clean threshold.
            // Branchless — empty slots never satisfy j ≥ EMPTY_M.
            for j in 0..depth {
                wb[lvl * max_a + j] += u64::from(j >= usize::from(row_marks[j]));
            }

            // MRU shortcut: MRU in this set implies MRU in every
            // refinement of it (no access touched this set since `x`,
            // so none touched any subset either). Distance 0 from here
            // down: no scans, no writebacks, no shifting — only a
            // store's thresholds change (a load's `max(m, 0)` is a
            // no-op).
            if depth == 0 {
                for l2 in lvl..levels {
                    hist[l2 * (max_a + 1)] += 1;
                }
                if op == MemOp::Store {
                    for (l2, marks) in self.marks.iter_mut().enumerate().skip(lvl) {
                        let k2 = self.kmin + l2 as u32;
                        let set2 = (x & ((1u64 << k2) - 1)) as usize;
                        marks[set2 * max_a] = 0;
                    }
                }
                return;
            }
            hist[lvl * (max_a + 1) + depth] += 1;

            // Reinsert x at the MRU position: a store makes the line
            // dirty at depth 0; a load refetches it clean anywhere
            // deeper than the last store's reach, with depths at or
            // beyond the cap pinned to `max_a` ("clean everywhere
            // tracked" — indistinguishable from a cold fetch).
            let m = match op {
                MemOp::Store => 0,
                MemOp::Load if depth < max_a => row_marks[depth].max(depth as u16),
                MemOp::Load => max_a as u16,
            };
            let shifted = depth.min(max_a - 1);
            row_lines.copy_within(..shifted, 1);
            row_marks.copy_within(..shifted, 1);
            row_lines[0] = x;
            row_marks[0] = m;
        }
    }

    /// Post-warm-up statistics of config `(2^sets_log2 sets, assoc
    /// ways)`, bit-identical to replaying the trace through
    /// [`crate::Cache`] with the default policies.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is outside the sweep's coverage; use
    /// [`StackDistSweep::stats_for`] for a checked query.
    pub fn stats(&self, sets_log2: u32, assoc: u32) -> CacheStats {
        assert!(
            (self.kmin..=self.kmax).contains(&sets_log2),
            "sets 2^{sets_log2} outside sweep range 2^{}..=2^{}",
            self.kmin,
            self.kmax
        );
        assert!(
            assoc >= 1 && assoc <= self.max_assoc,
            "assoc {assoc} outside sweep range 1..={}",
            self.max_assoc
        );
        let lvl = (sets_log2 - self.kmin) as usize;
        let a = assoc as usize;
        let count = |sel: fn(&Counters) -> &Vec<u64>, idx: usize| -> u64 {
            let total = sel(&self.totals)[idx];
            match &self.warm_base {
                Some(base) => total - sel(base)[idx],
                None => total,
            }
        };
        let hist_base = lvl * (self.max_assoc as usize + 1);
        let sum_hits =
            |op: usize| -> u64 { (0..a).map(|d| count(hist_sel(op), hist_base + d)).sum() };
        let sum_all = |op: usize| -> u64 {
            (0..=self.max_assoc as usize)
                .map(|d| count(hist_sel(op), hist_base + d))
                .sum()
        };
        let load_hits = sum_hits(0);
        let store_hits = sum_hits(1);
        let load_misses = sum_all(0) - load_hits;
        let store_misses = sum_all(1) - store_hits;
        CacheStats {
            load_hits,
            load_misses,
            store_hits,
            store_misses,
            // Write-allocate: every miss fills.
            fills: load_misses + store_misses,
            writebacks: count(|c| &c.wb, lvl * self.max_assoc as usize + (a - 1)),
            write_arounds: 0,
            write_throughs: 0,
            prefetch_fills: 0,
        }
    }

    /// Checked query: the statistics this sweep implies for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepQueryError`] when `cfg` uses a different line
    /// size, a non-default policy, or geometry beyond the sweep's
    /// coverage.
    pub fn stats_for(&self, cfg: &CacheConfig) -> Result<CacheStats, SweepQueryError> {
        if cfg.line_bytes() != self.line_bytes {
            return Err(SweepQueryError::LineMismatch {
                sweep: self.line_bytes,
                queried: cfg.line_bytes(),
            });
        }
        if !fast_path_supported(cfg) {
            return Err(SweepQueryError::UnsupportedPolicy);
        }
        let sets = cfg.num_sets();
        if sets < self.min_sets() || sets > self.max_sets() {
            return Err(SweepQueryError::SetsOutOfRange {
                sets,
                min_sets: self.min_sets(),
                max_sets: self.max_sets(),
            });
        }
        if cfg.assoc() > self.max_assoc {
            return Err(SweepQueryError::AssocOutOfRange {
                assoc: cfg.assoc(),
                max_assoc: self.max_assoc,
            });
        }
        Ok(self.stats(sets.trailing_zeros(), cfg.assoc()))
    }

    /// Instructions processed so far (memory-referencing or not).
    pub fn instructions(&self) -> u64 {
        self.instrs
    }
}

fn op_index(op: MemOp) -> usize {
    match op {
        MemOp::Load => 0,
        MemOp::Store => 1,
    }
}

fn hist_sel(op: usize) -> fn(&Counters) -> &Vec<u64> {
    match op {
        0 => |c: &Counters| &c.hist[0],
        _ => |c: &Counters| &c.hist[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::explore::measure_dcache;
    use simtrace::gen::{PatternTrace, StridedSweep, TraceShape, WorkingSet, ZipfWorkingSet};
    use simtrace::{Addr, MemRef};

    fn mem(op: MemOp, addr: u64) -> Instr {
        Instr {
            pc: Addr::new(0),
            mem: Some(MemRef {
                op,
                addr: Addr::new(addr),
                size: 4,
            }),
        }
    }

    /// Replays `trace` per config and checks the sweep agrees exactly.
    fn assert_exact(trace: &[Instr], line_bytes: u64, kmax: u32, max_assoc: u32, warmup: u64) {
        let sweep = StackDistSweep::run(line_bytes, kmax, max_assoc, warmup, trace.iter().copied())
            .expect("valid sweep");
        for k in 0..=kmax {
            for assoc in 1..=max_assoc {
                if !assoc.is_power_of_two() {
                    continue; // CacheConfig insists on pow2 ways.
                }
                let size = (1u64 << k) * line_bytes * u64::from(assoc);
                let cfg = CacheConfig::new(size, line_bytes, assoc).expect("valid cfg");
                let replay = measure_dcache(cfg, trace.iter().copied(), warmup);
                let swept = sweep.stats(k, assoc);
                assert_eq!(swept, replay, "2^{k} sets × {assoc} ways, L={line_bytes}");
            }
        }
    }

    #[test]
    fn tiny_handwritten_trace_matches_replay() {
        let t = [
            mem(MemOp::Load, 0x000),
            mem(MemOp::Store, 0x040),
            mem(MemOp::Load, 0x080),
            mem(MemOp::Load, 0x000),
            mem(MemOp::Store, 0x0C0),
            mem(MemOp::Load, 0x040),
            mem(MemOp::Load, 0x100),
            mem(MemOp::Store, 0x000),
            mem(MemOp::Load, 0x140),
            mem(MemOp::Load, 0x040),
        ];
        assert_exact(&t, 32, 3, 4, 0);
    }

    #[test]
    fn working_set_trace_matches_replay_all_geometries() {
        let trace: Vec<Instr> = PatternTrace::new(
            WorkingSet::new(0, 4 * 1024, 0.3, 4),
            TraceShape::default(),
            11,
        )
        .take(20_000)
        .collect();
        assert_exact(&trace, 32, 5, 4, 0);
    }

    #[test]
    fn zipf_trace_matches_replay_with_warmup() {
        let trace: Vec<Instr> = PatternTrace::new(
            ZipfWorkingSet::new(0, 16 * 1024, 8, 1.2, 0.2),
            TraceShape::default(),
            5,
        )
        .take(15_000)
        .collect();
        assert_exact(&trace, 16, 6, 2, 3_000);
    }

    #[test]
    fn strided_trace_matches_replay() {
        let trace: Vec<Instr> = PatternTrace::new(
            StridedSweep::new(0, 1 << 16, 4, 4, 0),
            TraceShape::default(),
            3,
        )
        .take(12_000)
        .collect();
        assert_exact(&trace, 64, 4, 2, 1_000);
    }

    #[test]
    fn warmup_longer_than_trace_counts_everything() {
        // measure_dcache never resets when the trace is shorter than the
        // warm-up; the sweep must mirror that.
        let t = [mem(MemOp::Load, 0x000), mem(MemOp::Load, 0x000)];
        let sweep = StackDistSweep::run(32, 2, 2, 1_000, t.iter().copied()).unwrap();
        let cfg = CacheConfig::new(256, 32, 2).unwrap();
        let replay = measure_dcache(cfg, t.iter().copied(), 1_000);
        assert_eq!(sweep.stats_for(&cfg).unwrap(), replay);
        assert_eq!(replay.accesses(), 2, "nothing was discarded");
    }

    #[test]
    fn dirty_line_from_warmup_writes_back_after_warmup() {
        // The store happens inside the warm-up window; its writeback
        // lands after it and must still be counted.
        let t = [
            mem(MemOp::Store, 0x000), // dirty A (warm-up)
            mem(MemOp::Load, 0x100),  // same set in a 1-set cache
            mem(MemOp::Load, 0x200),  // evicts A → writeback (counted)
        ];
        let sweep = StackDistSweep::run(32, 0, 2, 1, t.iter().copied()).unwrap();
        let cfg = CacheConfig::new(64, 32, 2).unwrap();
        let replay = measure_dcache(cfg, t.iter().copied(), 1);
        let swept = sweep.stats_for(&cfg).unwrap();
        assert_eq!(swept, replay);
        assert_eq!(swept.writebacks, 1);
    }

    #[test]
    fn load_refetch_cleans_the_line() {
        // Store A, thrash it out of the 1-way cache, load it back: the
        // reloaded copy is clean, so its next eviction must not write
        // back in the 1-way config — while wider configs, where A never
        // left, still see it dirty.
        let t = [
            mem(MemOp::Store, 0x000), // A dirty
            mem(MemOp::Load, 0x100),  // B: evicts A in (1 set, 1 way) → wb
            mem(MemOp::Load, 0x000),  // A back, clean in 1-way
            mem(MemOp::Load, 0x100),  // B: evicts A again → clean now
            mem(MemOp::Load, 0x000),
        ];
        assert_exact(&t, 32, 2, 4, 0);
        let sweep = StackDistSweep::run(32, 0, 4, 0, t.iter().copied()).unwrap();
        assert_eq!(
            sweep.stats(0, 1).writebacks,
            1,
            "only the first eviction is dirty"
        );
        // In the 4-way config nothing is ever evicted.
        assert_eq!(sweep.stats(0, 4).writebacks, 0);
    }

    #[test]
    fn direct_mapped_conflicts_match_cache() {
        // The cache.rs thrashing scenario: two lines in the same set of
        // a direct-mapped cache never hit.
        let mut t = Vec::new();
        for _ in 0..10 {
            t.push(mem(MemOp::Load, 0));
            t.push(mem(MemOp::Load, 32 * 32)); // same set, different tag
        }
        let sweep = StackDistSweep::run(32, 5, 2, 0, t.iter().copied()).unwrap();
        let dm = sweep.stats(5, 1);
        assert_eq!(dm.hits(), 0, "direct-mapped thrash");
        let two_way = sweep.stats(4, 2);
        assert_eq!(two_way.misses(), 2, "two ways resolve the conflict");
    }

    #[test]
    fn non_power_of_two_assoc_queries_work() {
        // The sweep answers any assoc ≤ max_assoc, including non-pow2
        // (useful for curves); LRU hit counts must be monotone in ways.
        let t: Vec<Instr> = PatternTrace::new(
            WorkingSet::new(0, 2 * 1024, 0.2, 4),
            TraceShape::default(),
            9,
        )
        .take(5_000)
        .collect();
        let sweep = StackDistSweep::run(32, 0, 3, 0, t.iter().copied()).unwrap();
        let s2 = sweep.stats(0, 2);
        let s3 = sweep.stats(0, 3);
        assert!(
            s3.hits() >= s2.hits(),
            "more ways cannot hit less under LRU"
        );
    }

    #[test]
    fn rejects_bad_line_and_config_mismatches() {
        assert!(matches!(
            StackDistSweep::new(24, 3, 2, 0),
            Err(ConfigError::NotPowerOfTwo { .. })
        ));
        let sweep = StackDistSweep::new(32, 3, 2, 0).unwrap();
        let other_line = CacheConfig::new(1024, 16, 2).unwrap();
        assert!(matches!(
            sweep.stats_for(&other_line),
            Err(SweepQueryError::LineMismatch { .. })
        ));
        let fifo = CacheConfig::new(1024, 32, 2)
            .unwrap()
            .with_replacement(Replacement::Fifo);
        assert_eq!(
            sweep.stats_for(&fifo),
            Err(SweepQueryError::UnsupportedPolicy)
        );
        let too_many_sets = CacheConfig::new(32 * 1024, 32, 2).unwrap();
        assert!(matches!(
            sweep.stats_for(&too_many_sets),
            Err(SweepQueryError::SetsOutOfRange { .. })
        ));
        let too_wide = CacheConfig::new(1024, 32, 4).unwrap();
        assert!(matches!(
            sweep.stats_for(&too_wide),
            Err(SweepQueryError::AssocOutOfRange { .. })
        ));
    }

    #[test]
    fn range_restricted_sweep_matches_full_sweep() {
        let trace: Vec<Instr> = PatternTrace::new(
            WorkingSet::new(0, 4 * 1024, 0.3, 4),
            TraceShape::default(),
            13,
        )
        .take(10_000)
        .collect();
        let full = StackDistSweep::run(32, 6, 2, 500, trace.iter().copied()).unwrap();
        let mut narrow = StackDistSweep::new_range(32, 3, 6, 2, 500).unwrap();
        for i in &trace {
            narrow.process(*i);
        }
        for k in 3..=6 {
            for a in 1..=2 {
                assert_eq!(
                    narrow.stats(k, a),
                    full.stats(k, a),
                    "2^{k} sets × {a} ways"
                );
            }
        }
        // Below the tracked range the checked query is rejected.
        let small = CacheConfig::new(32 * 4 * 2, 32, 2).unwrap(); // 4 sets < 2^3
        assert!(matches!(
            narrow.stats_for(&small),
            Err(SweepQueryError::SetsOutOfRange { .. })
        ));
        assert_eq!(narrow.min_sets(), 8);
    }

    #[test]
    fn process_slice_matches_per_instruction_processing() {
        let trace: Vec<Instr> = PatternTrace::new(
            ZipfWorkingSet::new(0, 8 * 1024, 8, 1.1, 0.3),
            TraceShape::default(),
            17,
        )
        .take(9_000)
        .collect();
        // Warm-up falls inside a chunk; chunk sizes straddle the BLOCK
        // width so both the chunks_exact path and the remainder run.
        for chunk in [1usize, 13, BLOCK, 200, 4_096, 9_000] {
            let mut scalar = StackDistSweep::new(32, 5, 4, 2_500).unwrap();
            for i in &trace {
                scalar.process(*i);
            }
            let mut sliced = StackDistSweep::new(32, 5, 4, 2_500).unwrap();
            for piece in trace.chunks(chunk) {
                sliced.process_slice(piece);
            }
            assert_eq!(sliced.instructions(), scalar.instructions());
            for k in 0..=5 {
                for a in 1..=4 {
                    assert_eq!(
                        sliced.stats(k, a),
                        scalar.stats(k, a),
                        "chunk={chunk} 2^{k} sets × {a} ways"
                    );
                }
            }
        }
    }

    #[test]
    fn accessors_report_coverage() {
        let sweep = StackDistSweep::new(64, 4, 8, 100).unwrap();
        assert_eq!(sweep.line_bytes(), 64);
        assert_eq!(sweep.max_sets(), 16);
        assert_eq!(sweep.max_assoc(), 8);
        assert_eq!(sweep.instructions(), 0);
    }

    #[test]
    fn matches_cache_outcome_stream() {
        // Beyond aggregate stats: cross-check hit/miss access by access
        // against a live Cache for one config.
        let trace: Vec<Instr> = PatternTrace::new(
            WorkingSet::new(0, 4 * 1024, 0.4, 4),
            TraceShape::default(),
            21,
        )
        .take(4_000)
        .collect();
        let cfg = CacheConfig::new(2 * 1024, 32, 2).unwrap();
        let mut cache = Cache::new(cfg);
        let mut sweep = StackDistSweep::new(32, cfg.num_sets().trailing_zeros(), 2, 0).unwrap();
        let mut hits_replay = 0u64;
        for i in &trace {
            if let Some(m) = i.mem {
                if cache.access(m.op, m.addr).hit {
                    hits_replay += 1;
                }
            }
            sweep.process(*i);
        }
        assert_eq!(sweep.stats_for(&cfg).unwrap().hits(), hits_replay);
    }
}
