//! System configurations and the delay-per-missed-line kernel `G`.
//!
//! Every feature combination the paper compares reduces to one number per
//! system: the expected memory delay a single cache miss inflicts,
//!
//! ```text
//! G = miss service + flush cost
//! ```
//!
//! in CPU cycles (Table 3). The equivalence law in [`crate::equiv`] then
//! needs nothing else. Because [`SystemConfig`] composes bus factor,
//! stalling spec, write buffering and pipelining freely, the model also
//! covers combinations the paper leaves implicit (e.g. doubled bus *plus*
//! write buffers), which the ablation benches exercise.

use crate::error::TradeoffError;
use crate::params::{FlushRatio, Machine};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the processor stalls on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StallSpec {
    /// Full stalling: the miss costs the whole line fill (`φ = L/D`).
    Full,
    /// A partially-stalling cache with a measured stalling factor `φ`
    /// (from trace-driven simulation, in units of `β_m`).
    Partial(f64),
}

impl StallSpec {
    /// The effective stalling factor for a machine, in units of `β_m`.
    pub fn phi(&self, chunks: f64) -> f64 {
        match *self {
            StallSpec::Full => chunks,
            StallSpec::Partial(phi) => phi,
        }
    }
}

/// One side of a tradeoff comparison.
///
/// `bus_factor` scales the [`Machine`] bus width (2.0 models the doubled
/// bus); `pipeline_q` switches the memory to pipelined mode with issue
/// interval `q`; `write_buffered` removes the flush term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Multiplier on the machine's bus width (1.0 = baseline `D`).
    pub bus_factor: f64,
    /// Stalling behaviour.
    pub stall: StallSpec,
    /// Read-bypassing write buffers present (flushes hidden).
    pub write_buffered: bool,
    /// Pipelined memory issue interval `q`, if pipelined.
    pub pipeline_q: Option<f64>,
    /// Flush ratio `α` of this system.
    pub alpha: FlushRatio,
}

impl SystemConfig {
    /// The paper's baseline: full-stalling, non-pipelined, unbuffered, at
    /// the machine's native bus width.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`; use [`FlushRatio::new`] for
    /// fallible construction.
    pub fn full_stalling(alpha: f64) -> Self {
        SystemConfig {
            bus_factor: 1.0,
            stall: StallSpec::Full,
            write_buffered: false,
            pipeline_q: None,
            alpha: FlushRatio::new(alpha).expect("alpha in [0, 1]"),
        }
    }

    /// Returns this system with its bus scaled by `factor`.
    pub fn with_bus_factor(mut self, factor: f64) -> Self {
        self.bus_factor = factor;
        self
    }

    /// Returns this system with a measured partial-stalling factor.
    pub fn with_partial_stall(mut self, phi: f64) -> Self {
        self.stall = StallSpec::Partial(phi);
        self
    }

    /// Returns this system with read-bypassing write buffers.
    pub fn with_write_buffers(mut self) -> Self {
        self.write_buffered = true;
        self
    }

    /// Returns this system with a pipelined memory of issue interval `q`.
    pub fn with_pipelined_memory(mut self, q: f64) -> Self {
        self.pipeline_q = Some(q);
        self
    }

    /// Returns this system with flush ratio `alpha`.
    pub fn with_alpha(mut self, alpha: FlushRatio) -> Self {
        self.alpha = alpha;
        self
    }

    /// Effective chunks per line `L / (D · bus_factor)` on `machine`.
    ///
    /// # Errors
    ///
    /// Returns an error if the scaled bus is wider than the line or the
    /// factor is not positive.
    pub fn chunks(&self, machine: &Machine) -> Result<f64, TradeoffError> {
        if !(self.bus_factor.is_finite() && self.bus_factor > 0.0) {
            return Err(TradeoffError::NotPositive {
                what: "bus factor",
                value: self.bus_factor,
            });
        }
        let eff_bus = machine.bus_bytes() * self.bus_factor;
        let chunks = machine.line_bytes() / eff_bus;
        if chunks < 1.0 {
            return Err(TradeoffError::LineNarrowerThanBus {
                line_bytes: machine.line_bytes(),
                bus_bytes: eff_bus,
            });
        }
        Ok(chunks)
    }

    /// The time to move one full line over this system's bus: `(L/D)β_m`
    /// non-pipelined, `β_p = β_m + q(L/D − 1)` pipelined (Eq. 9).
    ///
    /// # Errors
    ///
    /// Propagates chunk-validation errors.
    pub fn line_transfer_time(&self, machine: &Machine) -> Result<f64, TradeoffError> {
        let chunks = self.chunks(machine)?;
        let beta = machine.beta_m();
        Ok(match self.pipeline_q {
            None => chunks * beta,
            Some(q) => {
                if !(q.is_finite() && q > 0.0) {
                    return Err(TradeoffError::NotPositive {
                        what: "pipeline q",
                        value: q,
                    });
                }
                beta + q * (chunks - 1.0)
            }
        })
    }

    /// The miss-service time the *processor* observes for one miss:
    /// `φ·β_m`, or the full pipelined fill `β_p` under full stalling.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; rejects `φ` outside Table 2's
    /// `[0, L/D]` bounds.
    pub fn miss_service_time(&self, machine: &Machine) -> Result<f64, TradeoffError> {
        let chunks = self.chunks(machine)?;
        match self.stall {
            StallSpec::Full => self.line_transfer_time(machine),
            StallSpec::Partial(phi) => {
                if !(phi.is_finite() && (0.0..=chunks).contains(&phi)) {
                    return Err(TradeoffError::PhiOutOfRange {
                        phi,
                        min: 0.0,
                        max: chunks,
                    });
                }
                Ok(phi * machine.beta_m())
            }
        }
    }

    /// The expected flush cost per miss: `α · (line transfer time)`, or
    /// zero with write buffers.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn flush_cost(&self, machine: &Machine) -> Result<f64, TradeoffError> {
        if self.write_buffered {
            Ok(0.0)
        } else {
            Ok(self.alpha.value() * self.line_transfer_time(machine)?)
        }
    }

    /// The delay per missed line `G` (Table 3): miss service plus flush.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn delay_per_missed_line(&self, machine: &Machine) -> Result<f64, TradeoffError> {
        Ok(self.miss_service_time(machine)? + self.flush_cost(machine)?)
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stall = match self.stall {
            StallSpec::Full => "FS".to_string(),
            StallSpec::Partial(phi) => format!("φ={phi:.2}"),
        };
        write!(f, "bus×{} {} {}", self.bus_factor, stall, self.alpha)?;
        if self.write_buffered {
            f.write_str(" +WB")?;
        }
        if let Some(q) = self.pipeline_q {
            write!(f, " pipelined(q={q})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(4.0, 32.0, 8.0).unwrap()
    }

    #[test]
    fn baseline_g_matches_table3() {
        // FS baseline: G = (L/D)(1 + α)β = 8 · 1.5 · 8 = 96.
        let g = SystemConfig::full_stalling(0.5)
            .delay_per_missed_line(&machine())
            .unwrap();
        assert!((g - 96.0).abs() < 1e-12);
    }

    #[test]
    fn doubled_bus_halves_both_terms() {
        let g = SystemConfig::full_stalling(0.5)
            .with_bus_factor(2.0)
            .delay_per_missed_line(&machine())
            .unwrap();
        assert!((g - 48.0).abs() < 1e-12);
    }

    #[test]
    fn write_buffers_remove_flush_term() {
        let g = SystemConfig::full_stalling(0.5)
            .with_write_buffers()
            .delay_per_missed_line(&machine())
            .unwrap();
        assert!((g - 64.0).abs() < 1e-12); // (L/D)β only
    }

    #[test]
    fn pipelined_g_uses_beta_p() {
        // β_p = 8 + 2·7 = 22; G = (1 + 0.5)·22 = 33.
        let g = SystemConfig::full_stalling(0.5)
            .with_pipelined_memory(2.0)
            .delay_per_missed_line(&machine())
            .unwrap();
        assert!((g - 33.0).abs() < 1e-12);
    }

    #[test]
    fn partial_stall_uses_phi() {
        // G = φβ + α(L/D)β = 2·8 + 0.5·64 = 48.
        let g = SystemConfig::full_stalling(0.5)
            .with_partial_stall(2.0)
            .delay_per_missed_line(&machine())
            .unwrap();
        assert!((g - 48.0).abs() < 1e-12);
    }

    #[test]
    fn phi_bounds_enforced() {
        let sys = SystemConfig::full_stalling(0.5).with_partial_stall(9.0);
        assert!(matches!(
            sys.miss_service_time(&machine()),
            Err(TradeoffError::PhiOutOfRange { .. })
        ));
        assert!(SystemConfig::full_stalling(0.5)
            .with_partial_stall(-1.0)
            .miss_service_time(&machine())
            .is_err());
    }

    #[test]
    fn bus_cannot_exceed_line() {
        // 32-byte line on a 4-byte bus ×16 = 64-byte bus: invalid.
        let sys = SystemConfig::full_stalling(0.5).with_bus_factor(16.0);
        assert!(matches!(
            sys.chunks(&machine()),
            Err(TradeoffError::LineNarrowerThanBus { .. })
        ));
        // ×8 exactly matches the line: valid single chunk.
        let sys8 = SystemConfig::full_stalling(0.5).with_bus_factor(8.0);
        assert_eq!(sys8.chunks(&machine()).unwrap(), 1.0);
    }

    #[test]
    fn invalid_scalars_rejected() {
        let m = machine();
        assert!(SystemConfig::full_stalling(0.5)
            .with_bus_factor(0.0)
            .chunks(&m)
            .is_err());
        assert!(SystemConfig::full_stalling(0.5)
            .with_pipelined_memory(0.0)
            .line_transfer_time(&m)
            .is_err());
    }

    #[test]
    fn q_equal_beta_reduces_to_non_pipelined() {
        let m = machine();
        let plain = SystemConfig::full_stalling(0.5);
        let piped = plain.with_pipelined_memory(8.0);
        assert!(
            (plain.line_transfer_time(&m).unwrap() - piped.line_transfer_time(&m).unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn display_mentions_features() {
        let s = SystemConfig::full_stalling(0.5)
            .with_bus_factor(2.0)
            .with_write_buffers()
            .with_pipelined_memory(2.0)
            .to_string();
        assert!(s.contains("bus×2") && s.contains("+WB") && s.contains("q=2"));
    }
}
