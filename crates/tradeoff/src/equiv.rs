//! The equivalence of mean memory delay: Eq. 3–7.
//!
//! Two systems run the same application with equal execution time exactly
//! when `HR + (1 − HR)·G` matches on both sides. From this single law the
//! paper's results follow:
//!
//! * the miss-traffic ratio `r = R'/R = (G_base − 1)/(G_enh − 1)`
//!   ([`miss_traffic_ratio`], Eq. 3 and Table 3),
//! * the hit ratio an enhancement *releases* —
//!   `ΔHR = (r − 1)(1 − HR₁)` ([`traded_hit_ratio`], Eq. 6),
//! * the hit-ratio *increase* worth the same as the enhancement —
//!   `ΔHR = (1 − 1/r)(1 − HR₂)` ([`hit_gain_equivalent`], Eq. 7).

use crate::error::TradeoffError;
use crate::params::{HitRatio, Machine};
use crate::system::SystemConfig;

/// The per-miss delay net of the one base cycle a hit would have cost.
///
/// Eq. 3's `−1` terms: a load/store that misses replaces its single
/// execution cycle with `G` memory cycles, so equivalence compares
/// `G − 1` between systems.
///
/// # Errors
///
/// Returns [`TradeoffError::NonPhysicalDelay`] if `G ≤ 1` (an enhancement
/// so strong a miss is as cheap as a hit breaks the equivalence algebra).
pub fn excess_delay(machine: &Machine, system: &SystemConfig) -> Result<f64, TradeoffError> {
    let g = system.delay_per_missed_line(machine)?;
    if g <= 1.0 {
        return Err(TradeoffError::NonPhysicalDelay { delay: g });
    }
    Ok(g - 1.0)
}

/// Eq. 3 (generalised by Table 3): the ratio `r = R'/R` of miss traffic
/// the enhanced system may sustain while matching the baseline's
/// performance.
///
/// `r ≥ 1` whenever `enhanced` is genuinely no slower per miss.
///
/// # Errors
///
/// Propagates [`excess_delay`] errors from either side.
pub fn miss_traffic_ratio(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
) -> Result<f64, TradeoffError> {
    Ok(excess_delay(machine, base)? / excess_delay(machine, enhanced)?)
}

/// Eq. 6: the hit ratio the enhancement releases.
///
/// If the baseline runs at `HR₁ = base_hr`, the enhanced system matches
/// its performance at `HR₂ = HR₁ − ΔHR` with
/// `ΔHR = (r − 1)·(1 − HR₁)`.
///
/// # Errors
///
/// Propagates [`miss_traffic_ratio`] errors.
pub fn traded_hit_ratio(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    base_hr: HitRatio,
) -> Result<f64, TradeoffError> {
    let r = miss_traffic_ratio(machine, base, enhanced)?;
    Ok((r - 1.0) * base_hr.miss_ratio())
}

/// The enhanced system's equal-performance hit ratio `HR₂`.
///
/// # Errors
///
/// Propagates equivalence errors and returns
/// [`TradeoffError::HitRatioUnderflow`] when `HR₂ < 0` — the regime the
/// paper marks "only valid for the physical system where HR₂ > 0".
pub fn equivalent_hit_ratio(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    base_hr: HitRatio,
) -> Result<HitRatio, TradeoffError> {
    let dhr = traded_hit_ratio(machine, base, enhanced, base_hr)?;
    let hr2 = base_hr.value() - dhr;
    if hr2 < 0.0 {
        return Err(TradeoffError::HitRatioUnderflow {
            base: base_hr.value(),
            implied: hr2,
        });
    }
    HitRatio::new(hr2)
}

/// Eq. 7: the hit-ratio *increase* at `HR₂ = enhanced_hr` that buys the
/// same performance as the enhancement does:
/// `ΔHR = (1 − r⁻¹)·(1 − HR₂)` where `r` is [`miss_traffic_ratio`].
///
/// # Errors
///
/// Propagates [`miss_traffic_ratio`] errors.
pub fn hit_gain_equivalent(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    enhanced_hr: HitRatio,
) -> Result<f64, TradeoffError> {
    let r = miss_traffic_ratio(machine, base, enhanced)?;
    Ok((1.0 - 1.0 / r) * enhanced_hr.miss_ratio())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execution_time, AppSignature};
    use crate::params::FlushRatio;

    fn machine(l: f64, beta: f64) -> Machine {
        Machine::new(4.0, l, beta).unwrap()
    }

    fn fs() -> SystemConfig {
        SystemConfig::full_stalling(0.5)
    }

    fn doubled() -> SystemConfig {
        fs().with_bus_factor(2.0)
    }

    #[test]
    fn paper_limit_r_is_2_5_at_beta_2_with_l_2d() {
        // L = 2D, β_m = 2, α = 0.5: R' = 2.5 R (Section 4.1).
        let m = machine(8.0, 2.0);
        let r = miss_traffic_ratio(&m, &fs(), &doubled()).unwrap();
        assert!((r - 2.5).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn paper_limit_r_tends_to_2_for_large_beta() {
        // α = 0.5, β_m → ∞: R' → 2R for any L ≥ 2D.
        for l in [8.0, 16.0, 32.0, 64.0] {
            let m = machine(l, 1e7);
            let r = miss_traffic_ratio(&m, &fs(), &doubled()).unwrap();
            assert!((r - 2.0).abs() < 1e-4, "L={l}: r = {r}");
        }
    }

    #[test]
    fn paper_hr2_bounds_2hr_minus_1_to_2_5hr_minus_1_5() {
        // "reducing the hit ratio from HR to 2HR−1 … 2.5HR−1.5 can be
        // compensated by doubling the data bus width."
        let hr = HitRatio::new(0.95).unwrap();
        let m_slow = machine(8.0, 2.0);
        let hr2 = equivalent_hit_ratio(&m_slow, &fs(), &doubled(), hr).unwrap();
        assert!((hr2.value() - (2.5 * 0.95 - 1.5)).abs() < 1e-12);

        let m_fast = machine(8.0, 1e7);
        let hr2 = equivalent_hit_ratio(&m_fast, &fs(), &doubled(), hr).unwrap();
        assert!((hr2.value() - (2.0 * 0.95 - 1.0)).abs() < 1e-4);
    }

    #[test]
    fn paper_examples_98_to_96_and_95_to_90() {
        // "the performance loss due to reducing cache hit ratio from 0.95
        // to 0.9 or from 0.98 to 0.96 can be compensated by doubling the
        // external data bus" (large β_m limit).
        let m = machine(8.0, 1e7);
        for (hr1, hr2_expect) in [(0.95, 0.90), (0.98, 0.96)] {
            let hr2 =
                equivalent_hit_ratio(&m, &fs(), &doubled(), HitRatio::new(hr1).unwrap()).unwrap();
            assert!(
                (hr2.value() - hr2_expect).abs() < 1e-4,
                "{hr1} → {}",
                hr2.value()
            );
        }
    }

    #[test]
    fn eq7_gain_range_half_to_0_6() {
        // Increasing HR by 0.5(1−HR) … 0.6(1−HR) equals doubling the bus.
        let hr = HitRatio::new(0.9).unwrap();
        let gain_slow = hit_gain_equivalent(&machine(8.0, 2.0), &fs(), &doubled(), hr).unwrap();
        assert!((gain_slow - 0.6 * 0.1).abs() < 1e-12, "gain = {gain_slow}");
        let gain_fast = hit_gain_equivalent(&machine(8.0, 1e7), &fs(), &doubled(), hr).unwrap();
        assert!((gain_fast - 0.5 * 0.1).abs() < 1e-4, "gain = {gain_fast}");
    }

    #[test]
    fn equivalence_verified_against_execution_time() {
        // HR₂ from the model must make the two systems' Eq.-2 times equal.
        let m = machine(32.0, 8.0);
        let hr1 = HitRatio::new(0.95).unwrap();
        let enh = doubled();
        let hr2 = equivalent_hit_ratio(&m, &fs(), &enh, hr1).unwrap();

        // Build matched applications: same total data references, hit
        // ratios hr1 / hr2 → misses = refs·MR, R = misses·L.
        let refs = 100_000.0;
        let mk_app = |hr: HitRatio| {
            let fills = refs * hr.miss_ratio();
            AppSignature::new(300_000.0, fills * m.line_bytes(), 0.0).unwrap()
        };
        let x1 = execution_time(&mk_app(hr1), &m, &fs()).unwrap();
        let x2 = execution_time(&mk_app(hr2), &m, &enh).unwrap();
        assert!((x1 - x2).abs() / x1 < 1e-12, "X₁ = {x1}, X₂ = {x2}");
    }

    #[test]
    fn write_buffer_trade_is_smaller_than_bus_doubling() {
        // Figure 3 ordering: doubling bus > write buffers.
        let m = machine(8.0, 8.0);
        let hr = HitRatio::new(0.95).unwrap();
        let bus = traded_hit_ratio(&m, &fs(), &doubled(), hr).unwrap();
        let wb = traded_hit_ratio(&m, &fs(), &fs().with_write_buffers(), hr).unwrap();
        assert!(bus > wb, "bus {bus} ≤ wb {wb}");
        assert!(wb > 0.0);
    }

    #[test]
    fn pipelined_equals_baseline_at_beta_equals_q() {
        // β_m = q = 2 → β_p = (L/D)·β_m: the solid curve meets the x-axis.
        let m = machine(8.0, 2.0);
        let piped = fs().with_pipelined_memory(2.0);
        let dhr = traded_hit_ratio(&m, &fs(), &piped, HitRatio::new(0.95).unwrap()).unwrap();
        assert!(dhr.abs() < 1e-12, "ΔHR = {dhr}");
    }

    #[test]
    fn pipelined_beats_bus_doubling_past_crossover_for_l32() {
        // L/D = 8, q = 2: crossover near β_m ≈ 4.7 (Section 5.3).
        let hr = HitRatio::new(0.95).unwrap();
        let piped = fs().with_pipelined_memory(2.0);
        let at = |beta: f64| {
            let m = machine(32.0, beta);
            let p = traded_hit_ratio(&m, &fs(), &piped, hr).unwrap();
            let b = traded_hit_ratio(&m, &fs(), &doubled(), hr).unwrap();
            (p, b)
        };
        let (p4, b4) = at(4.0);
        assert!(
            p4 < b4,
            "at β=4 pipelining should not yet win: {p4} vs {b4}"
        );
        let (p6, b6) = at(6.0);
        assert!(p6 > b6, "at β=6 pipelining should win: {p6} vs {b6}");
    }

    #[test]
    fn pipelined_never_beats_bus_doubling_for_l_2d() {
        // Figure 3's observation for L/D = 2.
        let hr = HitRatio::new(0.95).unwrap();
        let piped = fs().with_pipelined_memory(2.0);
        for beta in [2.0, 5.0, 10.0, 50.0, 500.0] {
            let m = machine(8.0, beta);
            let p = traded_hit_ratio(&m, &fs(), &piped, hr).unwrap();
            let b = traded_hit_ratio(&m, &fs(), &doubled(), hr).unwrap();
            assert!(p <= b + 1e-12, "β={beta}: pipelined {p} > bus {b}");
        }
    }

    #[test]
    fn traded_hit_ratio_shrinks_with_memory_cycle() {
        // Figure 2: as β_m grows, the hit ratio traded by the bus falls.
        let hr = HitRatio::new(0.98).unwrap();
        let mut prev = f64::INFINITY;
        for beta in [2.0, 4.0, 8.0, 16.0, 32.0] {
            let m = machine(32.0, beta);
            let dhr = traded_hit_ratio(&m, &fs(), &doubled(), hr).unwrap();
            assert!(dhr < prev, "ΔHR not decreasing at β={beta}");
            prev = dhr;
        }
    }

    #[test]
    fn larger_lines_trade_less_hit_ratio() {
        // Figure 2: with the same base HR, larger L trades less.
        let hr = HitRatio::new(0.98).unwrap();
        let dhr_l8 = traded_hit_ratio(&machine(8.0, 4.0), &fs(), &doubled(), hr).unwrap();
        let dhr_l32 = traded_hit_ratio(&machine(32.0, 4.0), &fs(), &doubled(), hr).unwrap();
        assert!(dhr_l8 > dhr_l32);
    }

    #[test]
    fn hit_ratio_underflow_is_reported() {
        // A 50 % base hit ratio cannot give up 2.5×-traffic worth of HR.
        let m = machine(8.0, 2.0);
        let res = equivalent_hit_ratio(&m, &fs(), &doubled(), HitRatio::new(0.2).unwrap());
        assert!(matches!(res, Err(TradeoffError::HitRatioUnderflow { .. })));
    }

    #[test]
    fn non_physical_delay_detected() {
        // β_m so small that G ≤ 1 on the enhanced side.
        let m = Machine::new(4.0, 4.0, 0.5).unwrap();
        let enh = SystemConfig::full_stalling(0.0).with_write_buffers();
        assert!(matches!(
            miss_traffic_ratio(&m, &fs(), &enh),
            Err(TradeoffError::NonPhysicalDelay { .. })
        ));
    }

    #[test]
    fn alpha_affects_bus_trade_only_near_small_beta() {
        // Both flush ratios converge to r = 2 for large β_m, but at small
        // β_m the flush-free system trades *more*: halving a cheaper miss
        // leaves the fixed one-cycle hit discount relatively larger.
        let hr = HitRatio::new(0.95).unwrap();
        let a0 = SystemConfig::full_stalling(0.0);
        let a0d = a0.with_bus_factor(2.0);
        let m_small = machine(8.0, 2.0);
        let dhr_a0 = traded_hit_ratio(&m_small, &a0, &a0d, hr).unwrap();
        let dhr_a5 = traded_hit_ratio(&m_small, &fs(), &doubled(), hr).unwrap();
        assert!((dhr_a0 - 2.0 * hr.miss_ratio()).abs() < 1e-12); // r = 3 at β = 2
        assert!(dhr_a0 > dhr_a5);
        let m_large = machine(8.0, 1e7);
        let d0 = traded_hit_ratio(&m_large, &a0, &a0d, hr).unwrap();
        let d5 = traded_hit_ratio(&m_large, &fs(), &doubled(), hr).unwrap();
        assert!((d0 - d5).abs() < 1e-4, "both converge to (2 − 1)(1 − HR)");
    }

    #[test]
    fn differing_alphas_between_systems() {
        // Eq. 3 allows α ≠ α′; a dirtier enhanced system trades less.
        let m = machine(32.0, 8.0);
        let hr = HitRatio::new(0.95).unwrap();
        let dirty_enh = doubled().with_alpha(FlushRatio::new(1.0).unwrap());
        let clean_enh = doubled().with_alpha(FlushRatio::new(0.0).unwrap());
        let d = traded_hit_ratio(&m, &fs(), &dirty_enh, hr).unwrap();
        let c = traded_hit_ratio(&m, &fs(), &clean_enh, hr).unwrap();
        assert!(c > d);
    }
}
