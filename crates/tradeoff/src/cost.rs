//! Pin-count and chip-area implications (the paper's abstract and
//! Section 5.2).
//!
//! The equivalence law prices features in hit ratio; this module prices
//! the *costs* the abstract calls out, so equal-performance designs can
//! be compared in silicon and package terms:
//!
//! * [`CacheAreaModel`] — SRAM bit counts for a set-associative cache
//!   (data + tags + status), including the tag-overhead observation of
//!   Alpert & Flynn that larger lines amortise tags;
//! * [`PinModel`] — package pins as a function of external bus width;
//! * [`equivalent_cache_size`] — inverts a miss-ratio model to find the
//!   cache size that delivers a target hit ratio, closing the loop from
//!   "doubling the bus is worth ΔHR" to "doubling the bus saves this
//!   many KB of SRAM".

use crate::error::TradeoffError;
use serde::{Deserialize, Serialize};

/// Bit-count model of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheAreaModel {
    /// Physical/virtual address width the tags must cover.
    pub addr_bits: u32,
    /// Status bits per line (valid + dirty for a write-back cache).
    pub status_bits_per_line: u32,
}

impl Default for CacheAreaModel {
    fn default() -> Self {
        // The paper's era: 32-bit addresses, valid + dirty.
        CacheAreaModel {
            addr_bits: 32,
            status_bits_per_line: 2,
        }
    }
}

/// The bit breakdown of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheBits {
    /// SRAM bits holding data.
    pub data: u64,
    /// SRAM bits holding address tags.
    pub tags: u64,
    /// Valid/dirty/etc. bits.
    pub status: u64,
}

impl CacheBits {
    /// Total bits.
    pub fn total(&self) -> u64 {
        self.data + self.tags + self.status
    }

    /// The fraction of bits that are not data (Alpert & Flynn's tag
    /// overhead).
    pub fn overhead_fraction(&self) -> f64 {
        (self.tags + self.status) as f64 / self.total() as f64
    }
}

impl CacheAreaModel {
    /// Computes the bit breakdown for a cache of `size_bytes` with
    /// `line_bytes` lines and `assoc` ways.
    ///
    /// # Errors
    ///
    /// Returns [`TradeoffError::NotPositive`] for degenerate geometry
    /// (zero sizes, line larger than a way, non-powers of two).
    pub fn bits(
        &self,
        size_bytes: u64,
        line_bytes: u64,
        assoc: u32,
    ) -> Result<CacheBits, TradeoffError> {
        for (what, v) in [("cache size", size_bytes), ("line size", line_bytes)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(TradeoffError::NotPositive {
                    what,
                    value: v as f64,
                });
            }
        }
        if assoc == 0 || !assoc.is_power_of_two() {
            return Err(TradeoffError::NotPositive {
                what: "associativity",
                value: f64::from(assoc),
            });
        }
        let lines = size_bytes / line_bytes;
        if lines == 0 || u64::from(assoc) > lines {
            return Err(TradeoffError::NotPositive {
                what: "lines per way",
                value: lines as f64 / f64::from(assoc),
            });
        }
        let sets = lines / u64::from(assoc);
        let offset_bits = line_bytes.trailing_zeros();
        let index_bits = sets.trailing_zeros();
        let tag_bits_per_line = u64::from(self.addr_bits.saturating_sub(offset_bits + index_bits));
        Ok(CacheBits {
            data: size_bytes * 8,
            tags: lines * tag_bits_per_line,
            status: lines * u64::from(self.status_bits_per_line),
        })
    }
}

/// Package-pin model for the processor's external interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinModel {
    /// Address pins.
    pub addr_pins: u32,
    /// Control/clock/power overhead pins attributed to the bus interface.
    pub control_pins: u32,
}

impl Default for PinModel {
    fn default() -> Self {
        PinModel {
            addr_pins: 32,
            control_pins: 16,
        }
    }
}

impl PinModel {
    /// Total pins for a `bus_bytes`-wide external data bus.
    pub fn pins(&self, bus_bytes: u64) -> u64 {
        8 * bus_bytes + u64::from(self.addr_pins) + u64::from(self.control_pins)
    }

    /// Extra pins doubling the bus costs.
    pub fn doubling_cost(&self, bus_bytes: u64) -> u64 {
        self.pins(bus_bytes * 2) - self.pins(bus_bytes)
    }
}

/// Inverts a monotone hit-ratio-versus-size curve: the smallest
/// power-of-two cache size in `[min_bytes, max_bytes]` whose hit ratio
/// reaches `target`.
///
/// Returns `None` when even `max_bytes` falls short.
pub fn equivalent_cache_size(
    hit_ratio_of_size: impl Fn(f64) -> f64,
    target: f64,
    min_bytes: u64,
    max_bytes: u64,
) -> Option<u64> {
    let mut size = min_bytes.max(1).next_power_of_two();
    while size <= max_bytes {
        if hit_ratio_of_size(size as f64) >= target {
            return Some(size);
        }
        size *= 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_counts_hand_checked() {
        // 8 KB, 32 B lines, 2-way, 32-bit addresses: 256 lines, 128 sets.
        // Tag = 32 − 5 (offset) − 7 (index) = 20 bits per line.
        let bits = CacheAreaModel::default().bits(8 * 1024, 32, 2).unwrap();
        assert_eq!(bits.data, 8 * 1024 * 8);
        assert_eq!(bits.tags, 256 * 20);
        assert_eq!(bits.status, 256 * 2);
        assert!((bits.overhead_fraction() - (5120.0 + 512.0) / 71168.0).abs() < 1e-12);
    }

    #[test]
    fn larger_lines_amortise_tags() {
        // Alpert & Flynn: tag overhead falls as the line grows.
        let m = CacheAreaModel::default();
        let mut prev = f64::INFINITY;
        for line in [8u64, 16, 32, 64, 128] {
            let frac = m.bits(16 * 1024, line, 2).unwrap().overhead_fraction();
            assert!(frac < prev, "L={line}: {frac}");
            prev = frac;
        }
    }

    #[test]
    fn bigger_caches_have_lower_relative_overhead() {
        let m = CacheAreaModel::default();
        let small = m.bits(4 * 1024, 32, 2).unwrap().overhead_fraction();
        let big = m.bits(256 * 1024, 32, 2).unwrap().overhead_fraction();
        assert!(big < small, "index bits eat into the tag");
    }

    #[test]
    fn degenerate_geometry_rejected() {
        let m = CacheAreaModel::default();
        assert!(m.bits(0, 32, 2).is_err());
        assert!(m.bits(8192, 24, 2).is_err());
        assert!(m.bits(8192, 32, 0).is_err());
        assert!(m.bits(64, 32, 4).is_err(), "more ways than lines");
    }

    #[test]
    fn pin_model_scales_with_bus() {
        let p = PinModel::default();
        assert_eq!(p.pins(4), 32 + 32 + 16);
        assert_eq!(p.pins(8), 64 + 32 + 16);
        assert_eq!(p.doubling_cost(4), 32);
        assert_eq!(p.doubling_cost(8), 64);
    }

    #[test]
    fn cache_size_inversion() {
        // A toy power-law curve: HR(C) = 1 − (8192/C)^0.5 · 0.09.
        let hr = |c: f64| 1.0 - 0.09 * (8192.0 / c).sqrt();
        let size = equivalent_cache_size(hr, hr(32.0 * 1024.0), 1024, 1 << 22).unwrap();
        assert_eq!(size, 32 * 1024);
        // Just above the reachable range: None.
        assert_eq!(equivalent_cache_size(hr, 0.9999, 1024, 1 << 22), None);
    }

    #[test]
    fn inversion_returns_smallest_sufficient_size() {
        let hr = |c: f64| (c / (1 << 20) as f64).min(1.0);
        let size = equivalent_cache_size(hr, 0.26, 1024, 1 << 22).unwrap();
        assert_eq!(size, 512 * 1024, "first power of two with HR ≥ 0.26");
    }
}
