//! Feature ranking (Section 5.3 / the summary's priority list).

use crate::equiv::traded_hit_ratio;
use crate::error::TradeoffError;
use crate::params::{HitRatio, Machine};
use crate::system::SystemConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named enhancement candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Display name ("doubling bus", "write buffers", ...).
    pub name: String,
    /// The enhanced system configuration.
    pub system: SystemConfig,
}

impl Candidate {
    /// Creates a candidate.
    pub fn new(name: impl Into<String>, system: SystemConfig) -> Self {
        Candidate {
            name: name.into(),
            system,
        }
    }
}

/// One row of a ranking: the candidate and the hit ratio it trades.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ranked {
    /// The candidate.
    pub candidate: Candidate,
    /// The hit ratio released by the candidate (Eq. 6).
    pub traded_hr: f64,
}

impl fmt::Display for Ranked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ΔHR = {:.3}%",
            self.candidate.name,
            self.traded_hr * 100.0
        )
    }
}

/// Ranks the candidates by the hit ratio they trade against `base` at
/// `base_hr`, best first.
///
/// # Errors
///
/// Returns [`TradeoffError::EmptyCandidates`] for an empty slice and
/// propagates equivalence errors from any candidate.
pub fn rank_features(
    machine: &Machine,
    base: &SystemConfig,
    base_hr: HitRatio,
    candidates: &[Candidate],
) -> Result<Vec<Ranked>, TradeoffError> {
    if candidates.is_empty() {
        return Err(TradeoffError::EmptyCandidates);
    }
    let mut ranked = Vec::with_capacity(candidates.len());
    for c in candidates {
        let traded_hr = traded_hit_ratio(machine, base, &c.system, base_hr)?;
        ranked.push(Ranked {
            candidate: c.clone(),
            traded_hr,
        });
    }
    ranked.sort_by(|a, b| b.traded_hr.total_cmp(&a.traded_hr));
    Ok(ranked)
}

/// The paper's standard candidate set for the unified comparison
/// (Figures 3–5): doubled bus, read-bypassing write buffers, a BNL cache
/// with measured `φ`, and a pipelined memory.
pub fn paper_candidates(base: &SystemConfig, phi_bnl: f64, q: f64) -> Vec<Candidate> {
    vec![
        Candidate::new("doubling bus", base.with_bus_factor(2.0)),
        Candidate::new("write buffers", base.with_write_buffers()),
        Candidate::new("BNL cache", base.with_partial_stall(phi_bnl)),
        Candidate::new("pipelined memory", base.with_pipelined_memory(q)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ranking_non_pipelined_regime() {
        // At moderate β_m below the pipelining crossover the paper ranks:
        // doubling bus > write buffers > BNL.
        let machine = Machine::new(4.0, 32.0, 4.0).unwrap();
        let base = SystemConfig::full_stalling(0.5);
        let hr = HitRatio::new(0.95).unwrap();
        // BNL1's measured φ is high (Figure 1): use 85 % of L/D.
        let cands = paper_candidates(&base, 0.85 * 8.0, 2.0);
        let ranked = rank_features(&machine, &base, hr, &cands).unwrap();
        let names: Vec<&str> = ranked.iter().map(|r| r.candidate.name.as_str()).collect();
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("doubling bus") < pos("write buffers"));
        assert!(pos("write buffers") < pos("BNL cache"));
    }

    #[test]
    fn pipelining_tops_ranking_past_crossover() {
        let machine = Machine::new(4.0, 32.0, 12.0).unwrap(); // β_m = 12 > crossover 4.67
        let base = SystemConfig::full_stalling(0.5);
        let hr = HitRatio::new(0.95).unwrap();
        let ranked =
            rank_features(&machine, &base, hr, &paper_candidates(&base, 7.0, 2.0)).unwrap();
        assert_eq!(ranked[0].candidate.name, "pipelined memory");
    }

    #[test]
    fn empty_candidates_error() {
        let machine = Machine::new(4.0, 32.0, 8.0).unwrap();
        let base = SystemConfig::full_stalling(0.5);
        assert!(matches!(
            rank_features(&machine, &base, HitRatio::new(0.9).unwrap(), &[]),
            Err(TradeoffError::EmptyCandidates)
        ));
    }

    #[test]
    fn ranking_is_sorted_descending() {
        let machine = Machine::new(4.0, 32.0, 6.0).unwrap();
        let base = SystemConfig::full_stalling(0.5);
        let ranked = rank_features(
            &machine,
            &base,
            HitRatio::new(0.9).unwrap(),
            &paper_candidates(&base, 6.5, 2.0),
        )
        .unwrap();
        for pair in ranked.windows(2) {
            assert!(pair[0].traded_hr >= pair[1].traded_hr);
        }
    }

    #[test]
    fn ranked_display() {
        let base = SystemConfig::full_stalling(0.5);
        let r = Ranked {
            candidate: Candidate::new("doubling bus", base.with_bus_factor(2.0)),
            traded_hr: 0.05,
        };
        assert!(r.to_string().contains("doubling bus"));
        assert!(r.to_string().contains("5.000%"));
    }
}
