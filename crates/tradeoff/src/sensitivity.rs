//! Sensitivity analysis: how robust is a tradeoff to its inputs?
//!
//! The paper's curves fix `α = 0.5` and read `φ` off one simulation; a
//! designer wants to know how much a mis-estimated input moves the
//! answer. With `ΔHR = (r − 1)(1 − HR)` and `r = (G_b − 1)/(G_e − 1)`,
//! the partial derivatives have closed forms; this module provides them,
//! validated against numeric differentiation in the tests.

use crate::equiv::{miss_traffic_ratio, traded_hit_ratio};
use crate::error::TradeoffError;
use crate::params::{HitRatio, Machine};
use crate::system::SystemConfig;

/// The local sensitivities of `ΔHR` at a design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivities {
    /// `ΔHR` itself at the point.
    pub delta_hr: f64,
    /// `∂ΔHR/∂HR` — how the trade shrinks as the base cache improves
    /// (always `−(r − 1)`).
    pub d_hr: f64,
    /// `∂ΔHR/∂β_m` — the slope of the Figure 2–5 curves.
    pub d_beta: f64,
    /// `∂ΔHR/∂α` — exposure to a mis-measured flush ratio (applied to
    /// both systems simultaneously, the figures' `α = α′` convention).
    pub d_alpha: f64,
}

fn with_alpha(sys: &SystemConfig, alpha: f64) -> Result<SystemConfig, TradeoffError> {
    Ok(sys.with_alpha(crate::params::FlushRatio::new(alpha)?))
}

/// Evaluates `ΔHR` with both systems' flush ratios overridden to `alpha`
/// and the machine's memory cycle set to `beta`.
fn eval(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    hr: HitRatio,
    beta: f64,
    alpha: f64,
) -> Result<f64, TradeoffError> {
    let m = machine.with_beta_m(beta)?;
    traded_hit_ratio(
        &m,
        &with_alpha(base, alpha)?,
        &with_alpha(enhanced, alpha)?,
        hr,
    )
}

/// Computes the sensitivities at `(machine, hr)` for the comparison
/// `base → enhanced`, using the shared flush ratio of `base`.
///
/// `∂/∂HR` is exact (`−(r − 1)`); the β_m and α derivatives use central
/// differences with steps scaled to the operating point, which is
/// accurate to ~1e-6 on these smooth rational functions.
///
/// # Errors
///
/// Propagates model-validation errors from any evaluation point.
pub fn sensitivities(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    hr: HitRatio,
) -> Result<Sensitivities, TradeoffError> {
    let alpha = base.alpha.value();
    let beta = machine.beta_m();
    let delta_hr = eval(machine, base, enhanced, hr, beta, alpha)?;
    let r = miss_traffic_ratio(machine, base, enhanced)?;
    let d_hr = -(r - 1.0);

    let h_beta = (beta * 1e-4).max(1e-6);
    let d_beta = (eval(machine, base, enhanced, hr, beta + h_beta, alpha)?
        - eval(machine, base, enhanced, hr, beta - h_beta, alpha)?)
        / (2.0 * h_beta);

    let h_alpha = 1e-5_f64.min(alpha.min(1.0 - alpha).max(1e-7));
    let d_alpha = (eval(machine, base, enhanced, hr, beta, alpha + h_alpha)?
        - eval(machine, base, enhanced, hr, beta, alpha - h_alpha)?)
        / (2.0 * h_alpha);

    Ok(Sensitivities {
        delta_hr,
        d_hr,
        d_beta,
        d_alpha,
    })
}

/// First-order error bound: the |ΔHR| uncertainty induced by input
/// uncertainties `(d_hr, d_beta, d_alpha)`.
pub fn uncertainty(s: &Sensitivities, hr_err: f64, beta_err: f64, alpha_err: f64) -> f64 {
    s.d_hr.abs() * hr_err + s.d_beta.abs() * beta_err + s.d_alpha.abs() * alpha_err
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> (Machine, SystemConfig, SystemConfig, HitRatio) {
        (
            Machine::new(4.0, 32.0, 8.0).unwrap(),
            SystemConfig::full_stalling(0.5),
            SystemConfig::full_stalling(0.5).with_bus_factor(2.0),
            HitRatio::new(0.95).unwrap(),
        )
    }

    #[test]
    fn d_hr_is_exactly_one_minus_r() {
        let (m, b, e, hr) = point();
        let s = sensitivities(&m, &b, &e, hr).unwrap();
        let r = miss_traffic_ratio(&m, &b, &e).unwrap();
        assert!((s.d_hr + (r - 1.0)).abs() < 1e-12);
        // Numeric cross-check.
        let h = 1e-6;
        let up = traded_hit_ratio(&m, &b, &e, HitRatio::new(0.95 + h).unwrap()).unwrap();
        let dn = traded_hit_ratio(&m, &b, &e, HitRatio::new(0.95 - h).unwrap()).unwrap();
        assert!(((up - dn) / (2.0 * h) - s.d_hr).abs() < 1e-6);
    }

    #[test]
    fn beta_slope_is_negative_for_bus_doubling() {
        // Figure 2's falling curves: ∂ΔHR/∂β < 0.
        let (m, b, e, hr) = point();
        let s = sensitivities(&m, &b, &e, hr).unwrap();
        assert!(s.d_beta < 0.0, "{s:?}");
    }

    #[test]
    fn beta_slope_is_positive_for_pipelining_past_crossover() {
        let m = Machine::new(4.0, 32.0, 8.0).unwrap(); // past β* ≈ 4.67
        let b = SystemConfig::full_stalling(0.5);
        let e = b.with_pipelined_memory(2.0);
        let s = sensitivities(&m, &b, &e, HitRatio::new(0.95).unwrap()).unwrap();
        assert!(s.d_beta > 0.0, "{s:?}");
    }

    #[test]
    fn alpha_sensitivity_is_positive_for_write_buffers() {
        // The dirtier the cache, the more the buffers are worth.
        let (m, b, _, hr) = point();
        let e = b.with_write_buffers();
        let s = sensitivities(&m, &b, &e, hr).unwrap();
        assert!(s.d_alpha > 0.0, "{s:?}");
    }

    #[test]
    fn alpha_derivative_matches_coarse_differences() {
        let (m, b, e, hr) = point();
        let s = sensitivities(&m, &b, &e, hr).unwrap();
        let coarse = (traded_hit_ratio(
            &m,
            &with_alpha(&b, 0.51).unwrap(),
            &with_alpha(&e, 0.51).unwrap(),
            hr,
        )
        .unwrap()
            - traded_hit_ratio(
                &m,
                &with_alpha(&b, 0.49).unwrap(),
                &with_alpha(&e, 0.49).unwrap(),
                hr,
            )
            .unwrap())
            / 0.02;
        assert!(
            (coarse - s.d_alpha).abs() < 1e-3,
            "coarse {coarse} vs {}",
            s.d_alpha
        );
    }

    #[test]
    fn uncertainty_combines_linearly() {
        let (m, b, e, hr) = point();
        let s = sensitivities(&m, &b, &e, hr).unwrap();
        let u = uncertainty(&s, 0.01, 1.0, 0.1);
        assert!(u > 0.0);
        assert!((u - (s.d_hr.abs() * 0.01 + s.d_beta.abs() + s.d_alpha.abs() * 0.1)).abs() < 1e-12);
        // A ±0.1 error in α moves the bus trade by well under a point of
        // hit ratio — the paper's α = 0.5 convention is safe.
        assert!(s.d_alpha.abs() * 0.1 < 0.01, "{s:?}");
    }
}
