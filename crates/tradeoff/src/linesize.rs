//! Line size versus hit ratio (Section 5.4, Eq. 11–19).
//!
//! Fill timing follows Smith's model: filling an `L`-byte line costs
//! `c + β·(L/D)` cycles, where `c` is the memory access latency and `β`
//! the bus transfer time per `D`-byte chunk (both normalised to CPU
//! cycles; `c` includes the one-cycle hit time, so Smith's latency
//! constant is `c − 1`).
//!
//! The key results reproduced here:
//!
//! * [`miss_count_ratio`] (Eq. 13): the miss-count ratio `r < 1` a larger
//!   line must not exceed;
//! * [`required_hit_gain`] (Eq. 14): the minimum hit-ratio improvement
//!   `ΔEHR` a larger line must deliver to break even;
//! * [`reduced_delay`] (Eq. 19): the memory delay per reference a line
//!   candidate saves over the base line;
//! * [`optimal_line_smith`] (Eq. 16) and [`optimal_line_eq19`] (Eq. 19):
//!   two selectors that *provably agree* — the paper's validation of the
//!   whole methodology (Figure 6).

use crate::error::TradeoffError;
use crate::params::HitRatio;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Smith-style fill timing: latency `c` (CPU cycles, including the hit
/// cycle) and per-chunk transfer time `β`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FillTiming {
    /// Memory access latency in CPU cycles, hit cycle included (`c ≥ 1`).
    pub c: f64,
    /// Transfer time per `D`-byte bus chunk in CPU cycles (`β > 0`).
    pub beta: f64,
}

impl FillTiming {
    /// Creates a fill timing.
    ///
    /// # Errors
    ///
    /// Returns [`TradeoffError::NotPositive`] when `c < 1` or `β ≤ 0`.
    pub fn new(c: f64, beta: f64) -> Result<Self, TradeoffError> {
        if !(c.is_finite() && c >= 1.0) {
            return Err(TradeoffError::NotPositive {
                what: "latency c (≥ 1)",
                value: c,
            });
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(TradeoffError::NotPositive {
                what: "bus speed beta",
                value: beta,
            });
        }
        Ok(FillTiming { c, beta })
    }

    /// The fill time `c + β·(L/D)` for an `line_bytes` line on a
    /// `bus_bytes` bus.
    pub fn fill_time(&self, line_bytes: f64, bus_bytes: f64) -> f64 {
        self.c + self.beta * (line_bytes / bus_bytes)
    }

    /// Smith's miss-penalty weight `c − 1 + β·(L/D)` (hit cycle removed).
    pub fn miss_weight(&self, line_bytes: f64, bus_bytes: f64) -> f64 {
        self.c - 1.0 + self.beta * (line_bytes / bus_bytes)
    }
}

impl fmt::Display for FillTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c={} β={}", self.c, self.beta)
    }
}

/// Eq. 13: the ratio of miss counts `r = Λm*/Λm` at which a larger line
/// `l_star` matches the performance of the base line `l0`.
///
/// `alpha0`/`alpha_star` are the two systems' flush ratios (0 reproduces
/// Smith's read-only setting).
///
/// # Errors
///
/// Returns validation errors for non-positive sizes, and
/// [`TradeoffError::NonPhysicalDelay`] when a fill is no costlier than a
/// hit.
pub fn miss_count_ratio(
    timing: &FillTiming,
    bus_bytes: f64,
    l0: f64,
    l_star: f64,
    alpha0: f64,
    alpha_star: f64,
) -> Result<f64, TradeoffError> {
    for (what, v) in [
        ("bus width", bus_bytes),
        ("base line", l0),
        ("larger line", l_star),
    ] {
        if !(v.is_finite() && v > 0.0) {
            return Err(TradeoffError::NotPositive { what, value: v });
        }
    }
    let num = (1.0 + alpha0) * timing.fill_time(l0, bus_bytes) - 1.0;
    let den = (1.0 + alpha_star) * timing.fill_time(l_star, bus_bytes) - 1.0;
    if num <= 0.0 {
        return Err(TradeoffError::NonPhysicalDelay { delay: num + 1.0 });
    }
    if den <= 0.0 {
        return Err(TradeoffError::NonPhysicalDelay { delay: den + 1.0 });
    }
    Ok(num / den)
}

/// Eq. 14: the minimum hit-ratio gain `ΔEHR` the larger line must
/// deliver: `(1 − r)(1 − HR₀)`.
pub fn required_hit_gain(miss_count_ratio: f64, base_hr: HitRatio) -> f64 {
    (1.0 - miss_count_ratio) * base_hr.miss_ratio()
}

/// Section 5.4.1: a larger line with *actual* gain `ΔHR` improves
/// performance only when `ΔHR > ΔEHR`.
pub fn worth_larger_line(actual_gain: f64, required_gain: f64) -> bool {
    actual_gain > required_gain
}

/// Eq. 19: the reduced memory delay per reference of line `l_i` with hit
/// ratio `hr_i`, relative to base line `l0`/`hr0`:
/// `(ΔMR − ΔEMR)·(c − 1 + β·l_i/D)`.
///
/// Positive values mean `l_i` is a genuine improvement at this bus speed.
///
/// # Errors
///
/// Propagates [`miss_count_ratio`] errors.
pub fn reduced_delay(
    timing: &FillTiming,
    bus_bytes: f64,
    l0: f64,
    hr0: HitRatio,
    l_i: f64,
    hr_i: HitRatio,
    alpha: f64,
) -> Result<f64, TradeoffError> {
    let r = miss_count_ratio(timing, bus_bytes, l0, l_i, alpha, alpha)?;
    let delta_mr = hr_i.value() - hr0.value(); // = MR₀ − MRᵢ
    let delta_emr = required_hit_gain(r, hr0);
    Ok((delta_mr - delta_emr) * timing.miss_weight(l_i, bus_bytes))
}

/// A line-size candidate: size in bytes and the hit ratio the workload
/// achieves with it (at fixed cache size).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineCandidate {
    /// Line size in bytes.
    pub line_bytes: f64,
    /// Hit ratio at this line size.
    pub hit_ratio: HitRatio,
}

/// Smith's selector (Eq. 16): the candidate minimising
/// `(1 − HR)·(c − 1 + β·L/D)`.
///
/// # Errors
///
/// Returns [`TradeoffError::EmptyCandidates`] for an empty slice.
pub fn optimal_line_smith(
    timing: &FillTiming,
    bus_bytes: f64,
    candidates: &[LineCandidate],
) -> Result<LineCandidate, TradeoffError> {
    candidates
        .iter()
        .copied()
        .min_by(|a, b| {
            let fa = a.hit_ratio.miss_ratio() * timing.miss_weight(a.line_bytes, bus_bytes);
            let fb = b.hit_ratio.miss_ratio() * timing.miss_weight(b.line_bytes, bus_bytes);
            fa.total_cmp(&fb)
        })
        .ok_or(TradeoffError::EmptyCandidates)
}

/// The paper's selector (Eq. 19): take the smallest line as base and pick
/// the candidate with the largest reduced memory delay.
///
/// With equal flush ratios this provably agrees with
/// [`optimal_line_smith`]; the property test below exercises that for
/// arbitrary hit-ratio curves, reproducing the paper's Figure 6
/// validation.
///
/// # Errors
///
/// Returns [`TradeoffError::EmptyCandidates`] for an empty slice and
/// propagates evaluation errors.
pub fn optimal_line_eq19(
    timing: &FillTiming,
    bus_bytes: f64,
    candidates: &[LineCandidate],
) -> Result<LineCandidate, TradeoffError> {
    let base = candidates
        .iter()
        .copied()
        .min_by(|a, b| a.line_bytes.total_cmp(&b.line_bytes))
        .ok_or(TradeoffError::EmptyCandidates)?;
    let mut best = base;
    let mut best_value = 0.0; // the base's reduced delay over itself
    for c in candidates {
        let v = reduced_delay(
            timing,
            bus_bytes,
            base.line_bytes,
            base.hit_ratio,
            c.line_bytes,
            c.hit_ratio,
            0.0,
        )?;
        if v > best_value {
            best_value = v;
            best = *c;
        }
    }
    Ok(best)
}

/// The bus-speed range over which `l_i` beats the base line: all `β` in
/// `candidates_beta` with positive [`reduced_delay`] (Figure 6's
/// "beneficial range of bus speed").
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn beneficial_bus_speeds(
    c_of_beta: impl Fn(f64) -> f64,
    betas: &[f64],
    bus_bytes: f64,
    l0: f64,
    hr0: HitRatio,
    l_i: f64,
    hr_i: HitRatio,
) -> Result<Vec<f64>, TradeoffError> {
    let mut out = Vec::new();
    for &beta in betas {
        let timing = FillTiming::new(c_of_beta(beta), beta)?;
        if reduced_delay(&timing, bus_bytes, l0, hr0, l_i, hr_i, 0.0)? > 0.0 {
            out.push(beta);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hr(v: f64) -> HitRatio {
        HitRatio::new(v).unwrap()
    }

    #[test]
    fn fill_timing_validation() {
        assert!(FillTiming::new(1.0, 0.5).is_ok());
        assert!(FillTiming::new(0.5, 1.0).is_err());
        assert!(FillTiming::new(2.0, 0.0).is_err());
        let t = FillTiming::new(5.0, 2.0).unwrap();
        assert_eq!(t.fill_time(32.0, 4.0), 5.0 + 2.0 * 8.0);
        assert_eq!(t.miss_weight(32.0, 4.0), 4.0 + 16.0);
    }

    #[test]
    fn miss_count_ratio_below_one_for_larger_line() {
        let t = FillTiming::new(6.0, 2.0).unwrap();
        let r = miss_count_ratio(&t, 4.0, 16.0, 64.0, 0.0, 0.0).unwrap();
        assert!(r < 1.0 && r > 0.0, "r = {r}");
        // Same line: ratio is exactly one.
        let r1 = miss_count_ratio(&t, 4.0, 16.0, 16.0, 0.0, 0.0).unwrap();
        assert!((r1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn required_gain_positive_and_scales_with_miss_ratio() {
        let t = FillTiming::new(6.0, 2.0).unwrap();
        let r = miss_count_ratio(&t, 4.0, 16.0, 64.0, 0.0, 0.0).unwrap();
        let g_90 = required_hit_gain(r, hr(0.90));
        let g_99 = required_hit_gain(r, hr(0.99));
        assert!(g_90 > 0.0 && g_99 > 0.0);
        assert!((g_90 / g_99 - 10.0).abs() < 1e-9, "gain ∝ miss ratio");
    }

    #[test]
    fn worth_switching_logic() {
        assert!(worth_larger_line(0.05, 0.03));
        assert!(!worth_larger_line(0.02, 0.03));
        assert!(!worth_larger_line(0.03, 0.03));
    }

    #[test]
    fn reduced_delay_sign_tracks_benefit() {
        let t = FillTiming::new(6.0, 2.0).unwrap();
        // A large actual hit gain: beneficial.
        let good = reduced_delay(&t, 4.0, 8.0, hr(0.90), 32.0, hr(0.97), 0.0).unwrap();
        assert!(good > 0.0);
        // No hit gain at all: the larger line only costs.
        let bad = reduced_delay(&t, 4.0, 8.0, hr(0.90), 32.0, hr(0.90), 0.0).unwrap();
        assert!(bad < 0.0);
    }

    #[test]
    fn smith_and_eq19_agree_on_a_hand_curve() {
        // Hit ratios rising then saturating: classic line-size curve.
        let cands = [
            LineCandidate {
                line_bytes: 8.0,
                hit_ratio: hr(0.90),
            },
            LineCandidate {
                line_bytes: 16.0,
                hit_ratio: hr(0.94),
            },
            LineCandidate {
                line_bytes: 32.0,
                hit_ratio: hr(0.962),
            },
            LineCandidate {
                line_bytes: 64.0,
                hit_ratio: hr(0.970),
            },
            LineCandidate {
                line_bytes: 128.0,
                hit_ratio: hr(0.972),
            },
        ];
        for (c, beta) in [
            (2.0, 0.5),
            (7.0, 1.0),
            (13.0, 2.0),
            (25.0, 4.0),
            (49.0, 8.0),
        ] {
            let t = FillTiming::new(c, beta).unwrap();
            let smith = optimal_line_smith(&t, 4.0, &cands).unwrap();
            let ours = optimal_line_eq19(&t, 4.0, &cands).unwrap();
            assert_eq!(
                smith.line_bytes, ours.line_bytes,
                "selectors disagree at c={c} β={beta}"
            );
        }
    }

    #[test]
    fn slow_buses_favour_small_lines() {
        let cands = [
            LineCandidate {
                line_bytes: 8.0,
                hit_ratio: hr(0.90),
            },
            LineCandidate {
                line_bytes: 64.0,
                hit_ratio: hr(0.96),
            },
        ];
        // Fast bus: big line wins.
        let fast = FillTiming::new(20.0, 0.25).unwrap();
        assert_eq!(
            optimal_line_smith(&fast, 4.0, &cands).unwrap().line_bytes,
            64.0
        );
        // Very slow bus: transfer dominates; small line wins.
        let slow = FillTiming::new(2.0, 50.0).unwrap();
        assert_eq!(
            optimal_line_smith(&slow, 4.0, &cands).unwrap().line_bytes,
            8.0
        );
    }

    #[test]
    fn beneficial_range_shrinks_with_beta() {
        // For a modest hit gain, slow buses make the larger line lose.
        let betas: Vec<f64> = (1..=10).map(|b| b as f64).collect();
        let good = beneficial_bus_speeds(
            |b| 6.0 * b + 1.0,
            &betas,
            4.0,
            8.0,
            hr(0.90),
            32.0,
            hr(0.95),
        )
        .unwrap();
        assert!(!good.is_empty());
        // The set is a prefix: once it stops being beneficial it stays so.
        for w in good.windows(2) {
            assert!(w[1] - w[0] <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn empty_candidates_rejected() {
        let t = FillTiming::new(6.0, 2.0).unwrap();
        assert!(matches!(
            optimal_line_smith(&t, 4.0, &[]),
            Err(TradeoffError::EmptyCandidates)
        ));
        assert!(matches!(
            optimal_line_eq19(&t, 4.0, &[]),
            Err(TradeoffError::EmptyCandidates)
        ));
    }

    #[test]
    fn degenerate_ratio_inputs_rejected() {
        let t = FillTiming::new(6.0, 2.0).unwrap();
        assert!(miss_count_ratio(&t, 0.0, 8.0, 16.0, 0.0, 0.0).is_err());
        assert!(miss_count_ratio(&t, 4.0, -8.0, 16.0, 0.0, 0.0).is_err());
    }
}
