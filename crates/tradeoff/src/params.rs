//! Validated model parameters.

use crate::error::TradeoffError;
use serde::{Deserialize, Serialize};
use std::fmt;

fn check_fraction(what: &'static str, v: f64) -> Result<f64, TradeoffError> {
    if v.is_finite() && (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(TradeoffError::FractionOutOfRange { what, value: v })
    }
}

fn check_positive(what: &'static str, v: f64) -> Result<f64, TradeoffError> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(TradeoffError::NotPositive { what, value: v })
    }
}

/// A cache hit ratio in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct HitRatio(f64);

impl HitRatio {
    /// Creates a hit ratio.
    ///
    /// # Errors
    ///
    /// Returns [`TradeoffError::FractionOutOfRange`] outside `[0, 1]`.
    pub fn new(v: f64) -> Result<Self, TradeoffError> {
        check_fraction("hit ratio", v).map(HitRatio)
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The miss ratio `1 − HR`.
    pub fn miss_ratio(self) -> f64 {
        1.0 - self.0
    }

    /// The hits-per-miss ratio `s = Λh / Λm = HR / (1 − HR)`.
    ///
    /// Returns `f64::INFINITY` for a perfect cache.
    pub fn hits_per_miss(self) -> f64 {
        if self.0 >= 1.0 {
            f64::INFINITY
        } else {
            self.0 / (1.0 - self.0)
        }
    }
}

impl fmt::Display for HitRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.0 * 100.0)
    }
}

impl TryFrom<f64> for HitRatio {
    type Error = TradeoffError;

    fn try_from(v: f64) -> Result<Self, Self::Error> {
        HitRatio::new(v)
    }
}

/// The flush ratio `α ∈ [0, 1]`: dirty lines copied back per line filled.
///
/// The paper assumes `α = 0.5` throughout its figures (after Smith's
/// copy-back traffic measurements).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FlushRatio(f64);

impl FlushRatio {
    /// The paper's default `α = 0.5`.
    pub const HALF: FlushRatio = FlushRatio(0.5);

    /// Creates a flush ratio.
    ///
    /// # Errors
    ///
    /// Returns [`TradeoffError::FractionOutOfRange`] outside `[0, 1]`.
    pub fn new(v: f64) -> Result<Self, TradeoffError> {
        check_fraction("flush ratio", v).map(FlushRatio)
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for FlushRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α={:.2}", self.0)
    }
}

impl TryFrom<f64> for FlushRatio {
    type Error = TradeoffError;

    fn try_from(v: f64) -> Result<Self, Self::Error> {
        FlushRatio::new(v)
    }
}

/// The hardware parameters shared by the two systems of a comparison:
/// bus width `D` (bytes), line size `L` (bytes), memory cycle `β_m`
/// (CPU cycles per `D`-byte transfer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    bus_bytes: f64,
    line_bytes: f64,
    beta_m: f64,
}

impl Machine {
    /// Creates a machine description.
    ///
    /// # Errors
    ///
    /// Returns an error if a parameter is non-positive or the line is
    /// narrower than the bus.
    pub fn new(bus_bytes: f64, line_bytes: f64, beta_m: f64) -> Result<Self, TradeoffError> {
        let bus_bytes = check_positive("bus width", bus_bytes)?;
        let line_bytes = check_positive("line size", line_bytes)?;
        let beta_m = check_positive("beta_m", beta_m)?;
        if line_bytes < bus_bytes {
            return Err(TradeoffError::LineNarrowerThanBus {
                line_bytes,
                bus_bytes,
            });
        }
        Ok(Machine {
            bus_bytes,
            line_bytes,
            beta_m,
        })
    }

    /// Bus width `D` in bytes.
    pub fn bus_bytes(&self) -> f64 {
        self.bus_bytes
    }

    /// Line size `L` in bytes.
    pub fn line_bytes(&self) -> f64 {
        self.line_bytes
    }

    /// Memory cycle time `β_m` in CPU cycles.
    pub fn beta_m(&self) -> f64 {
        self.beta_m
    }

    /// Chunks per line `L/D`.
    pub fn chunks(&self) -> f64 {
        self.line_bytes / self.bus_bytes
    }

    /// The same machine with a different memory cycle time.
    ///
    /// # Errors
    ///
    /// Returns [`TradeoffError::NotPositive`] if `beta_m` is not positive.
    pub fn with_beta_m(&self, beta_m: f64) -> Result<Self, TradeoffError> {
        Machine::new(self.bus_bytes, self.line_bytes, beta_m)
    }

    /// The same machine with a different line size.
    ///
    /// # Errors
    ///
    /// Returns an error if the new line is invalid for this bus.
    pub fn with_line_bytes(&self, line_bytes: f64) -> Result<Self, TradeoffError> {
        Machine::new(self.bus_bytes, line_bytes, self.beta_m)
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "D={}B L={}B βm={}",
            self.bus_bytes, self.line_bytes, self.beta_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_validation_and_derived() {
        let hr = HitRatio::new(0.95).unwrap();
        assert_eq!(hr.value(), 0.95);
        assert!((hr.miss_ratio() - 0.05).abs() < 1e-12);
        assert!((hr.hits_per_miss() - 19.0).abs() < 1e-9);
        assert!(HitRatio::new(1.2).is_err());
        assert!(HitRatio::new(-0.1).is_err());
        assert!(HitRatio::new(f64::NAN).is_err());
        assert_eq!(HitRatio::new(1.0).unwrap().hits_per_miss(), f64::INFINITY);
    }

    #[test]
    fn flush_ratio_validation() {
        assert_eq!(FlushRatio::HALF.value(), 0.5);
        assert!(FlushRatio::new(1.0).is_ok());
        assert!(FlushRatio::new(1.01).is_err());
    }

    #[test]
    fn machine_validation() {
        let m = Machine::new(4.0, 32.0, 8.0).unwrap();
        assert_eq!(m.chunks(), 8.0);
        assert!(Machine::new(0.0, 32.0, 8.0).is_err());
        assert!(Machine::new(4.0, 32.0, 0.0).is_err());
        assert!(matches!(
            Machine::new(8.0, 4.0, 8.0),
            Err(TradeoffError::LineNarrowerThanBus { .. })
        ));
    }

    #[test]
    fn machine_with_methods() {
        let m = Machine::new(4.0, 32.0, 8.0).unwrap();
        assert_eq!(m.with_beta_m(2.0).unwrap().beta_m(), 2.0);
        assert_eq!(m.with_line_bytes(64.0).unwrap().chunks(), 16.0);
        assert!(m.with_line_bytes(2.0).is_err());
    }

    #[test]
    fn displays() {
        assert_eq!(HitRatio::new(0.95).unwrap().to_string(), "95.00%");
        assert_eq!(FlushRatio::HALF.to_string(), "α=0.50");
        assert!(Machine::new(4.0, 32.0, 8.0)
            .unwrap()
            .to_string()
            .contains("L=32B"));
    }

    #[test]
    fn try_from_conversions() {
        let hr: HitRatio = 0.9f64.try_into().unwrap();
        assert_eq!(hr.value(), 0.9);
        let bad: Result<FlushRatio, _> = 2.0f64.try_into();
        assert!(bad.is_err());
    }
}
