//! Error type for the tradeoff model.

use std::fmt;

/// Errors from model-parameter validation and non-physical comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum TradeoffError {
    /// A ratio that must lie in `[0, 1]` did not.
    FractionOutOfRange {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A parameter that must be strictly positive (and finite) was not.
    NotPositive {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The line is narrower than the (effective) bus — `L ≥ D` is required
    /// by the model (a fill must take at least one chunk).
    LineNarrowerThanBus {
        /// Line size in bytes.
        line_bytes: f64,
        /// Effective bus width in bytes.
        bus_bytes: f64,
    },
    /// A system's per-missed-line delay was ≤ 1 cycle, so the equivalence
    /// `r = (G_b − 1)/(G_e − 1)` has no physical solution (Eq. 3's
    /// denominator).
    NonPhysicalDelay {
        /// The offending delay-per-missed-line.
        delay: f64,
    },
    /// The traded hit ratio would push the enhanced system's hit ratio
    /// below zero (`HR₂ > 0` is required for Eq. 6 to be meaningful).
    HitRatioUnderflow {
        /// The base hit ratio.
        base: f64,
        /// The (negative) equivalent hit ratio implied.
        implied: f64,
    },
    /// A stalling factor was outside the feature's Table 2 bounds.
    PhiOutOfRange {
        /// The offending stalling factor.
        phi: f64,
        /// Lower bound.
        min: f64,
        /// Upper bound (`L/D`).
        max: f64,
    },
    /// An empty candidate set was supplied where at least one is needed.
    EmptyCandidates,
}

impl fmt::Display for TradeoffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TradeoffError::FractionOutOfRange { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
            TradeoffError::NotPositive { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            TradeoffError::LineNarrowerThanBus {
                line_bytes,
                bus_bytes,
            } => {
                write!(
                    f,
                    "line size {line_bytes} B is narrower than the {bus_bytes} B bus"
                )
            }
            TradeoffError::NonPhysicalDelay { delay } => {
                write!(
                    f,
                    "delay per missed line {delay} ≤ 1 cycle has no equivalence solution"
                )
            }
            TradeoffError::HitRatioUnderflow { base, implied } => {
                write!(f, "hit ratio {base} trades below zero (implied {implied})")
            }
            TradeoffError::PhiOutOfRange { phi, min, max } => {
                write!(f, "stalling factor {phi} outside [{min}, {max}]")
            }
            TradeoffError::EmptyCandidates => f.write_str("candidate set is empty"),
        }
    }
}

impl std::error::Error for TradeoffError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(TradeoffError, &str)> = vec![
            (
                TradeoffError::FractionOutOfRange {
                    what: "hit ratio",
                    value: 1.5,
                },
                "hit ratio",
            ),
            (
                TradeoffError::NotPositive {
                    what: "beta_m",
                    value: -1.0,
                },
                "beta_m",
            ),
            (
                TradeoffError::LineNarrowerThanBus {
                    line_bytes: 4.0,
                    bus_bytes: 8.0,
                },
                "narrower",
            ),
            (
                TradeoffError::NonPhysicalDelay { delay: 0.5 },
                "no equivalence",
            ),
            (
                TradeoffError::HitRatioUnderflow {
                    base: 0.5,
                    implied: -0.2,
                },
                "below zero",
            ),
            (
                TradeoffError::PhiOutOfRange {
                    phi: 9.0,
                    min: 1.0,
                    max: 8.0,
                },
                "stalling factor",
            ),
            (TradeoffError::EmptyCandidates, "empty"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
