//! Table 2: stalling-factor bounds per processor stalling feature.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The stalling features of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallKind {
    /// Full stalling.
    Fs,
    /// Bus-locked.
    Bl,
    /// Bus-not-locked, scenario 1 (stall to completion on any touch of
    /// the in-flight line).
    Bnl1,
    /// Bus-not-locked, scenario 2 (stall to completion only when the
    /// touched chunk has not arrived).
    Bnl2,
    /// Bus-not-locked, scenario 3 (stall only until the touched chunk
    /// arrives).
    Bnl3,
    /// Non-blocking.
    Nb,
}

impl StallKind {
    /// All kinds, in Table 2 order.
    pub const ALL: [StallKind; 6] = [
        StallKind::Fs,
        StallKind::Bl,
        StallKind::Bnl1,
        StallKind::Bnl2,
        StallKind::Bnl3,
        StallKind::Nb,
    ];

    /// Table 2's bounds on the stalling factor `φ` for a line/bus ratio
    /// `chunks = L/D`: `(min, max)`.
    pub fn phi_bounds(self, chunks: f64) -> (f64, f64) {
        match self {
            StallKind::Fs => (chunks, chunks),
            StallKind::Bl | StallKind::Bnl1 | StallKind::Bnl2 | StallKind::Bnl3 => (1.0, chunks),
            StallKind::Nb => (0.0, chunks),
        }
    }

    /// Whether a measured `φ` is admissible for this feature.
    pub fn admits_phi(self, phi: f64, chunks: f64) -> bool {
        let (lo, hi) = self.phi_bounds(chunks);
        phi.is_finite() && (lo - 1e-9..=hi + 1e-9).contains(&phi)
    }

    /// Whether the feature is partially stalling (PS) in the paper's
    /// terminology (everything but FS).
    pub fn is_partially_stalling(self) -> bool {
        self != StallKind::Fs
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallKind::Fs => "FS",
            StallKind::Bl => "BL",
            StallKind::Bnl1 => "BNL1",
            StallKind::Bnl2 => "BNL2",
            StallKind::Bnl3 => "BNL3",
            StallKind::Nb => "NB",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bounds() {
        let chunks = 8.0;
        assert_eq!(StallKind::Fs.phi_bounds(chunks), (8.0, 8.0));
        assert_eq!(StallKind::Bl.phi_bounds(chunks), (1.0, 8.0));
        assert_eq!(StallKind::Bnl1.phi_bounds(chunks), (1.0, 8.0));
        assert_eq!(StallKind::Bnl2.phi_bounds(chunks), (1.0, 8.0));
        assert_eq!(StallKind::Bnl3.phi_bounds(chunks), (1.0, 8.0));
        assert_eq!(StallKind::Nb.phi_bounds(chunks), (0.0, 8.0));
    }

    #[test]
    fn admits_phi_respects_bounds() {
        assert!(StallKind::Fs.admits_phi(8.0, 8.0));
        assert!(!StallKind::Fs.admits_phi(7.0, 8.0));
        assert!(StallKind::Bl.admits_phi(1.0, 8.0));
        assert!(!StallKind::Bl.admits_phi(0.5, 8.0));
        assert!(StallKind::Nb.admits_phi(0.0, 8.0));
        assert!(!StallKind::Nb.admits_phi(8.5, 8.0));
        assert!(!StallKind::Bl.admits_phi(f64::NAN, 8.0));
    }

    #[test]
    fn partial_stalling_classification() {
        assert!(!StallKind::Fs.is_partially_stalling());
        for k in [
            StallKind::Bl,
            StallKind::Bnl1,
            StallKind::Bnl2,
            StallKind::Bnl3,
            StallKind::Nb,
        ] {
            assert!(k.is_partially_stalling(), "{k}");
        }
    }

    #[test]
    fn all_lists_six() {
        assert_eq!(StallKind::ALL.len(), 6);
    }
}
