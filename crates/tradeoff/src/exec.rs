//! The CPU execution-time model (Eq. 2) and mean memory delay
//! (Section 4.5).

use crate::error::TradeoffError;
use crate::params::{HitRatio, Machine};
use crate::system::SystemConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The application signature of Table 1: `{E, R, W, α, φ}`.
///
/// `α` and `φ` live in the [`SystemConfig`] (they depend on the hardware
/// the application runs on); this struct carries the pure program-side
/// quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppSignature {
    /// Instructions executed (`E`).
    pub instructions: f64,
    /// Bytes read from memory by data-cache line fills (`R`).
    pub read_bytes: f64,
    /// Write-around miss operations on the bus (`W`); zero under
    /// write-allocate.
    pub write_arounds: f64,
}

impl AppSignature {
    /// Creates a signature.
    ///
    /// # Errors
    ///
    /// Returns [`TradeoffError::NotPositive`] if `instructions` is not
    /// positive, or a range error if byte/op counts are negative.
    pub fn new(
        instructions: f64,
        read_bytes: f64,
        write_arounds: f64,
    ) -> Result<Self, TradeoffError> {
        if !(instructions.is_finite() && instructions > 0.0) {
            return Err(TradeoffError::NotPositive {
                what: "instructions",
                value: instructions,
            });
        }
        for (what, v) in [("read bytes", read_bytes), ("write arounds", write_arounds)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(TradeoffError::NotPositive { what, value: v });
            }
        }
        Ok(AppSignature {
            instructions,
            read_bytes,
            write_arounds,
        })
    }

    /// The number of load/store misses `Λm = R/L + W` on a machine with
    /// line size `L` (Eq. 1).
    pub fn misses(&self, line_bytes: f64) -> f64 {
        self.read_bytes / line_bytes + self.write_arounds
    }
}

impl fmt::Display for AppSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E={:.0} R={:.0}B W={:.0}",
            self.instructions, self.read_bytes, self.write_arounds
        )
    }
}

/// Eq. 2: the CPU execution time in cycles.
///
/// ```text
/// X = (E − Λm) + (R/L)·(miss service) + flush cost·(R/L) + W·β_m
/// ```
///
/// with the miss-service and flush terms supplied by the system's
/// [`SystemConfig::delay_per_missed_line`].
///
/// # Errors
///
/// Propagates system-validation errors.
pub fn execution_time(
    app: &AppSignature,
    machine: &Machine,
    system: &SystemConfig,
) -> Result<f64, TradeoffError> {
    let fills = app.read_bytes / machine.line_bytes();
    let misses = fills + app.write_arounds;
    let g = system.delay_per_missed_line(machine)?;
    Ok(app.instructions - misses + fills * g + app.write_arounds * machine.beta_m())
}

/// Section 4.5: the mean memory delay per data reference,
/// `HR·1 + (1 − HR)·G`.
///
/// Two systems have equal execution time on the same application exactly
/// when this quantity is equal — the paper's equivalence basis.
///
/// # Errors
///
/// Propagates system-validation errors.
pub fn mean_access_time(
    machine: &Machine,
    system: &SystemConfig,
    hr: HitRatio,
) -> Result<f64, TradeoffError> {
    let g = system.delay_per_missed_line(machine)?;
    Ok(hr.value() + hr.miss_ratio() * g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn machine() -> Machine {
        Machine::new(4.0, 32.0, 8.0).unwrap()
    }

    #[test]
    fn eq2_full_stall_hand_computed() {
        // E = 1000, R = 320 B (10 fills), W = 0, α = 0.5.
        let app = AppSignature::new(1000.0, 320.0, 0.0).unwrap();
        let sys = SystemConfig::full_stalling(0.5);
        // X = (1000 − 10) + 10·(64 + 32) = 990 + 960 = 1950.
        let x = execution_time(&app, &machine(), &sys).unwrap();
        assert!((x - 1950.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_with_write_arounds() {
        let app = AppSignature::new(1000.0, 320.0, 20.0).unwrap();
        let sys = SystemConfig::full_stalling(0.0);
        // Λm = 10 + 20 = 30; X = 970 + 10·64 + 20·8 = 970 + 640 + 160.
        let x = execution_time(&app, &machine(), &sys).unwrap();
        assert!((x - 1770.0).abs() < 1e-9);
    }

    #[test]
    fn misses_follow_eq1() {
        let app = AppSignature::new(100.0, 640.0, 5.0).unwrap();
        assert!((app.misses(32.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn write_buffers_reduce_execution_time() {
        let app = AppSignature::new(10_000.0, 3200.0, 0.0).unwrap();
        let m = machine();
        let plain = SystemConfig::full_stalling(0.5);
        let buffered = plain.with_write_buffers();
        let x0 = execution_time(&app, &m, &plain).unwrap();
        let x1 = execution_time(&app, &m, &buffered).unwrap();
        // Exactly the flush term: fills · α(L/D)β = 100 · 32.
        assert!((x0 - x1 - 3200.0).abs() < 1e-9);
    }

    #[test]
    fn mean_access_time_weights_by_miss_ratio() {
        let m = machine();
        let sys = SystemConfig::full_stalling(0.5); // G = 96
        let t = mean_access_time(&m, &sys, HitRatio::new(0.9).unwrap()).unwrap();
        assert!((t - (0.9 + 0.1 * 96.0)).abs() < 1e-12);
        // Perfect cache: one cycle.
        let t1 = mean_access_time(&m, &sys, HitRatio::new(1.0).unwrap()).unwrap();
        assert!((t1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signature_validation() {
        assert!(AppSignature::new(0.0, 1.0, 0.0).is_err());
        assert!(AppSignature::new(10.0, -1.0, 0.0).is_err());
        assert!(AppSignature::new(10.0, 0.0, -2.0).is_err());
        assert!(AppSignature::new(10.0, 0.0, 0.0).is_ok());
    }

    #[test]
    fn display_mentions_components() {
        let app = AppSignature::new(1000.0, 320.0, 5.0).unwrap();
        let s = app.to_string();
        assert!(s.contains("E=1000") && s.contains("R=320B") && s.contains("W=5"));
    }
}
