//! The typed query API every front end dispatches through.
//!
//! The paper's methodology is a *design-time oracle*: given a machine
//! point `{D, L, β_m, q}` and a workload, what are φ, ΔHR and the
//! feature ranking? This module makes that question a first-class,
//! serialisable value: a [`QueryRequest`] goes in, one pure
//! [`dispatch`] call answers it, and a [`QueryResponse`] (or a typed
//! [`ApiError`]) comes out. The `tradeoff` CLI renders the response as
//! tables; the `tradeoff-server` binary writes it straight onto an HTTP
//! connection — both are thin formatters over the *same* `dispatch`,
//! so a served answer is byte-derived from the CLI's code path (pinned
//! by the workspace's server integration tests).
//!
//! Trace-backed queries (the miss-ratio grids, the φ point queries)
//! depend on workload folds that a long-running process should memoise.
//! `dispatch` therefore takes a [`Workloads`] provider: the `bench`
//! crate's trace store implements it with process-wide memoisation and
//! request coalescing, while [`Uncached`] recomputes from scratch
//! (useful for tests and one-shot embedding). Dispatch itself stays
//! pure — deterministic output, no I/O, no global state.
//!
//! The wire format is flat JSON with a `"query"` discriminator, e.g.
//! `{"query": "price", "hr": 0.95}`. Unknown keys and unknown
//! discriminators are rejected (`bad-request`), mirroring the CLI's
//! strict flag validation and its usage exit code.

use crate::cost::PinModel;
use crate::linesize::{optimal_line_eq19, optimal_line_smith, FillTiming, LineCandidate};
use crate::{mean_access_time, HitRatio, Machine, SystemConfig};
use report::Json;
use simcache::{Analytic, CacheConfig, HitRatioBackend, Resolution, Simulated, StackDistSweep};
use simcpu::{CpuConfig, MissTimeline, StallFeature};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::Spec92Program;
use simtrace::workload::{self, WorkloadSpec};
use simtrace::ReuseHistograms;
use std::sync::Arc;

/// Seed every grid-style query folds workloads under — the same seed
/// the `bench` sweep experiments use, so a server answering queries
/// shares its memoised folds with suite runs (asserted in `bench`).
pub const GRID_SEED: u64 = 7;

/// Default seed for φ point queries (`simulate`), matching the
/// historical CLI behaviour.
pub const SIMULATE_SEED: u64 = 1;

/// Reuse-distance histogram depth shared by every analytic build: deep
/// enough that the largest comparison-grid cache (64 KB of 8 B lines =
/// 8192 lines) never saturates.
pub const HIST_DISTANCE_CAP: usize = 1 << 14;

/// Line-size range folded into every reuse-distance histogram request.
pub const HIST_LINE_RANGE: (u64, u64) = (8, 128);

/// Upper bound on `instructions` any query may ask for — long enough
/// for paper-scale folds, short enough that one request cannot pin a
/// server for minutes.
pub const MAX_INSTRUCTIONS: usize = 100_000_000;

/// Upper bounds on the dense grid a single query may walk.
pub const MAX_DENSE_SETS: u64 = 1 << 20;
/// Companion associativity bound for [`MAX_DENSE_SETS`].
pub const MAX_DENSE_ASSOC: u32 = 64;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// How a query failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiErrorKind {
    /// The request was malformed or out of range — the caller's fault.
    /// HTTP 400, CLI usage exit (2).
    BadRequest,
    /// The engine could not answer a well-formed request — the
    /// server's fault. HTTP 500, CLI failure exit (1).
    Internal,
}

impl ApiErrorKind {
    /// The wire keyword (`bad-request` / `internal`).
    pub fn name(self) -> &'static str {
        match self {
            ApiErrorKind::BadRequest => "bad-request",
            ApiErrorKind::Internal => "internal",
        }
    }

    /// The HTTP status code a server maps this kind to.
    pub fn http_status(self) -> u16 {
        match self {
            ApiErrorKind::BadRequest => 400,
            ApiErrorKind::Internal => 500,
        }
    }

    /// The process exit code the CLI maps this kind to (matching the
    /// historical scheme: 2 bad usage, 1 failure).
    pub fn exit_code(self) -> i32 {
        match self {
            ApiErrorKind::BadRequest => 2,
            ApiErrorKind::Internal => 1,
        }
    }
}

/// A typed query failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Classification (drives HTTP status and CLI exit code).
    pub kind: ApiErrorKind,
    /// Human-readable cause.
    pub message: String,
}

impl ApiError {
    /// A caller-fault error.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ApiErrorKind::BadRequest,
            message: message.into(),
        }
    }

    /// An engine-fault error.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: ApiErrorKind::Internal,
            message: message.into(),
        }
    }

    /// The error's wire form: `{"ok":false,"error":{...}}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj(vec![
                    ("kind", Json::str(self.kind.name())),
                    ("message", Json::str(&self.message)),
                ]),
            ),
        ])
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

impl std::error::Error for ApiError {}

fn bad<T>(message: impl Into<String>) -> Result<T, ApiError> {
    Err(ApiError::bad_request(message))
}

// ---------------------------------------------------------------------------
// Grid specifications (shared with `bench::grid`, which re-exports them)
// ---------------------------------------------------------------------------

/// The (cache size × line size × associativity) grid the simulated
/// backend answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    /// Cache capacities in bytes (powers of two).
    pub cache_sizes: Vec<u64>,
    /// Line sizes in bytes (powers of two).
    pub line_sizes: Vec<u64>,
    /// Associativities.
    pub assocs: Vec<u32>,
    /// Instructions excluded from statistics.
    pub warmup: u64,
}

impl GridSpec {
    /// The comparison grid: Figure-6 capacities and line sizes crossed
    /// with associativity 1/2/4 — 105 points per workload.
    pub fn comparison(warmup: u64) -> Self {
        GridSpec {
            cache_sizes: (0..=6).map(|i| 1024u64 << i).collect(),
            line_sizes: vec![8, 16, 32, 64, 128],
            assocs: vec![1, 2, 4],
            warmup,
        }
    }

    /// Grid points per workload.
    pub fn points(&self) -> usize {
        self.cache_sizes.len() * self.line_sizes.len() * self.assocs.len()
    }

    /// Smallest set count any configuration needs at `line_bytes`.
    pub fn min_sets(&self, line_bytes: u64) -> u64 {
        let amax = u64::from(*self.assocs.iter().max().expect("grid has assocs"));
        self.cache_sizes
            .iter()
            .map(|&c| c / (line_bytes * amax))
            .min()
            .expect("grid has cache sizes")
    }

    /// Largest set count any configuration needs at `line_bytes`.
    pub fn max_sets(&self, line_bytes: u64) -> u64 {
        let amin = u64::from(*self.assocs.iter().min().expect("grid has assocs"));
        self.cache_sizes
            .iter()
            .map(|&c| c / (line_bytes * amin))
            .max()
            .expect("grid has cache sizes")
    }
}

/// The dense analytic-only grid: every set count `1..=max_sets` (most
/// are not powers of two — geometries trace replay cannot even
/// express) crossed with every line size and associativity
/// `1..=max_assoc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseGrid {
    /// Line sizes in bytes (powers of two).
    pub line_sizes: Vec<u64>,
    /// Every set count `1..=max_sets` is evaluated.
    pub max_sets: u64,
    /// Every associativity `1..=max_assoc` is evaluated.
    pub max_assoc: u32,
}

impl DenseGrid {
    /// The paper-scale dense grid: 5 line sizes × 2084 set counts × 16
    /// ways = 166 720 points per workload, 1 000 320 across the six
    /// proxies.
    pub fn standard() -> Self {
        DenseGrid {
            line_sizes: vec![8, 16, 32, 64, 128],
            max_sets: 2084,
            max_assoc: 16,
        }
    }

    /// A debug-friendly slice of the dense grid for short suites.
    pub fn small() -> Self {
        DenseGrid {
            line_sizes: vec![8, 16, 32, 64, 128],
            max_sets: 64,
            max_assoc: 8,
        }
    }

    /// Grid points per workload.
    pub fn points(&self) -> usize {
        self.line_sizes.len() * self.max_sets as usize * self.max_assoc as usize
    }
}

/// The cheapest geometry on the dense grid reaching a target hit ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseBest {
    /// Total capacity in bytes (`sets × line × assoc`).
    pub cache_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Set count (need not be a power of two).
    pub sets: u64,
    /// Associativity.
    pub assoc: u32,
    /// The analytic hit ratio at that geometry.
    pub hit_ratio: f64,
}

/// Walks the whole dense grid for one workload and returns the
/// smallest-capacity geometry whose analytic hit ratio reaches
/// `target_hr` (ties resolved by walk order: line, then sets, then
/// assoc). Bucketed resolution: one `conflict_curve` per (line, sets)
/// answers all `max_assoc` ways at once.
///
/// # Panics
///
/// Panics when a requested line size was not folded into `analytic`.
pub fn dense_best(analytic: &Analytic, grid: &DenseGrid, target_hr: f64) -> Option<DenseBest> {
    let mut best: Option<DenseBest> = None;
    for &line_bytes in &grid.line_sizes {
        for sets in 1..=grid.max_sets {
            let curve = analytic
                .conflict_curve(line_bytes, sets, grid.max_assoc, Resolution::Bucketed)
                .expect("dense grid line sizes are folded");
            for (ai, &hit_ratio) in curve.iter().enumerate() {
                if hit_ratio < target_hr {
                    continue;
                }
                let assoc = ai as u32 + 1;
                let cache_bytes = sets * line_bytes * u64::from(assoc);
                if best.is_none_or(|b| cache_bytes < b.cache_bytes) {
                    best = Some(DenseBest {
                        cache_bytes,
                        line_bytes,
                        sets,
                        assoc,
                        hit_ratio,
                    });
                }
            }
        }
    }
    best
}

// ---------------------------------------------------------------------------
// The workload provider
// ---------------------------------------------------------------------------

/// A registered experiment, as listed by the `experiments` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentInfo {
    /// Registry id (`fig1`, `grid`, …).
    pub id: String,
    /// Human-readable section title.
    pub title: String,
    /// Filter tags.
    pub tags: Vec<String>,
    /// Shared trace-store keys the experiment warms.
    pub traces: Vec<String>,
}

/// Supplies the workload-derived state trace-backed queries need.
///
/// [`dispatch`] never generates or folds traces itself — it asks this
/// provider, so a long-running process can memoise folds across
/// requests (the `bench` trace store does, with same-key coalescing)
/// while tests and one-shot embedders use [`Uncached`].
pub trait Workloads: Sync {
    /// Reuse-distance histograms of a workload prefix (the analytic
    /// backend's input). The spec's content identity plus the scalar
    /// parameters are the memoisation key.
    #[allow(clippy::too_many_arguments)]
    fn histograms(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        len: usize,
        min_line: u64,
        max_line: u64,
        max_distance: usize,
        warmup: u64,
    ) -> Arc<ReuseHistograms>;

    /// A simulated hit-ratio backend covering `grid` for one workload,
    /// folded under the provider's canonical sweep seed
    /// ([`GRID_SEED`]).
    fn simulated_grid(
        &self,
        spec: &WorkloadSpec,
        grid: &GridSpec,
        instructions: usize,
    ) -> Simulated;

    /// The miss-event timeline of a workload prefix under `cache` (the
    /// φ point query's input). The spec's content identity plus the
    /// scalar parameters are the memoisation key.
    fn timeline(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        len: usize,
        cache: &CacheConfig,
    ) -> Arc<MissTimeline>;

    /// The registered experiments, in registry order. Providers without
    /// a registry (like [`Uncached`]) return an empty list.
    fn experiments(&self) -> Vec<ExperimentInfo> {
        Vec::new()
    }
}

/// A provider that recomputes everything from scratch on every call —
/// no memoisation, no shared state. The reference implementation the
/// memoising providers are tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uncached;

impl Workloads for Uncached {
    fn histograms(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        len: usize,
        min_line: u64,
        max_line: u64,
        max_distance: usize,
        warmup: u64,
    ) -> Arc<ReuseHistograms> {
        let mut hists = ReuseHistograms::new(min_line, max_line, max_distance, warmup);
        let trace: Vec<simtrace::Instr> = spec.compile(seed).take(len).collect();
        hists.process_slice(&trace);
        Arc::new(hists)
    }

    fn simulated_grid(
        &self,
        spec: &WorkloadSpec,
        grid: &GridSpec,
        instructions: usize,
    ) -> Simulated {
        let amax = *grid.assocs.iter().max().expect("grid has assocs");
        let mut sinks: Vec<StackDistSweep> = grid
            .line_sizes
            .iter()
            .map(|&line_bytes| {
                StackDistSweep::new_range(
                    line_bytes,
                    grid.min_sets(line_bytes).trailing_zeros(),
                    grid.max_sets(line_bytes).trailing_zeros(),
                    amax,
                    grid.warmup,
                )
                .expect("valid grid line size")
            })
            .collect();
        let trace: Vec<simtrace::Instr> = spec.compile(GRID_SEED).take(instructions).collect();
        for sink in &mut sinks {
            sink.process_slice(&trace);
        }
        Simulated::from_sweeps(sinks)
    }

    fn timeline(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        len: usize,
        cache: &CacheConfig,
    ) -> Arc<MissTimeline> {
        Arc::new(MissTimeline::extract(*cache, spec.compile(seed).take(len)))
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The `price` query: what is each feature worth in hit ratio at a
/// design point?
#[derive(Debug, Clone, PartialEq)]
pub struct PriceQuery {
    /// Bus width `D` in bytes.
    pub bus: f64,
    /// Line size `L` in bytes.
    pub line: f64,
    /// Memory cycle time `β_m`.
    pub beta: f64,
    /// Baseline hit ratio.
    pub hr: f64,
    /// Dirty-flush ratio `α`.
    pub alpha: f64,
    /// Pipelining depth `q` priced for pipelined memory.
    pub q: f64,
    /// Issue width `w`.
    pub width: u32,
}

impl Default for PriceQuery {
    fn default() -> Self {
        PriceQuery {
            bus: 4.0,
            line: 32.0,
            beta: 8.0,
            hr: 0.95,
            alpha: 0.5,
            q: 2.0,
            width: 1,
        }
    }
}

/// The `crossover` query: where does pipelined memory start to win?
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverQuery {
    /// Transfer chunks per line (`L/D`).
    pub chunks: f64,
    /// Pipelining depth `q`.
    pub q: f64,
    /// Dirty-flush ratio `α`.
    pub alpha: f64,
}

/// The `linesize` query: optimal line size for a measured curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LinesizeQuery {
    /// Fill-time constant `c`.
    pub c: f64,
    /// Fill-time slope `β`.
    pub beta: f64,
    /// Bus width `D` in bytes.
    pub bus: f64,
    /// `(line bytes, hit ratio)` candidates.
    pub curve: Vec<(f64, f64)>,
}

/// The `design` query: enumerate configurations meeting a mean-access-
/// time target at minimum pin cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignQuery {
    /// Hit ratio the memory system runs at.
    pub hr: f64,
    /// Mean access time to meet.
    pub target: f64,
    /// Line size `L` in bytes.
    pub line: f64,
    /// Memory cycle time `β_m`.
    pub beta: f64,
    /// Dirty-flush ratio `α`.
    pub alpha: f64,
}

/// How a query names its workload: a built-in name or an inline
/// declarative spec.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadRef {
    /// A built-in named workload (`ear`, `nasa7`, …) — wire key
    /// `"program"`.
    Named(String),
    /// An inline [`WorkloadSpec`] — wire key `"workload"`.
    Inline(WorkloadSpec),
}

impl WorkloadRef {
    /// The human-facing label (the name, or `spec:<hash>` for
    /// anonymous inline specs).
    pub fn label(&self) -> String {
        match self {
            WorkloadRef::Named(name) => name.clone(),
            WorkloadRef::Inline(spec) => spec.label(),
        }
    }

    /// Resolves to the spec this reference denotes.
    ///
    /// # Errors
    ///
    /// [`ApiErrorKind::BadRequest`] when a named workload is not a
    /// built-in.
    pub fn resolve(&self) -> Result<&WorkloadSpec, ApiError> {
        match self {
            WorkloadRef::Named(name) => workload::builtin(name)
                .ok_or_else(|| ApiError::bad_request(format!("unknown program {name:?}"))),
            WorkloadRef::Inline(spec) => Ok(spec),
        }
    }
}

/// The `simulate` query: a φ point — run one workload at one machine
/// configuration and report the measured `{HR, α, φ, CPI}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateQuery {
    /// The workload: a built-in name or an inline spec.
    pub workload: WorkloadRef,
    /// Instructions to run.
    pub instructions: usize,
    /// Stalling feature keyword (`fs`, `bl`, `bnl1..3`, `nb`).
    pub stall: String,
    /// Data-cache capacity in bytes.
    pub cache: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Bus width in bytes.
    pub bus: u64,
    /// Memory cycle time `β_m`.
    pub beta: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for SimulateQuery {
    fn default() -> Self {
        SimulateQuery {
            workload: WorkloadRef::Named(String::new()),
            instructions: 100_000,
            stall: "fs".to_string(),
            cache: 8 * 1024,
            line: 32,
            bus: 4,
            beta: 8,
            seed: SIMULATE_SEED,
        }
    }
}

/// Which hit-ratio backend a `grid` query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridBackend {
    /// Single-pass stack-distance sweeps over the comparison grid.
    Sim,
    /// Closed-form reuse-histogram walks over the dense grid.
    Analytic,
}

impl GridBackend {
    /// The wire keyword.
    pub fn name(self) -> &'static str {
        match self {
            GridBackend::Sim => "sim",
            GridBackend::Analytic => "analytic",
        }
    }
}

/// The `grid` query: answer a hit-ratio design grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridQuery {
    /// Backend choice.
    pub backend: GridBackend,
    /// Trace length per workload.
    pub instructions: usize,
    /// Target hit ratio for the analytic capacity search.
    pub target: f64,
    /// Dense-grid set-count bound (analytic backend).
    pub max_sets: u64,
    /// Dense-grid associativity bound (analytic backend).
    pub max_assoc: u32,
    /// Built-in workload names to answer for; empty (with no inline
    /// `workloads` either) means all six proxies.
    pub programs: Vec<String>,
    /// Inline workload specs to answer for, in addition to `programs`.
    pub workloads: Vec<WorkloadSpec>,
}

impl Default for GridQuery {
    fn default() -> Self {
        GridQuery {
            backend: GridBackend::Analytic,
            instructions: 120_000,
            target: 0.9,
            max_sets: 2084,
            max_assoc: 16,
            programs: Vec::new(),
            workloads: Vec::new(),
        }
    }
}

/// What the `workloads` query asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadsQuery {
    /// List the built-in named specs.
    List,
    /// Show one built-in spec by name.
    Show {
        /// The built-in name.
        name: String,
    },
    /// Validate an inline spec and report its identity. An invalid
    /// spec is rejected at parse time (`bad-request`), so dispatching
    /// this always reports a valid spec.
    Validate(WorkloadSpec),
}

/// One typed query — the single entry point of the service.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Feature pricing at a design point.
    Price(PriceQuery),
    /// Pipelined-memory crossover thresholds.
    Crossover(CrossoverQuery),
    /// Optimal line-size selection.
    Linesize(LinesizeQuery),
    /// Minimum-pin design search.
    Design(DesignQuery),
    /// One φ point through the timeline engine.
    Simulate(SimulateQuery),
    /// A hit-ratio design grid.
    Grid(GridQuery),
    /// The experiment registry listing.
    Experiments,
    /// Workload catalogue: list/show built-ins, validate inline specs.
    Workloads(WorkloadsQuery),
}

impl QueryRequest {
    /// The wire discriminator (`price`, `grid`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryRequest::Price(_) => "price",
            QueryRequest::Crossover(_) => "crossover",
            QueryRequest::Linesize(_) => "linesize",
            QueryRequest::Design(_) => "design",
            QueryRequest::Simulate(_) => "simulate",
            QueryRequest::Grid(_) => "grid",
            QueryRequest::Experiments => "experiments",
            QueryRequest::Workloads(_) => "workloads",
        }
    }

    /// Parses a request from its wire JSON text.
    ///
    /// # Errors
    ///
    /// [`ApiErrorKind::BadRequest`] on malformed JSON, an unknown
    /// `"query"` discriminator, unknown keys, or out-of-range values.
    pub fn from_json_str(text: &str) -> Result<QueryRequest, ApiError> {
        let value =
            Json::parse(text).map_err(|e| ApiError::bad_request(format!("bad JSON: {e}")))?;
        QueryRequest::from_json(&value)
    }

    /// Parses a request from a decoded JSON value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QueryRequest::from_json_str`].
    pub fn from_json(value: &Json) -> Result<QueryRequest, ApiError> {
        if value.as_obj().is_none() {
            return bad("request must be a JSON object");
        }
        let kind = value
            .get("query")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("missing \"query\" discriminator"))?;
        let p = Params { obj: value };
        match kind {
            "price" => {
                p.check_keys(&["bus", "line", "beta", "hr", "alpha", "q", "width"])?;
                let d = PriceQuery::default();
                Ok(QueryRequest::Price(PriceQuery {
                    bus: p.f64("bus", Some(d.bus))?,
                    line: p.f64("line", Some(d.line))?,
                    beta: p.f64("beta", Some(d.beta))?,
                    hr: p.f64("hr", None)?,
                    alpha: p.f64("alpha", Some(d.alpha))?,
                    q: p.f64("q", Some(d.q))?,
                    width: p.u64("width", Some(u64::from(d.width)))? as u32,
                }))
            }
            "crossover" => {
                p.check_keys(&["chunks", "q", "alpha"])?;
                Ok(QueryRequest::Crossover(CrossoverQuery {
                    chunks: p.f64("chunks", None)?,
                    q: p.f64("q", Some(2.0))?,
                    alpha: p.f64("alpha", Some(0.5))?,
                }))
            }
            "linesize" => {
                p.check_keys(&["c", "beta", "bus", "curve"])?;
                let curve = value
                    .get("curve")
                    .ok_or_else(|| ApiError::bad_request("missing required \"curve\""))?;
                let pairs = curve
                    .as_arr()
                    .ok_or_else(|| ApiError::bad_request("\"curve\" must be an array"))?;
                let mut parsed = Vec::with_capacity(pairs.len());
                for pair in pairs {
                    let two = pair.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                        ApiError::bad_request("curve entries must be [line_bytes, hit_ratio]")
                    })?;
                    let line = two[0]
                        .as_f64()
                        .ok_or_else(|| ApiError::bad_request("bad curve line size"))?;
                    let hr = two[1]
                        .as_f64()
                        .ok_or_else(|| ApiError::bad_request("bad curve hit ratio"))?;
                    parsed.push((line, hr));
                }
                Ok(QueryRequest::Linesize(LinesizeQuery {
                    c: p.f64("c", None)?,
                    beta: p.f64("beta", None)?,
                    bus: p.f64("bus", Some(4.0))?,
                    curve: parsed,
                }))
            }
            "design" => {
                p.check_keys(&["hr", "target", "line", "beta", "alpha"])?;
                Ok(QueryRequest::Design(DesignQuery {
                    hr: p.f64("hr", None)?,
                    target: p.f64("target", None)?,
                    line: p.f64("line", Some(32.0))?,
                    beta: p.f64("beta", Some(8.0))?,
                    alpha: p.f64("alpha", Some(0.5))?,
                }))
            }
            "simulate" => {
                p.check_keys(&[
                    "program",
                    "workload",
                    "instructions",
                    "stall",
                    "cache",
                    "line",
                    "bus",
                    "beta",
                    "seed",
                ])?;
                let d = SimulateQuery::default();
                let workload = parse_workload_ref(value)?;
                Ok(QueryRequest::Simulate(SimulateQuery {
                    workload,
                    instructions: p.u64("instructions", Some(d.instructions as u64))? as usize,
                    stall: p.str_or("stall", &d.stall)?.to_string(),
                    cache: p.u64("cache", Some(d.cache))?,
                    line: p.u64("line", Some(d.line))?,
                    bus: p.u64("bus", Some(d.bus))?,
                    beta: p.u64("beta", Some(d.beta))?,
                    seed: p.u64("seed", Some(d.seed))?,
                }))
            }
            "grid" => {
                p.check_keys(&[
                    "backend",
                    "instructions",
                    "target",
                    "sets",
                    "assoc",
                    "programs",
                    "workloads",
                ])?;
                let d = GridQuery::default();
                let backend = match p.str_or("backend", "analytic")? {
                    "sim" => GridBackend::Sim,
                    "analytic" => GridBackend::Analytic,
                    other => {
                        return bad(format!("unknown backend {other:?} (want sim or analytic)"))
                    }
                };
                let programs = match value.get("programs") {
                    None => Vec::new(),
                    Some(list) => {
                        let items = list.as_arr().ok_or_else(|| {
                            ApiError::bad_request("\"programs\" must be an array")
                        })?;
                        items
                            .iter()
                            .map(|i| {
                                i.as_str().map(str::to_string).ok_or_else(|| {
                                    ApiError::bad_request("program names must be strings")
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    }
                };
                let workloads = match value.get("workloads") {
                    None => Vec::new(),
                    Some(list) => {
                        let items = list.as_arr().ok_or_else(|| {
                            ApiError::bad_request("\"workloads\" must be an array")
                        })?;
                        items
                            .iter()
                            .map(|i| WorkloadSpec::from_json(i).map_err(ApiError::bad_request))
                            .collect::<Result<Vec<_>, _>>()?
                    }
                };
                Ok(QueryRequest::Grid(GridQuery {
                    backend,
                    instructions: p.u64("instructions", Some(d.instructions as u64))? as usize,
                    target: p.f64("target", Some(d.target))?,
                    max_sets: p.u64("sets", Some(d.max_sets))?,
                    max_assoc: p.u64("assoc", Some(u64::from(d.max_assoc)))? as u32,
                    programs,
                    workloads,
                }))
            }
            "experiments" => {
                p.check_keys(&[])?;
                Ok(QueryRequest::Experiments)
            }
            "workloads" => {
                p.check_keys(&["action", "name", "workload"])?;
                let action = p.str_or("action", "list")?;
                match action {
                    "list" => Ok(QueryRequest::Workloads(WorkloadsQuery::List)),
                    "show" => Ok(QueryRequest::Workloads(WorkloadsQuery::Show {
                        name: p.required_str("name")?.to_string(),
                    })),
                    "validate" => {
                        let spec = value.get("workload").ok_or_else(|| {
                            ApiError::bad_request("validate needs an inline \"workload\"")
                        })?;
                        Ok(QueryRequest::Workloads(WorkloadsQuery::Validate(
                            WorkloadSpec::from_json(spec).map_err(ApiError::bad_request)?,
                        )))
                    }
                    other => bad(format!(
                        "unknown action {other:?} (want list, show or validate)"
                    )),
                }
            }
            other => bad(format!("unknown query {other:?}")),
        }
    }

    /// The request's canonical wire form (every field explicit).
    pub fn to_json(&self) -> Json {
        let kind = ("query", Json::str(self.kind()));
        match self {
            QueryRequest::Price(q) => Json::obj(vec![
                kind,
                ("bus", Json::num(q.bus)),
                ("line", Json::num(q.line)),
                ("beta", Json::num(q.beta)),
                ("hr", Json::num(q.hr)),
                ("alpha", Json::num(q.alpha)),
                ("q", Json::num(q.q)),
                ("width", Json::num(q.width)),
            ]),
            QueryRequest::Crossover(q) => Json::obj(vec![
                kind,
                ("chunks", Json::num(q.chunks)),
                ("q", Json::num(q.q)),
                ("alpha", Json::num(q.alpha)),
            ]),
            QueryRequest::Linesize(q) => Json::obj(vec![
                kind,
                ("c", Json::num(q.c)),
                ("beta", Json::num(q.beta)),
                ("bus", Json::num(q.bus)),
                (
                    "curve",
                    Json::Arr(
                        q.curve
                            .iter()
                            .map(|&(l, h)| Json::Arr(vec![Json::num(l), Json::num(h)]))
                            .collect(),
                    ),
                ),
            ]),
            QueryRequest::Design(q) => Json::obj(vec![
                kind,
                ("hr", Json::num(q.hr)),
                ("target", Json::num(q.target)),
                ("line", Json::num(q.line)),
                ("beta", Json::num(q.beta)),
                ("alpha", Json::num(q.alpha)),
            ]),
            QueryRequest::Simulate(q) => {
                let workload = match &q.workload {
                    WorkloadRef::Named(name) => ("program", Json::str(name)),
                    WorkloadRef::Inline(spec) => ("workload", spec.to_json()),
                };
                Json::obj(vec![
                    kind,
                    workload,
                    ("instructions", Json::num(q.instructions as f64)),
                    ("stall", Json::str(&q.stall)),
                    ("cache", Json::num(q.cache as f64)),
                    ("line", Json::num(q.line as f64)),
                    ("bus", Json::num(q.bus as f64)),
                    ("beta", Json::num(q.beta as f64)),
                    ("seed", Json::num(q.seed as f64)),
                ])
            }
            QueryRequest::Grid(q) => {
                let mut pairs = vec![
                    kind,
                    ("backend", Json::str(q.backend.name())),
                    ("instructions", Json::num(q.instructions as f64)),
                    ("target", Json::num(q.target)),
                    ("sets", Json::num(q.max_sets as f64)),
                    ("assoc", Json::num(q.max_assoc)),
                    (
                        "programs",
                        Json::Arr(q.programs.iter().map(Json::str).collect()),
                    ),
                ];
                if !q.workloads.is_empty() {
                    pairs.push((
                        "workloads",
                        Json::Arr(q.workloads.iter().map(WorkloadSpec::to_json).collect()),
                    ));
                }
                Json::obj(pairs)
            }
            QueryRequest::Experiments => Json::obj(vec![kind]),
            QueryRequest::Workloads(q) => match q {
                WorkloadsQuery::List => Json::obj(vec![kind, ("action", Json::str("list"))]),
                WorkloadsQuery::Show { name } => Json::obj(vec![
                    kind,
                    ("action", Json::str("show")),
                    ("name", Json::str(name)),
                ]),
                WorkloadsQuery::Validate(spec) => Json::obj(vec![
                    kind,
                    ("action", Json::str("validate")),
                    ("workload", spec.to_json()),
                ]),
            },
        }
    }
}

/// Extracts the workload reference of a `simulate`-style request:
/// exactly one of `"program"` (a built-in name) or `"workload"` (an
/// inline spec object).
fn parse_workload_ref(value: &Json) -> Result<WorkloadRef, ApiError> {
    match (value.get("program"), value.get("workload")) {
        (Some(_), Some(_)) => bad("give either \"program\" or \"workload\", not both"),
        (Some(name), None) => Ok(WorkloadRef::Named(
            name.as_str()
                .ok_or_else(|| ApiError::bad_request("\"program\" must be a string"))?
                .to_string(),
        )),
        (None, Some(spec)) => Ok(WorkloadRef::Inline(
            WorkloadSpec::from_json(spec).map_err(ApiError::bad_request)?,
        )),
        (None, None) => bad("missing required \"program\" (or inline \"workload\")"),
    }
}

/// Strict field extraction over a request object.
struct Params<'a> {
    obj: &'a Json,
}

impl Params<'_> {
    /// Rejects keys outside `allowed` (plus the discriminator).
    fn check_keys(&self, allowed: &[&str]) -> Result<(), ApiError> {
        for key in self.obj.keys() {
            if key != "query" && !allowed.contains(&key) {
                return bad(format!("unknown key {key:?}"));
            }
        }
        Ok(())
    }

    fn f64(&self, key: &str, default: Option<f64>) -> Result<f64, ApiError> {
        match self.obj.get(key) {
            Some(v) => v
                .as_f64()
                .ok_or_else(|| ApiError::bad_request(format!("\"{key}\" must be a number"))),
            None => {
                default.ok_or_else(|| ApiError::bad_request(format!("missing required \"{key}\"")))
            }
        }
    }

    fn u64(&self, key: &str, default: Option<u64>) -> Result<u64, ApiError> {
        match self.obj.get(key) {
            Some(v) => v.as_u64().ok_or_else(|| {
                ApiError::bad_request(format!("\"{key}\" must be a non-negative integer"))
            }),
            None => {
                default.ok_or_else(|| ApiError::bad_request(format!("missing required \"{key}\"")))
            }
        }
    }

    fn required_str(&self, key: &str) -> Result<&str, ApiError> {
        self.obj
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request(format!("missing required \"{key}\"")))
    }

    fn str_or<'s>(&'s self, key: &str, default: &'s str) -> Result<&'s str, ApiError> {
        match self.obj.get(key) {
            Some(v) => v
                .as_str()
                .ok_or_else(|| ApiError::bad_request(format!("\"{key}\" must be a string"))),
            None => Ok(default),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One feature's price in hit ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureWorth {
    /// Feature name (`doubling bus`, `write buffers`, `pipelined memory`).
    pub feature: String,
    /// ΔHR the feature is worth at the design point.
    pub delta_hr: f64,
    /// The hit ratio at which the unenhanced system performs equally.
    pub equal_performance_hr: f64,
}

/// Answer to a [`PriceQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct PriceResponse {
    /// The design point echoed back.
    pub query: PriceQuery,
    /// Per-feature worth, in canonical feature order.
    pub features: Vec<FeatureWorth>,
    /// Feature names ranked by descending ΔHR.
    pub ranking: Vec<String>,
}

/// Answer to a [`CrossoverQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverResponse {
    /// The query echoed back.
    pub query: CrossoverQuery,
    /// β_m above which pipelined memory beats doubling the bus, when
    /// a crossover exists.
    pub vs_double_bus: Option<f64>,
    /// β_m above which pipelined memory beats write buffers.
    pub vs_write_buffers: Option<f64>,
}

/// Answer to a [`LinesizeQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinesizeResponse {
    /// The query echoed back.
    pub query: LinesizeQuery,
    /// Smith's (Eq. 16) optimal line size.
    pub smith_line_bytes: f64,
    /// The paper's (Eq. 19) optimal line size.
    pub eq19_line_bytes: f64,
    /// Whether the two methodologies agree.
    pub agree: bool,
}

/// One feasible configuration from a [`DesignQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignRow {
    /// Package pins the bus costs.
    pub pins: u64,
    /// Bus width in bytes.
    pub bus: f64,
    /// Whether write buffers are enabled.
    pub write_buffers: bool,
    /// Whether pipelined memory is enabled.
    pub pipelined: bool,
    /// Mean access time at this configuration.
    pub mean_access_time: f64,
}

/// Answer to a [`DesignQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignResponse {
    /// The query echoed back.
    pub query: DesignQuery,
    /// Feasible configurations, fewest pins first; empty when the
    /// target is unreachable.
    pub feasible: Vec<DesignRow>,
}

/// Answer to a [`SimulateQuery`]: the measured φ point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateResponse {
    /// The query echoed back (with defaults resolved).
    pub query: SimulateQuery,
    /// Total execution cycles.
    pub cycles: u64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Data-cache hit ratio.
    pub hit_ratio: f64,
    /// The measured stalling factor φ.
    pub phi: f64,
    /// The measured dirty-flush ratio α.
    pub alpha: f64,
}

/// One workload's best point on the simulated comparison grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SimGridRow {
    /// Workload name.
    pub program: String,
    /// Best hit ratio found on the grid.
    pub best_hit_ratio: f64,
    /// Capacity of the best geometry.
    pub cache_bytes: u64,
    /// Line size of the best geometry.
    pub line_bytes: u64,
    /// Associativity of the best geometry.
    pub assoc: u32,
}

/// One workload's cheapest target-reaching geometry on the dense grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGridRow {
    /// Workload name.
    pub program: String,
    /// The cheapest geometry reaching the target, when one exists.
    pub best: Option<DenseBest>,
}

/// Backend-specific grid rows.
#[derive(Debug, Clone, PartialEq)]
pub enum GridRows {
    /// Simulated comparison-grid bests.
    Sim(Vec<SimGridRow>),
    /// Dense-grid capacity planning.
    Dense(Vec<DenseGridRow>),
}

/// Answer to a [`GridQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridResponse {
    /// Backend that answered.
    pub backend: GridBackend,
    /// Trace length per workload.
    pub instructions: usize,
    /// Grid points answered (all workloads).
    pub points: usize,
    /// The analytic search target, when that backend ran.
    pub target: Option<f64>,
    /// Per-workload results.
    pub rows: GridRows,
}

/// Answer to the `experiments` query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentsResponse {
    /// Registered experiments, registry order.
    pub experiments: Vec<ExperimentInfo>,
}

/// One catalogue entry in a `workloads list` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// The built-in name.
    pub name: String,
    /// The spec's content hash (full hex).
    pub id: String,
}

/// Answer to a `workloads` query.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadsResponse {
    /// The built-in catalogue.
    List(Vec<WorkloadInfo>),
    /// One built-in spec in full.
    Show {
        /// The built-in name.
        name: String,
        /// The spec's content hash (full hex).
        id: String,
        /// The spec itself.
        spec: WorkloadSpec,
    },
    /// An inline spec checked out valid.
    Validated {
        /// The spec's content hash (full hex).
        id: String,
        /// The spec's human-facing label.
        label: String,
    },
}

/// One typed answer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Feature pricing.
    Price(PriceResponse),
    /// Crossover thresholds.
    Crossover(CrossoverResponse),
    /// Line-size selection.
    Linesize(LinesizeResponse),
    /// Design search.
    Design(DesignResponse),
    /// φ point.
    Simulate(SimulateResponse),
    /// Grid answers.
    Grid(GridResponse),
    /// Experiment listing.
    Experiments(ExperimentsResponse),
    /// Workload catalogue answers.
    Workloads(WorkloadsResponse),
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::num)
}

impl QueryResponse {
    /// The wire discriminator this response answers.
    pub fn kind(&self) -> &'static str {
        match self {
            QueryResponse::Price(_) => "price",
            QueryResponse::Crossover(_) => "crossover",
            QueryResponse::Linesize(_) => "linesize",
            QueryResponse::Design(_) => "design",
            QueryResponse::Simulate(_) => "simulate",
            QueryResponse::Grid(_) => "grid",
            QueryResponse::Experiments(_) => "experiments",
            QueryResponse::Workloads(_) => "workloads",
        }
    }

    /// The response's wire form: `{"ok":true,"query":…,"result":{…}}`.
    pub fn to_json(&self) -> Json {
        let result = match self {
            QueryResponse::Price(r) => Json::obj(vec![
                ("bus", Json::num(r.query.bus)),
                ("line", Json::num(r.query.line)),
                ("beta", Json::num(r.query.beta)),
                ("hr", Json::num(r.query.hr)),
                ("alpha", Json::num(r.query.alpha)),
                ("q", Json::num(r.query.q)),
                ("width", Json::num(r.query.width)),
                (
                    "features",
                    Json::Arr(
                        r.features
                            .iter()
                            .map(|f| {
                                Json::obj(vec![
                                    ("feature", Json::str(&f.feature)),
                                    ("delta_hr", Json::num(f.delta_hr)),
                                    ("equal_performance_hr", Json::num(f.equal_performance_hr)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "ranking",
                    Json::Arr(r.ranking.iter().map(Json::str).collect()),
                ),
            ]),
            QueryResponse::Crossover(r) => Json::obj(vec![
                ("chunks", Json::num(r.query.chunks)),
                ("q", Json::num(r.query.q)),
                ("alpha", Json::num(r.query.alpha)),
                ("vs_double_bus", opt_num(r.vs_double_bus)),
                ("vs_write_buffers", opt_num(r.vs_write_buffers)),
            ]),
            QueryResponse::Linesize(r) => Json::obj(vec![
                ("c", Json::num(r.query.c)),
                ("beta", Json::num(r.query.beta)),
                ("bus", Json::num(r.query.bus)),
                ("smith_line_bytes", Json::num(r.smith_line_bytes)),
                ("eq19_line_bytes", Json::num(r.eq19_line_bytes)),
                ("agree", Json::Bool(r.agree)),
            ]),
            QueryResponse::Design(r) => Json::obj(vec![
                ("hr", Json::num(r.query.hr)),
                ("target", Json::num(r.query.target)),
                (
                    "feasible",
                    Json::Arr(
                        r.feasible
                            .iter()
                            .map(|row| {
                                Json::obj(vec![
                                    ("pins", Json::num(row.pins as f64)),
                                    ("bus", Json::num(row.bus)),
                                    ("write_buffers", Json::Bool(row.write_buffers)),
                                    ("pipelined", Json::Bool(row.pipelined)),
                                    ("mean_access_time", Json::num(row.mean_access_time)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            QueryResponse::Simulate(r) => Json::obj(vec![
                match &r.query.workload {
                    WorkloadRef::Named(name) => ("program", Json::str(name)),
                    WorkloadRef::Inline(spec) => ("workload", spec.to_json()),
                },
                ("instructions", Json::num(r.query.instructions as f64)),
                ("stall", Json::str(&r.query.stall)),
                ("cache", Json::num(r.query.cache as f64)),
                ("line", Json::num(r.query.line as f64)),
                ("bus", Json::num(r.query.bus as f64)),
                ("beta", Json::num(r.query.beta as f64)),
                ("seed", Json::num(r.query.seed as f64)),
                ("cycles", Json::num(r.cycles as f64)),
                ("cpi", Json::num(r.cpi)),
                ("hit_ratio", Json::num(r.hit_ratio)),
                ("phi", Json::num(r.phi)),
                ("alpha", Json::num(r.alpha)),
            ]),
            QueryResponse::Grid(r) => {
                let rows = match &r.rows {
                    GridRows::Sim(rows) => Json::Arr(
                        rows.iter()
                            .map(|row| {
                                Json::obj(vec![
                                    ("program", Json::str(&row.program)),
                                    ("best_hit_ratio", Json::num(row.best_hit_ratio)),
                                    ("cache_bytes", Json::num(row.cache_bytes as f64)),
                                    ("line_bytes", Json::num(row.line_bytes as f64)),
                                    ("assoc", Json::num(row.assoc)),
                                ])
                            })
                            .collect(),
                    ),
                    GridRows::Dense(rows) => Json::Arr(
                        rows.iter()
                            .map(|row| {
                                let mut pairs = vec![("program", Json::str(&row.program))];
                                match &row.best {
                                    Some(b) => {
                                        pairs.push(("reachable", Json::Bool(true)));
                                        pairs
                                            .push(("cache_bytes", Json::num(b.cache_bytes as f64)));
                                        pairs.push(("sets", Json::num(b.sets as f64)));
                                        pairs.push(("line_bytes", Json::num(b.line_bytes as f64)));
                                        pairs.push(("assoc", Json::num(b.assoc)));
                                        pairs.push(("hit_ratio", Json::num(b.hit_ratio)));
                                    }
                                    None => pairs.push(("reachable", Json::Bool(false))),
                                }
                                Json::obj(pairs)
                            })
                            .collect(),
                    ),
                };
                let mut pairs = vec![
                    ("backend", Json::str(r.backend.name())),
                    ("instructions", Json::num(r.instructions as f64)),
                    ("points", Json::num(r.points as f64)),
                ];
                if let Some(target) = r.target {
                    pairs.push(("target", Json::num(target)));
                }
                pairs.push(("rows", rows));
                Json::obj(pairs)
            }
            QueryResponse::Experiments(r) => Json::obj(vec![(
                "experiments",
                Json::Arr(
                    r.experiments
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("id", Json::str(&e.id)),
                                ("title", Json::str(&e.title)),
                                ("tags", Json::Arr(e.tags.iter().map(Json::str).collect())),
                                (
                                    "traces",
                                    Json::Arr(e.traces.iter().map(Json::str).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            )]),
            QueryResponse::Workloads(r) => match r {
                WorkloadsResponse::List(infos) => Json::obj(vec![(
                    "workloads",
                    Json::Arr(
                        infos
                            .iter()
                            .map(|w| {
                                Json::obj(vec![
                                    ("name", Json::str(&w.name)),
                                    ("id", Json::str(&w.id)),
                                ])
                            })
                            .collect(),
                    ),
                )]),
                WorkloadsResponse::Show { name, id, spec } => Json::obj(vec![
                    ("name", Json::str(name)),
                    ("id", Json::str(id)),
                    ("spec", spec.to_json()),
                ]),
                WorkloadsResponse::Validated { id, label } => Json::obj(vec![
                    ("valid", Json::Bool(true)),
                    ("id", Json::str(id)),
                    ("label", Json::str(label)),
                ]),
            },
        };
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("query", Json::str(self.kind())),
            ("result", result),
        ])
    }

    /// The response's wire text (no trailing newline).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Parses a stalling-feature keyword (`fs`, `bl`, `bnl1..3`, `nb`).
///
/// # Errors
///
/// [`ApiErrorKind::BadRequest`] for unknown keywords.
pub fn parse_stall(name: &str) -> Result<StallFeature, ApiError> {
    Ok(match name {
        "fs" => StallFeature::FullStall,
        "bl" => StallFeature::BusLocked,
        "bnl1" => StallFeature::BusNotLocked1,
        "bnl2" => StallFeature::BusNotLocked2,
        "bnl3" => StallFeature::BusNotLocked3,
        "nb" => StallFeature::NonBlocking { mshrs: 4 },
        other => return bad(format!("unknown stalling feature {other:?}"))?,
    })
}

/// Parses a SPEC92 proxy name.
///
/// # Errors
///
/// [`ApiErrorKind::BadRequest`] for unknown programs.
pub fn parse_program(name: &str) -> Result<Spec92Program, ApiError> {
    Spec92Program::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| ApiError::bad_request(format!("unknown program {name:?}")))
}

/// Resolves a grid query's workload set: named built-ins plus inline
/// specs; both empty means all six built-in proxies.
fn resolve_workloads<'a>(
    names: &[String],
    inline: &'a [WorkloadSpec],
) -> Result<Vec<&'a WorkloadSpec>, ApiError> {
    if names.is_empty() && inline.is_empty() {
        return Ok(workload::builtins().iter().collect());
    }
    let mut specs: Vec<&'a WorkloadSpec> = Vec::with_capacity(names.len() + inline.len());
    for name in names {
        specs.push(
            workload::builtin(name)
                .ok_or_else(|| ApiError::bad_request(format!("unknown program {name:?}")))?,
        );
    }
    specs.extend(inline);
    Ok(specs)
}

/// Answers one typed query. This is the single evaluation path: the
/// CLI's subcommands and the server's `POST /query` both call it, so
/// their answers are byte-derived from the same computation.
///
/// # Errors
///
/// [`ApiErrorKind::BadRequest`] for out-of-range or inconsistent
/// parameters; [`ApiErrorKind::Internal`] when a backend rejects a
/// request it should have covered.
pub fn dispatch(req: &QueryRequest, env: &dyn Workloads) -> Result<QueryResponse, ApiError> {
    match req {
        QueryRequest::Price(q) => price(q),
        QueryRequest::Crossover(q) => crossover(q),
        QueryRequest::Linesize(q) => linesize(q),
        QueryRequest::Design(q) => design(q),
        QueryRequest::Simulate(q) => simulate(q, env),
        QueryRequest::Grid(q) => grid(q, env),
        QueryRequest::Experiments => Ok(QueryResponse::Experiments(ExperimentsResponse {
            experiments: env.experiments(),
        })),
        QueryRequest::Workloads(q) => workloads_query(q),
    }
}

fn workloads_query(q: &WorkloadsQuery) -> Result<QueryResponse, ApiError> {
    let resp = match q {
        WorkloadsQuery::List => WorkloadsResponse::List(
            workload::builtins()
                .iter()
                .map(|s| WorkloadInfo {
                    name: s.label(),
                    id: s.id().hex(),
                })
                .collect(),
        ),
        WorkloadsQuery::Show { name } => {
            let spec = workload::builtin(name)
                .ok_or_else(|| ApiError::bad_request(format!("unknown workload {name:?}")))?;
            WorkloadsResponse::Show {
                name: name.clone(),
                id: spec.id().hex(),
                spec: spec.clone(),
            }
        }
        WorkloadsQuery::Validate(spec) => WorkloadsResponse::Validated {
            id: spec.id().hex(),
            label: spec.label(),
        },
    };
    Ok(QueryResponse::Workloads(resp))
}

/// [`dispatch`] against the [`Uncached`] provider — convenient for
/// one-shot embedding and tests.
///
/// # Errors
///
/// As [`dispatch`].
pub fn dispatch_uncached(req: &QueryRequest) -> Result<QueryResponse, ApiError> {
    dispatch(req, &Uncached)
}

fn price(q: &PriceQuery) -> Result<QueryResponse, ApiError> {
    let hr = HitRatio::new(q.hr).map_err(|e| ApiError::bad_request(e.to_string()))?;
    let machine =
        Machine::new(q.bus, q.line, q.beta).map_err(|e| ApiError::bad_request(e.to_string()))?;
    let base = SystemConfig::full_stalling(q.alpha);
    let features = [
        ("doubling bus", base.with_bus_factor(2.0)),
        ("write buffers", base.with_write_buffers()),
        ("pipelined memory", base.with_pipelined_memory(q.q)),
    ];
    let mut rows = Vec::with_capacity(features.len());
    for (name, enh) in features {
        let dhr = crate::multiissue::traded_hit_ratio_w(&machine, &base, &enh, hr, q.width)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;
        rows.push(FeatureWorth {
            feature: name.to_string(),
            delta_hr: dhr,
            equal_performance_hr: (hr.value() - dhr).max(0.0),
        });
    }
    let mut ranked: Vec<&FeatureWorth> = rows.iter().collect();
    ranked.sort_by(|a, b| b.delta_hr.total_cmp(&a.delta_hr));
    let ranking = ranked.iter().map(|f| f.feature.clone()).collect();
    Ok(QueryResponse::Price(PriceResponse {
        query: q.clone(),
        features: rows,
        ranking,
    }))
}

fn crossover(q: &CrossoverQuery) -> Result<QueryResponse, ApiError> {
    if !(q.chunks.is_finite() && q.chunks > 0.0) {
        return bad("\"chunks\" must be positive");
    }
    Ok(QueryResponse::Crossover(CrossoverResponse {
        query: q.clone(),
        vs_double_bus: crate::crossover::pipelined_vs_double_bus(q.chunks, q.q),
        vs_write_buffers: crate::crossover::pipelined_vs_write_buffers(q.chunks, q.q, q.alpha),
    }))
}

fn linesize(q: &LinesizeQuery) -> Result<QueryResponse, ApiError> {
    let curve: Vec<LineCandidate> = q
        .curve
        .iter()
        .map(|&(line_bytes, hr)| {
            Ok(LineCandidate {
                line_bytes,
                hit_ratio: HitRatio::new(hr).map_err(|e| ApiError::bad_request(e.to_string()))?,
            })
        })
        .collect::<Result<_, ApiError>>()?;
    let timing = FillTiming::new(q.c, q.beta).map_err(|e| ApiError::bad_request(e.to_string()))?;
    let smith = optimal_line_smith(&timing, q.bus, &curve)
        .map_err(|e| ApiError::bad_request(e.to_string()))?;
    let ours = optimal_line_eq19(&timing, q.bus, &curve)
        .map_err(|e| ApiError::bad_request(e.to_string()))?;
    Ok(QueryResponse::Linesize(LinesizeResponse {
        query: q.clone(),
        smith_line_bytes: smith.line_bytes,
        eq19_line_bytes: ours.line_bytes,
        agree: smith.line_bytes == ours.line_bytes,
    }))
}

fn design(q: &DesignQuery) -> Result<QueryResponse, ApiError> {
    let hr = HitRatio::new(q.hr).map_err(|e| ApiError::bad_request(e.to_string()))?;
    let pins = PinModel::default();
    let mut feasible = Vec::new();
    for bus in [4.0, 8.0, 16.0] {
        if q.line < bus {
            continue;
        }
        let machine =
            Machine::new(bus, q.line, q.beta).map_err(|e| ApiError::bad_request(e.to_string()))?;
        for buffered in [false, true] {
            for piped in [false, true] {
                let mut sys = SystemConfig::full_stalling(q.alpha);
                if buffered {
                    sys = sys.with_write_buffers();
                }
                if piped {
                    sys = sys.with_pipelined_memory(2.0);
                }
                let t = mean_access_time(&machine, &sys, hr)
                    .map_err(|e| ApiError::bad_request(e.to_string()))?;
                if t <= q.target {
                    feasible.push(DesignRow {
                        pins: pins.pins(bus as u64),
                        bus,
                        write_buffers: buffered,
                        pipelined: piped,
                        mean_access_time: t,
                    });
                }
            }
        }
    }
    feasible.sort_by(|a, b| {
        a.pins
            .cmp(&b.pins)
            .then(a.mean_access_time.total_cmp(&b.mean_access_time))
    });
    Ok(QueryResponse::Design(DesignResponse {
        query: q.clone(),
        feasible,
    }))
}

fn simulate(q: &SimulateQuery, env: &dyn Workloads) -> Result<QueryResponse, ApiError> {
    let spec = q.workload.resolve()?;
    let stall = parse_stall(&q.stall)?;
    if q.instructions == 0 || q.instructions > MAX_INSTRUCTIONS {
        return bad(format!(
            "\"instructions\" must be in 1..={MAX_INSTRUCTIONS}"
        ));
    }
    let cache =
        CacheConfig::new(q.cache, q.line, 2).map_err(|e| ApiError::bad_request(e.to_string()))?;
    let bus = BusWidth::new(q.bus).map_err(|e| ApiError::bad_request(e.to_string()))?;
    let cfg = CpuConfig::baseline(cache, MemoryTiming::new(bus, q.beta)).with_stall(stall);
    cfg.validate().map_err(ApiError::bad_request)?;
    if !MissTimeline::supports_cache(&cache) {
        return bad("cache configuration does not admit timeline extraction");
    }
    let timeline = env.timeline(spec, q.seed, q.instructions, &cache);
    if !timeline.supports(&cfg) {
        return Err(ApiError::internal(
            "timeline replay rejected a baseline configuration",
        ));
    }
    let r = timeline.replay(&cfg);
    Ok(QueryResponse::Simulate(SimulateResponse {
        query: q.clone(),
        cycles: r.cycles,
        cpi: r.cpi(),
        hit_ratio: r.dcache.hit_ratio(),
        phi: r.phi(),
        alpha: r.alpha(),
    }))
}

fn grid(q: &GridQuery, env: &dyn Workloads) -> Result<QueryResponse, ApiError> {
    if q.instructions == 0 || q.instructions > MAX_INSTRUCTIONS {
        return bad(format!(
            "\"instructions\" must be in 1..={MAX_INSTRUCTIONS}"
        ));
    }
    let specs = resolve_workloads(&q.programs, &q.workloads)?;
    let warmup = q.instructions as u64 / 5;
    match q.backend {
        GridBackend::Sim => {
            let grid = GridSpec::comparison(warmup);
            let mut rows = Vec::with_capacity(specs.len());
            for &spec in &specs {
                let sim = env.simulated_grid(spec, &grid, q.instructions);
                let mut best: Option<(f64, u64, u64, u32)> = None;
                for &cache in &grid.cache_sizes {
                    for &line in &grid.line_sizes {
                        for &assoc in &grid.assocs {
                            let hr = sim
                                .hit_ratio(cache, line, assoc)
                                .map_err(|e| ApiError::internal(e.to_string()))?;
                            if best.is_none_or(|b| hr > b.0) {
                                best = Some((hr, cache, line, assoc));
                            }
                        }
                    }
                }
                let (hr, cache, line, assoc) = best.expect("comparison grid is nonempty");
                rows.push(SimGridRow {
                    program: spec.label(),
                    best_hit_ratio: hr,
                    cache_bytes: cache,
                    line_bytes: line,
                    assoc,
                });
            }
            Ok(QueryResponse::Grid(GridResponse {
                backend: GridBackend::Sim,
                instructions: q.instructions,
                points: grid.points() * specs.len(),
                target: None,
                rows: GridRows::Sim(rows),
            }))
        }
        GridBackend::Analytic => {
            if q.max_sets == 0 || q.max_sets > MAX_DENSE_SETS {
                return bad(format!("\"sets\" must be in 1..={MAX_DENSE_SETS}"));
            }
            if q.max_assoc == 0 || q.max_assoc > MAX_DENSE_ASSOC {
                return bad(format!("\"assoc\" must be in 1..={MAX_DENSE_ASSOC}"));
            }
            let dense = DenseGrid {
                line_sizes: vec![8, 16, 32, 64, 128],
                max_sets: q.max_sets,
                max_assoc: q.max_assoc,
            };
            let (min_line, max_line) = HIST_LINE_RANGE;
            let mut rows = Vec::with_capacity(specs.len());
            for &spec in &specs {
                let hists = env.histograms(
                    spec,
                    GRID_SEED,
                    q.instructions,
                    min_line,
                    max_line,
                    HIST_DISTANCE_CAP,
                    warmup,
                );
                let analytic = Analytic::from_histograms(&hists);
                rows.push(DenseGridRow {
                    program: spec.label(),
                    best: dense_best(&analytic, &dense, q.target),
                });
            }
            Ok(QueryResponse::Grid(GridResponse {
                backend: GridBackend::Analytic,
                instructions: q.instructions,
                points: dense.points() * specs.len(),
                target: Some(q.target),
                rows: GridRows::Dense(rows),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_requests_round_trip_and_dispatch() {
        let req = QueryRequest::from_json_str("{\"query\": \"price\", \"hr\": 0.95}").unwrap();
        assert_eq!(req.kind(), "price");
        let round = QueryRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(round, req);
        let resp = dispatch_uncached(&req).unwrap();
        let QueryResponse::Price(p) = &resp else {
            panic!("wrong response kind");
        };
        assert_eq!(p.features.len(), 3);
        assert_eq!(p.ranking.len(), 3);
        assert!(p.features.iter().all(|f| f.delta_hr.is_finite()));
        let wire = resp.to_json_string();
        assert!(
            wire.starts_with("{\"ok\":true,\"query\":\"price\""),
            "{wire}"
        );
    }

    #[test]
    fn unknown_keys_and_kinds_are_bad_requests() {
        for bad in [
            "{\"query\": \"price\", \"hr\": 0.9, \"frobnicate\": 1}",
            "{\"query\": \"teleport\"}",
            "{\"hr\": 0.9}",
            "[1,2]",
            "{\"query\": \"price\"", // malformed JSON
        ] {
            let err = QueryRequest::from_json_str(bad).unwrap_err();
            assert_eq!(err.kind, ApiErrorKind::BadRequest, "{bad}");
            assert_eq!(err.kind.exit_code(), 2);
            assert_eq!(err.kind.http_status(), 400);
        }
    }

    #[test]
    fn missing_required_fields_are_reported_by_name() {
        let err = QueryRequest::from_json_str("{\"query\": \"price\"}").unwrap_err();
        assert!(err.message.contains("hr"), "{err}");
        let err = QueryRequest::from_json_str("{\"query\": \"simulate\"}").unwrap_err();
        assert!(err.message.contains("program"), "{err}");
    }

    #[test]
    fn crossover_matches_the_closed_form() {
        let req = QueryRequest::Crossover(CrossoverQuery {
            chunks: 8.0,
            q: 2.0,
            alpha: 0.5,
        });
        let QueryResponse::Crossover(c) = dispatch_uncached(&req).unwrap() else {
            panic!("wrong kind");
        };
        let beta = c.vs_double_bus.expect("crossover exists at L/D=8");
        assert!((beta - 4.67).abs() < 0.01, "{beta}");
        let never = QueryRequest::Crossover(CrossoverQuery {
            chunks: 2.0,
            q: 2.0,
            alpha: 0.5,
        });
        let QueryResponse::Crossover(c) = dispatch_uncached(&never).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(c.vs_double_bus, None);
    }

    #[test]
    fn linesize_agrees_like_the_cli_did() {
        let req = QueryRequest::Linesize(LinesizeQuery {
            c: 7.0,
            beta: 1.0,
            bus: 4.0,
            curve: vec![
                (8.0, 0.90),
                (16.0, 0.94),
                (32.0, 0.962),
                (64.0, 0.97),
                (128.0, 0.972),
            ],
        });
        let QueryResponse::Linesize(r) = dispatch_uncached(&req).unwrap() else {
            panic!("wrong kind");
        };
        assert!(r.agree);
        assert_eq!(r.smith_line_bytes, r.eq19_line_bytes);
    }

    #[test]
    fn design_search_orders_by_pins() {
        let req = QueryRequest::Design(DesignQuery {
            hr: 0.95,
            target: 5.0,
            line: 32.0,
            beta: 8.0,
            alpha: 0.5,
        });
        let QueryResponse::Design(r) = dispatch_uncached(&req).unwrap() else {
            panic!("wrong kind");
        };
        assert!(!r.feasible.is_empty());
        assert!(r.feasible.windows(2).all(|w| w[0].pins <= w[1].pins));
        let hopeless = QueryRequest::Design(DesignQuery {
            hr: 0.5,
            target: 1.1,
            line: 32.0,
            beta: 8.0,
            alpha: 0.5,
        });
        let QueryResponse::Design(r) = dispatch_uncached(&hopeless).unwrap() else {
            panic!("wrong kind");
        };
        assert!(r.feasible.is_empty());
    }

    #[test]
    fn simulate_replays_a_phi_point() {
        let req = QueryRequest::Simulate(SimulateQuery {
            workload: WorkloadRef::Named("ear".to_string()),
            instructions: 5_000,
            stall: "bnl3".to_string(),
            ..SimulateQuery::default()
        });
        let QueryResponse::Simulate(r) = dispatch_uncached(&req).unwrap() else {
            panic!("wrong kind");
        };
        assert!(r.cycles > 5_000);
        assert!(r.cpi > 1.0);
        assert!((0.0..=1.0).contains(&r.hit_ratio));
        assert!(r.phi > 0.0);
        // Unknown program / stall are caller faults.
        let bad = QueryRequest::Simulate(SimulateQuery {
            workload: WorkloadRef::Named("quake".to_string()),
            ..SimulateQuery::default()
        });
        assert_eq!(
            dispatch_uncached(&bad).unwrap_err().kind,
            ApiErrorKind::BadRequest
        );
    }

    #[test]
    fn grid_answers_both_backends() {
        let sim = QueryRequest::Grid(GridQuery {
            backend: GridBackend::Sim,
            instructions: 4_000,
            programs: vec!["ear".to_string()],
            ..GridQuery::default()
        });
        let QueryResponse::Grid(g) = dispatch_uncached(&sim).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(g.points, 105);
        let GridRows::Sim(rows) = &g.rows else {
            panic!("wrong rows");
        };
        assert_eq!(rows.len(), 1);
        assert!((0.0..=1.0).contains(&rows[0].best_hit_ratio));

        let ana = QueryRequest::Grid(GridQuery {
            backend: GridBackend::Analytic,
            instructions: 4_000,
            target: 0.5,
            max_sets: 32,
            max_assoc: 4,
            programs: vec!["ear".to_string()],
            workloads: Vec::new(),
        });
        let QueryResponse::Grid(g) = dispatch_uncached(&ana).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(g.points, 5 * 32 * 4);
        let GridRows::Dense(rows) = &g.rows else {
            panic!("wrong rows");
        };
        let best = rows[0].best.expect("ear reaches 0.5");
        assert_eq!(
            best.cache_bytes,
            best.sets * best.line_bytes * u64::from(best.assoc)
        );
    }

    #[test]
    fn grid_bounds_are_enforced() {
        let huge = QueryRequest::Grid(GridQuery {
            max_sets: MAX_DENSE_SETS + 1,
            ..GridQuery::default()
        });
        assert_eq!(
            dispatch_uncached(&huge).unwrap_err().kind,
            ApiErrorKind::BadRequest
        );
        let zero = QueryRequest::Grid(GridQuery {
            instructions: 0,
            ..GridQuery::default()
        });
        assert_eq!(
            dispatch_uncached(&zero).unwrap_err().kind,
            ApiErrorKind::BadRequest
        );
        let unknown = QueryRequest::Grid(GridQuery {
            programs: vec!["quake".to_string()],
            ..GridQuery::default()
        });
        assert_eq!(
            dispatch_uncached(&unknown).unwrap_err().kind,
            ApiErrorKind::BadRequest
        );
    }

    #[test]
    fn experiments_listing_is_empty_uncached() {
        let QueryResponse::Experiments(r) = dispatch_uncached(&QueryRequest::Experiments).unwrap()
        else {
            panic!("wrong kind");
        };
        assert!(r.experiments.is_empty());
    }

    #[test]
    fn every_request_shape_round_trips_through_json() {
        let reqs = vec![
            QueryRequest::Price(PriceQuery::default()),
            QueryRequest::Crossover(CrossoverQuery {
                chunks: 8.0,
                q: 2.0,
                alpha: 0.5,
            }),
            QueryRequest::Linesize(LinesizeQuery {
                c: 7.0,
                beta: 1.0,
                bus: 4.0,
                curve: vec![(8.0, 0.9), (16.0, 0.95)],
            }),
            QueryRequest::Design(DesignQuery {
                hr: 0.95,
                target: 3.5,
                line: 32.0,
                beta: 8.0,
                alpha: 0.5,
            }),
            QueryRequest::Simulate(SimulateQuery {
                workload: WorkloadRef::Named("ear".to_string()),
                ..SimulateQuery::default()
            }),
            QueryRequest::Simulate(SimulateQuery {
                workload: WorkloadRef::Inline(workload::builtin("ear").unwrap().clone()),
                ..SimulateQuery::default()
            }),
            QueryRequest::Grid(GridQuery::default()),
            QueryRequest::Grid(GridQuery {
                workloads: vec![workload::builtin("doduc").unwrap().clone()],
                ..GridQuery::default()
            }),
            QueryRequest::Experiments,
            QueryRequest::Workloads(WorkloadsQuery::List),
            QueryRequest::Workloads(WorkloadsQuery::Show {
                name: "ear".to_string(),
            }),
            QueryRequest::Workloads(WorkloadsQuery::Validate(
                workload::builtin("wave5").unwrap().clone(),
            )),
        ];
        for req in reqs {
            let wire = req.to_json().render();
            let back = QueryRequest::from_json_str(&wire).unwrap();
            assert_eq!(back, req, "round-trip of {wire}");
        }
    }

    #[test]
    fn error_wire_form_is_stable() {
        let err = ApiError::bad_request("nope");
        assert_eq!(
            err.to_json().render(),
            "{\"ok\":false,\"error\":{\"kind\":\"bad-request\",\"message\":\"nope\"}}"
        );
        assert_eq!(ApiErrorKind::Internal.http_status(), 500);
        assert_eq!(ApiErrorKind::Internal.exit_code(), 1);
    }

    #[test]
    fn dense_best_matches_field_arithmetic() {
        let env = Uncached;
        let hists = env.histograms(
            workload::builtin_spec(Spec92Program::Ear),
            GRID_SEED,
            6_000,
            8,
            128,
            HIST_DISTANCE_CAP,
            1_000,
        );
        let analytic = Analytic::from_histograms(&hists);
        let grid = DenseGrid::small();
        let best = dense_best(&analytic, &grid, 0.5).expect("ear reaches 50%");
        assert!(best.hit_ratio >= 0.5);
        assert_eq!(
            best.cache_bytes,
            best.sets * best.line_bytes * u64::from(best.assoc)
        );
        assert!(dense_best(&analytic, &grid, 1.1).is_none());
    }

    #[test]
    fn comparison_spec_matches_the_bench_grid() {
        let spec = GridSpec::comparison(0);
        assert_eq!(spec.points(), 7 * 5 * 3);
        assert_eq!(spec.min_sets(128), 2);
        assert_eq!(spec.max_sets(8), 8192);
        assert_eq!(DenseGrid::standard().points(), 166_720);
    }
}
