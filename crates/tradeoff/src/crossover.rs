//! Crossover analysis: where a pipelined memory overtakes the other
//! features (Section 5.3).
//!
//! Two enhancements deliver identical tradeoffs at memory cycle `β_m`
//! exactly when their delays per missed line match; because both are
//! compared against the same baseline, `ΔHR_a(β) = ΔHR_b(β)` iff
//! `G_a(β) = G_b(β)`. Closed forms exist for the paper's cases and a
//! bisection fallback covers arbitrary pairs.

use crate::error::TradeoffError;
use crate::params::Machine;
use crate::system::SystemConfig;

/// Closed form: the memory cycle time beyond which a pipelined memory
/// (issue interval `q`) beats doubling the bus, for `chunks = L/D` and a
/// shared flush ratio.
///
/// Solving `(1 + α)(β + q(X − 1)) = (X/2)(1 + α)β` gives
/// `β* = q(X − 1)/(X/2 − 1)`.
///
/// Returns `None` when `X ≤ 2` — the regimes where pipelining never wins
/// (Figure 3's observation for `L/D = 2`).
pub fn pipelined_vs_double_bus(chunks: f64, q: f64) -> Option<f64> {
    if chunks <= 2.0 || q <= 0.0 {
        return None;
    }
    Some(q * (chunks - 1.0) / (chunks / 2.0 - 1.0))
}

/// Closed form: the memory cycle beyond which a pipelined memory beats
/// read-bypassing write buffers.
///
/// Solving `(1 + α)(β + q(X − 1)) = X·β` gives
/// `β* = (1 + α)·q·(X − 1)/(X − 1 − α)`.
///
/// Returns `None` when `X ≤ 1 + α` (no crossover).
pub fn pipelined_vs_write_buffers(chunks: f64, q: f64, alpha: f64) -> Option<f64> {
    let denom = chunks - 1.0 - alpha;
    if denom <= 0.0 || q <= 0.0 {
        return None;
    }
    Some((1.0 + alpha) * q * (chunks - 1.0) / denom)
}

/// Numerically locates the `β_m` in `[lo, hi]` where the two systems'
/// delays per missed line cross, by bisection on `G_a − G_b`.
///
/// Returns `Ok(None)` when the difference does not change sign over the
/// interval.
///
/// # Errors
///
/// Propagates system-validation errors, and rejects a non-positive or
/// reversed interval.
pub fn find_crossover(
    machine: &Machine,
    a: &SystemConfig,
    b: &SystemConfig,
    lo: f64,
    hi: f64,
) -> Result<Option<f64>, TradeoffError> {
    if !(lo > 0.0 && hi > lo) {
        return Err(TradeoffError::NotPositive {
            what: "crossover interval",
            value: hi - lo,
        });
    }
    let diff = |beta: f64| -> Result<f64, TradeoffError> {
        let m = machine.with_beta_m(beta)?;
        Ok(a.delay_per_missed_line(&m)? - b.delay_per_missed_line(&m)?)
    };
    let mut flo = diff(lo)?;
    let fhi = diff(hi)?;
    if flo == 0.0 {
        return Ok(Some(lo));
    }
    if fhi == 0.0 {
        return Ok(Some(hi));
    }
    if flo.signum() == fhi.signum() {
        return Ok(None);
    }
    let (mut a_, mut b_) = (lo, hi);
    for _ in 0..200 {
        let mid = 0.5 * (a_ + b_);
        let fm = diff(mid)?;
        if fm == 0.0 || (b_ - a_) < 1e-12 {
            return Ok(Some(mid));
        }
        if fm.signum() == flo.signum() {
            a_ = mid;
            flo = fm;
        } else {
            b_ = mid;
        }
    }
    Ok(Some(0.5 * (a_ + b_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_paper_range() {
        // L/D = 8, q = 2: β* = 2·7/3 ≈ 4.67 — "less than about five or
        // six clock cycles".
        let beta = pipelined_vs_double_bus(8.0, 2.0).unwrap();
        assert!((beta - 14.0 / 3.0).abs() < 1e-12);
        assert!(beta > 4.0 && beta < 6.0);
    }

    #[test]
    fn no_crossover_for_l_2d() {
        assert_eq!(pipelined_vs_double_bus(2.0, 2.0), None);
        assert_eq!(pipelined_vs_double_bus(1.0, 2.0), None);
    }

    #[test]
    fn write_buffer_crossover() {
        // X = 8, q = 2, α = 0.5: β* = 1.5·2·7/6.5 ≈ 3.23.
        let beta = pipelined_vs_write_buffers(8.0, 2.0, 0.5).unwrap();
        assert!((beta - 1.5 * 2.0 * 7.0 / 6.5).abs() < 1e-12);
        // Write buffers always win when X ≤ 1 + α.
        assert_eq!(pipelined_vs_write_buffers(1.0, 2.0, 0.5), None);
    }

    #[test]
    fn bisection_agrees_with_closed_form() {
        let machine = Machine::new(4.0, 32.0, 8.0).unwrap(); // chunks = 8
        let base = SystemConfig::full_stalling(0.5);
        let piped = base.with_pipelined_memory(2.0);
        let bus = base.with_bus_factor(2.0);
        let numeric = find_crossover(&machine, &piped, &bus, 2.0, 50.0)
            .unwrap()
            .unwrap();
        let closed = pipelined_vs_double_bus(8.0, 2.0).unwrap();
        assert!(
            (numeric - closed).abs() < 1e-6,
            "numeric {numeric} vs closed {closed}"
        );
    }

    #[test]
    fn bisection_reports_no_sign_change() {
        // L/D = 2: pipelining never crosses bus doubling.
        let machine = Machine::new(4.0, 8.0, 8.0).unwrap();
        let base = SystemConfig::full_stalling(0.5);
        let piped = base.with_pipelined_memory(2.0);
        let bus = base.with_bus_factor(2.0);
        assert_eq!(
            find_crossover(&machine, &piped, &bus, 2.0, 500.0).unwrap(),
            None
        );
    }

    #[test]
    fn bisection_validates_interval() {
        let machine = Machine::new(4.0, 32.0, 8.0).unwrap();
        let s = SystemConfig::full_stalling(0.5);
        assert!(find_crossover(&machine, &s, &s, 5.0, 2.0).is_err());
    }

    #[test]
    fn crossover_scales_linearly_with_q() {
        let b1 = pipelined_vs_double_bus(8.0, 1.0).unwrap();
        let b4 = pipelined_vs_double_bus(8.0, 4.0).unwrap();
        assert!((b4 - 4.0 * b1).abs() < 1e-12);
    }
}
