//! Multiple-instruction-issue extension (the paper's Section 6 future
//! work).
//!
//! With an issue width `w > 1` the non-stalling instructions retire `w`
//! per cycle, so Eq. 2 becomes
//!
//! ```text
//! X_w = (E − Λm − W)/w + Λm·G + W·β_m
//! ```
//!
//! and the equivalence algebra changes in exactly one place: the cycle a
//! hit "costs" drops from 1 to `1/w`, so the miss-traffic ratio becomes
//!
//! ```text
//! r_w = (G_base − 1/w) / (G_enh − 1/w)
//! ```
//!
//! Consequences the module exposes (and the tests pin down):
//!
//! * `w = 1` reproduces the paper's Eq. 3/6 exactly;
//! * on a wider machine every feature trades slightly **less** hit
//!   ratio: memory delay dominates execution time, so hit ratio becomes
//!   more precious — the same mechanism as the falling curves of
//!   Figure 2 when `β_m` grows;
//! * as `w → ∞`, `r → G_base/G_enh` — the pure memory-delay ratio — so
//!   the paper's single-issue numbers are an *upper bound* on what a
//!   feature can buy.

use crate::error::TradeoffError;
use crate::params::{HitRatio, Machine};
use crate::system::SystemConfig;

fn check_width(issue_width: u32) -> Result<f64, TradeoffError> {
    if issue_width == 0 {
        return Err(TradeoffError::NotPositive {
            what: "issue width",
            value: 0.0,
        });
    }
    Ok(f64::from(issue_width))
}

/// The per-miss delay net of the `1/w` cycles a hit would have cost.
///
/// # Errors
///
/// Returns [`TradeoffError::NonPhysicalDelay`] when `G ≤ 1/w` and
/// propagates system-validation errors.
pub fn excess_delay_w(
    machine: &Machine,
    system: &SystemConfig,
    issue_width: u32,
) -> Result<f64, TradeoffError> {
    let w = check_width(issue_width)?;
    let g = system.delay_per_missed_line(machine)?;
    if g <= 1.0 / w {
        return Err(TradeoffError::NonPhysicalDelay { delay: g });
    }
    Ok(g - 1.0 / w)
}

/// Eq. 3 generalised to issue width `w`:
/// `r_w = (G_b − 1/w)/(G_e − 1/w)`.
///
/// # Errors
///
/// Propagates [`excess_delay_w`] errors from either side.
pub fn miss_traffic_ratio_w(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    issue_width: u32,
) -> Result<f64, TradeoffError> {
    Ok(excess_delay_w(machine, base, issue_width)?
        / excess_delay_w(machine, enhanced, issue_width)?)
}

/// Eq. 6 generalised: the hit ratio the enhancement releases at issue
/// width `w`.
///
/// # Errors
///
/// Propagates [`miss_traffic_ratio_w`] errors.
pub fn traded_hit_ratio_w(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    base_hr: HitRatio,
    issue_width: u32,
) -> Result<f64, TradeoffError> {
    let r = miss_traffic_ratio_w(machine, base, enhanced, issue_width)?;
    Ok((r - 1.0) * base_hr.miss_ratio())
}

/// Execution time under issue width `w`:
/// `X_w = (E − Λm − W)/w + Λm·G + W·β_m`.
///
/// # Errors
///
/// Propagates system-validation errors.
pub fn execution_time_w(
    app: &crate::exec::AppSignature,
    machine: &Machine,
    system: &SystemConfig,
    issue_width: u32,
) -> Result<f64, TradeoffError> {
    let w = check_width(issue_width)?;
    let fills = app.read_bytes / machine.line_bytes();
    let misses = fills + app.write_arounds;
    let g = system.delay_per_missed_line(machine)?;
    Ok((app.instructions - misses) / w + fills * g + app.write_arounds * machine.beta_m())
}

/// The limiting miss-traffic ratio as `w → ∞`: `G_base / G_enh`.
///
/// # Errors
///
/// Propagates system-validation errors; the enhanced delay must be
/// positive.
pub fn miss_traffic_ratio_limit(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
) -> Result<f64, TradeoffError> {
    let gb = base.delay_per_missed_line(machine)?;
    let ge = enhanced.delay_per_missed_line(machine)?;
    if ge <= 0.0 {
        return Err(TradeoffError::NonPhysicalDelay { delay: ge });
    }
    Ok(gb / ge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{miss_traffic_ratio, traded_hit_ratio};
    use crate::exec::AppSignature;

    fn machine() -> Machine {
        Machine::new(4.0, 32.0, 8.0).unwrap()
    }

    fn base() -> SystemConfig {
        SystemConfig::full_stalling(0.5)
    }

    #[test]
    fn width_one_reduces_to_paper_model() {
        let m = machine();
        let enh = base().with_bus_factor(2.0);
        let r1 = miss_traffic_ratio(&m, &base(), &enh).unwrap();
        let rw = miss_traffic_ratio_w(&m, &base(), &enh, 1).unwrap();
        assert!((r1 - rw).abs() < 1e-12);
        let hr = HitRatio::new(0.95).unwrap();
        let d1 = traded_hit_ratio(&m, &base(), &enh, hr).unwrap();
        let dw = traded_hit_ratio_w(&m, &base(), &enh, hr, 1).unwrap();
        assert!((d1 - dw).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_gets_more_precious_with_issue_width() {
        // ΔHR decreases monotonically in w and stays above the w → ∞
        // limit — the multi-issue analogue of Figure 2's falling curves.
        let m = machine();
        let hr = HitRatio::new(0.95).unwrap();
        for enh in [base().with_bus_factor(2.0), base().with_write_buffers()] {
            let limit =
                (miss_traffic_ratio_limit(&m, &base(), &enh).unwrap() - 1.0) * hr.miss_ratio();
            let mut prev = f64::INFINITY;
            for w in [1u32, 2, 4, 8, 16] {
                let dhr = traded_hit_ratio_w(&m, &base(), &enh, hr, w).unwrap();
                assert!(dhr < prev, "w={w}: ΔHR {dhr} ≥ {prev}");
                assert!(dhr > limit - 1e-12, "w={w}: ΔHR {dhr} below limit {limit}");
                prev = dhr;
            }
        }
    }

    #[test]
    fn converges_to_pure_delay_ratio() {
        let m = machine();
        let enh = base().with_bus_factor(2.0);
        let limit = miss_traffic_ratio_limit(&m, &base(), &enh).unwrap();
        assert!((limit - 2.0).abs() < 1e-12, "G ratio halves exactly");
        let big_w = miss_traffic_ratio_w(&m, &base(), &enh, 1_000_000).unwrap();
        assert!((big_w - limit).abs() < 1e-4);
    }

    #[test]
    fn execution_time_w_consistent_with_eq2() {
        let app = AppSignature::new(100_000.0, 32_000.0, 0.0).unwrap();
        let m = machine();
        let x1 = crate::exec::execution_time(&app, &m, &base()).unwrap();
        let xw1 = execution_time_w(&app, &m, &base(), 1).unwrap();
        assert!((x1 - xw1).abs() < 1e-9);
        let xw4 = execution_time_w(&app, &m, &base(), 4).unwrap();
        assert!(xw4 < xw1);
        // The stall portion is width-independent.
        let fills = 1000.0;
        let g = base().delay_per_missed_line(&m).unwrap();
        assert!((xw4 - ((100_000.0 - fills) / 4.0 + fills * g)).abs() < 1e-9);
    }

    #[test]
    fn zero_width_rejected() {
        let m = machine();
        assert!(matches!(
            miss_traffic_ratio_w(&m, &base(), &base().with_bus_factor(2.0), 0),
            Err(TradeoffError::NotPositive { .. })
        ));
        let app = AppSignature::new(10.0, 0.0, 0.0).unwrap();
        assert!(execution_time_w(&app, &m, &base(), 0).is_err());
    }

    #[test]
    fn ranking_is_width_stable_but_magnitudes_grow() {
        // The *ordering* bus > write buffers survives widening; only the
        // magnitudes change.
        let m = machine();
        let hr = HitRatio::new(0.95).unwrap();
        for w in [1u32, 4, 16] {
            let bus = traded_hit_ratio_w(&m, &base(), &base().with_bus_factor(2.0), hr, w).unwrap();
            let wb = traded_hit_ratio_w(&m, &base(), &base().with_write_buffers(), hr, w).unwrap();
            assert!(bus > wb, "w={w}");
        }
    }
}
