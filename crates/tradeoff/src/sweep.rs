//! Parameter-sweep helpers for building figure series.
//!
//! The experiment harness plots `ΔHR` against memory cycle time, base
//! hit ratio, flush ratio and line size; these helpers produce those
//! series from the equivalence law so every figure shares one code path.

use crate::equiv::traded_hit_ratio;
use crate::error::TradeoffError;
use crate::params::{HitRatio, Machine};
use crate::system::SystemConfig;

/// `(x, ΔHR)` series of the hit ratio traded by `enhanced` over `base`
/// as the memory cycle time sweeps over `betas`.
///
/// # Errors
///
/// Propagates model-validation errors at any point of the sweep.
pub fn beta_sweep(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    hr: HitRatio,
    betas: &[f64],
) -> Result<Vec<(f64, f64)>, TradeoffError> {
    betas
        .iter()
        .map(|&beta| {
            let m = machine.with_beta_m(beta)?;
            Ok((beta, traded_hit_ratio(&m, base, enhanced, hr)?))
        })
        .collect()
}

/// `(HR, ΔHR)` series as the base hit ratio sweeps over `hrs`.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn hit_ratio_sweep(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    hrs: &[f64],
) -> Result<Vec<(f64, f64)>, TradeoffError> {
    hrs.iter()
        .map(|&h| {
            let hr = HitRatio::new(h)?;
            Ok((h, traded_hit_ratio(machine, base, enhanced, hr)?))
        })
        .collect()
}

/// `(L, ΔHR)` series as the line size sweeps over `lines`.
///
/// # Errors
///
/// Propagates model-validation errors (e.g. a line narrower than the
/// effective bus).
pub fn line_sweep(
    machine: &Machine,
    base: &SystemConfig,
    enhanced: &SystemConfig,
    hr: HitRatio,
    lines: &[f64],
) -> Result<Vec<(f64, f64)>, TradeoffError> {
    lines
        .iter()
        .map(|&l| {
            let m = machine.with_line_bytes(l)?;
            Ok((l, traded_hit_ratio(&m, base, enhanced, hr)?))
        })
        .collect()
}

/// The standard enhancement grid over a baseline: every combination of
/// doubled bus, write buffers and pipelined memory (excluding the
/// baseline itself), labelled for reports.
pub fn enhancement_grid(base: &SystemConfig, q: f64) -> Vec<(String, SystemConfig)> {
    let mut out = Vec::new();
    for bus in [false, true] {
        for wb in [false, true] {
            for pipe in [false, true] {
                if !(bus || wb || pipe) {
                    continue;
                }
                let mut sys = *base;
                let mut parts = Vec::new();
                if bus {
                    sys = sys.with_bus_factor(2.0);
                    parts.push("2×bus");
                }
                if wb {
                    sys = sys.with_write_buffers();
                    parts.push("WB");
                }
                if pipe {
                    sys = sys.with_pipelined_memory(q);
                    parts.push("pipelined");
                }
                out.push((parts.join("+"), sys));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(4.0, 32.0, 8.0).unwrap()
    }

    fn base() -> SystemConfig {
        SystemConfig::full_stalling(0.5)
    }

    #[test]
    fn beta_sweep_is_monotone_for_bus_doubling() {
        let series = beta_sweep(
            &machine(),
            &base(),
            &base().with_bus_factor(2.0),
            HitRatio::new(0.95).unwrap(),
            &[2.0, 4.0, 8.0, 16.0, 32.0],
        )
        .unwrap();
        assert_eq!(series.len(), 5);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn hit_ratio_sweep_scales_with_miss_ratio() {
        let series = hit_ratio_sweep(
            &machine(),
            &base(),
            &base().with_bus_factor(2.0),
            &[0.80, 0.90, 0.95],
        )
        .unwrap();
        // ΔHR = (r−1)(1−HR): halving the miss ratio halves the trade.
        assert!((series[0].1 / series[1].1 - 2.0).abs() < 1e-9);
        assert!((series[1].1 / series[2].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn line_sweep_shrinks_with_line_size() {
        let series = line_sweep(
            &machine(),
            &base(),
            &base().with_bus_factor(2.0),
            HitRatio::new(0.98).unwrap(),
            &[8.0, 16.0, 32.0, 64.0],
        )
        .unwrap();
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1, "larger lines trade less");
        }
    }

    #[test]
    fn line_sweep_rejects_line_narrower_than_doubled_bus() {
        let err = line_sweep(
            &machine(),
            &base(),
            &base().with_bus_factor(2.0),
            HitRatio::new(0.95).unwrap(),
            &[4.0],
        );
        assert!(err.is_err(), "L=4 with an 8-byte effective bus is invalid");
    }

    #[test]
    fn enhancement_grid_has_seven_combinations() {
        let grid = enhancement_grid(&base(), 2.0);
        assert_eq!(grid.len(), 7);
        let labels: Vec<&str> = grid.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"2×bus"));
        assert!(labels.contains(&"2×bus+WB+pipelined"));
        // All combinations distinct.
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }

    #[test]
    fn combined_features_trade_more_than_parts() {
        let hr = HitRatio::new(0.95).unwrap();
        let m = machine();
        let combo = base().with_bus_factor(2.0).with_write_buffers();
        let both = traded_hit_ratio(&m, &base(), &combo, hr).unwrap();
        let bus_only = traded_hit_ratio(&m, &base(), &base().with_bus_factor(2.0), hr).unwrap();
        let wb_only = traded_hit_ratio(&m, &base(), &base().with_write_buffers(), hr).unwrap();
        assert!(both > bus_only && both > wb_only);
    }
}
