//! The unified architectural tradeoff methodology of Chen & Somani
//! (ISCA 1994).
//!
//! Every architectural feature that shortens mean memory delay — a wider
//! external data bus, a partially-stalling cache, read-bypassing write
//! buffers, a pipelined memory system, a different line size — is priced
//! in a single currency: **cache hit ratio**. Two systems running the same
//! application perform identically exactly when their mean memory delay
//! per reference is equal (Section 4.5), which reduces every comparison to
//! one number per system: the *delay per missed line*
//!
//! ```text
//! G = φ·β_m + α·(L/D)·β_m        (G = (1 + α)·β_p   when pipelined)
//! ```
//!
//! and one law: for equal performance the miss-traffic ratio between the
//! baseline and the enhanced system is `r = (G_base − 1) / (G_enh − 1)`
//! (Eq. 3), and the hit ratio the enhancement buys is
//! `ΔHR = (r − 1)(1 − HR)` (Eq. 6).
//!
//! # Quick start
//!
//! ```
//! use tradeoff::{HitRatio, Machine, SystemConfig};
//!
//! // 32-byte lines on a 4-byte bus, memory cycle 8 CPU clocks.
//! let machine = Machine::new(4.0, 32.0, 8.0)?;
//! let base = SystemConfig::full_stalling(0.5);     // α = 0.5
//! let doubled = base.with_bus_factor(2.0);
//!
//! // How much hit ratio does doubling the bus buy at HR = 95 %?
//! let dhr = tradeoff::equiv::traded_hit_ratio(&machine, &base, &doubled, HitRatio::new(0.95)?)?;
//! assert!(dhr > 0.04 && dhr < 0.08); // roughly 5–7.5 % — Figure 3's "doubling bus" curve
//! # Ok::<(), tradeoff::TradeoffError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cost;
pub mod crossover;
pub mod equiv;
pub mod error;
pub mod exec;
pub mod linesize;
pub mod multiissue;
pub mod params;
pub mod ranking;
pub mod sensitivity;
pub mod stall;
pub mod sweep;
pub mod system;

pub use error::TradeoffError;
pub use exec::{execution_time, mean_access_time, AppSignature};
pub use params::{FlushRatio, HitRatio, Machine};
pub use system::{StallSpec, SystemConfig};
