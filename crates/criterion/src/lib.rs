//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! implements the benchmark-harness subset the workspace uses:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with element throughput, and `Bencher::iter` /
//! `iter_batched`. Timing is adaptive wall-clock sampling (no
//! statistics beyond the mean, no HTML reports); results print as
//! `name  time: <t>/iter  thrpt: <n> elem/s`.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export-compatible opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much work `iter_batched` amortises per setup call. The stub
/// times every routine call individually, so the variants only bound
/// iteration counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations are fine.
    SmallInput,
    /// Large inputs: cap iterations to keep memory bounded.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Collects one benchmark's timing.
pub struct Bencher {
    /// Mean seconds per iteration, filled by `iter`/`iter_batched`.
    mean_secs: f64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            mean_secs: 0.0,
            target,
        }
    }

    /// Times `f` in an adaptive loop until the sampling target is met.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= self.target || n >= 1 << 28 {
                self.mean_secs = dt.as_secs_f64() / n as f64;
                return;
            }
            let scale = if dt.is_zero() {
                100.0
            } else {
                (self.target.as_secs_f64() / dt.as_secs_f64()).clamp(2.0, 100.0)
            };
            n = ((n as f64 * scale) as u64).max(n + 1);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while (total < self.target || iters < 3) && iters < 100_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean_secs = total.as_secs_f64() / iters as f64;
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, mean_secs: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<50} time: {:>12}/iter", format_time(mean_secs));
    if let Some(tp) = throughput {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if mean_secs > 0.0 {
            let rate = units as f64 / mean_secs;
            line.push_str(&format!("  thrpt: {:>10.3e} {label}/s", rate));
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_TARGET_MS trades precision for wall-clock time.
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Criterion {
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.target);
        f(&mut b);
        report(&id, b.mean_secs, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.criterion.target);
        f(&mut b);
        report(&id, b.mean_secs, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo bench forwards (--bench, ...).
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_secs > 0.0);
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(b.mean_secs > 0.0);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion {
            target: Duration::from_millis(1),
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_function("a", |b| {
                b.iter(|| 1 + 1);
            });
            g.finish();
            ran += 1;
        }
        c.bench_function("plain", |b| b.iter(|| 2 * 2));
        ran += 1;
        assert_eq!(ran, 2);
    }
}
