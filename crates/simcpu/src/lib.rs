//! Trace-driven in-order CPU timing simulator.
//!
//! Implements the paper's processor model (Section 3): a pipelined RISC
//! core retiring one instruction per cycle except when the memory
//! hierarchy stalls it. The simulator's job is to *measure* the three
//! quantities the analytic tradeoff model consumes:
//!
//! * the data-cache hit ratio `HR`,
//! * the flush ratio `α` (dirty writebacks per fill),
//! * the stalling factor `φ` of the configured stalling feature
//!   (Table 2 / Eq. 8) — full-stalling (FS), bus-locked (BL), the three
//!   bus-not-locked variants (BNL1/2/3) and non-blocking (NB).
//!
//! It also validates the methodology end to end: plugging the measured
//! `{HR, α, φ}` back into Eq. 2 must reproduce the simulated cycle count
//! (see [`validate`]).
//!
//! # Example
//!
//! ```
//! use simcache::CacheConfig;
//! use simcpu::{Cpu, CpuConfig, StallFeature};
//! use simmem::{BusWidth, MemoryTiming};
//! use simtrace::spec92::{spec92_trace, Spec92Program};
//!
//! let cfg = CpuConfig::baseline(
//!     CacheConfig::new(8 * 1024, 32, 2)?,
//!     MemoryTiming::new(BusWidth::new(4).map_err(|e| e.to_string())?, 8),
//! )
//! .with_stall(StallFeature::FullStall);
//! let result = Cpu::new(cfg).run(spec92_trace(Spec92Program::Ear, 1).take(50_000));
//! assert!(result.cycles >= result.instructions);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cpu;
pub mod events;
pub mod result;
pub mod validate;

pub use config::{CpuConfig, L2Config, Prefetch, StallFeature, WriteBufferConfig};
pub use cpu::Cpu;
pub use events::{MissTimeline, MissTimelineBuilder, TimelineCpu};
pub use result::{MeasuredProfile, SimResult};
pub use validate::{predict_cycles, predict_cycles_multiissue, validation_error};
