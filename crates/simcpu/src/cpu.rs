//! The in-order timing simulator.
//!
//! # Timing accounting
//!
//! The simulator is built so the paper's Eq. 2 is an *identity* over a
//! finished run:
//!
//! ```text
//! cycles = (E − Λm − W) + miss_stall + flush_stall + write_stall + ifetch_stall
//! ```
//!
//! where `Λm` counts data-cache line fills and `W` write-around stores.
//! Every instruction advances the clock by one base cycle; every further
//! advancement is charged to exactly one stall account, and the base cycle
//! of a fill-triggering (resp. write-around) instruction is re-charged to
//! the miss (resp. write) account because Eq. 2's `(E − Λm)` term excludes
//! those instructions. Consequently the measured stalling factor
//! `φ = miss_stall / (Λm β_m)` equals `L/D` exactly for a full-stalling
//! cache and has minimum 1 for BL/BNL, exactly as Table 2 requires.

use crate::config::{CpuConfig, Prefetch, StallFeature};
use crate::result::SimResult;
use simcache::Cache;
use simmem::{BusWidth, FillSchedule, MemoryTiming, WriteBuffer};
use simtrace::{Addr, Instr, MemOp, MemRef};
use std::collections::VecDeque;

/// The simulator.
///
/// Create one per run; it accumulates state and statistics across
/// [`Cpu::step`] calls and is consumed by [`Cpu::finish`].
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig,
    dcache: Cache,
    icache: Option<Cache>,
    l2: Option<Cache>,
    l2_timing: Option<MemoryTiming>,
    l2_free_at: u64,
    wbuf: Option<WriteBuffer>,
    fills: VecDeque<FillSchedule>,
    pf_fills: VecDeque<FillSchedule>,
    /// Prefetched lines not yet referenced (tagged prefetch trigger).
    pf_tagged: std::collections::HashSet<u64>,
    last_fill_instr: Option<u64>,
    miss_distance_hist: [u64; 20],
    cycle: u64,
    mem_free_at: u64,
    instructions: u64,
    issue_slots: u32,
    base_cycles: u64,
    miss_stall: u64,
    flush_stall: u64,
    write_stall: u64,
    ifetch_stall: u64,
}

impl Cpu {
    /// Builds a CPU from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`CpuConfig::validate`] to check fallibly.
    pub fn new(cfg: CpuConfig) -> Self {
        cfg.validate().expect("invalid CPU configuration");
        let wbuf = cfg
            .write_buffer
            .map(|wc| WriteBuffer::new(wc.capacity, cfg.timing.beta_m(), wc.mode));
        let l2_timing = cfg.l2.map(|l2| {
            MemoryTiming::new(
                BusWidth::new(cfg.timing.bus().bytes()).expect("validated bus"),
                l2.beta_l2,
            )
        });
        Cpu {
            dcache: Cache::new(cfg.dcache),
            icache: cfg.icache.map(Cache::new),
            l2: cfg.l2.map(|l2| Cache::new(l2.cache)),
            l2_timing,
            l2_free_at: 0,
            wbuf,
            fills: VecDeque::new(),
            pf_fills: VecDeque::new(),
            pf_tagged: std::collections::HashSet::new(),
            last_fill_instr: None,
            miss_distance_hist: [0; 20],
            cycle: 0,
            mem_free_at: 0,
            instructions: 0,
            issue_slots: 0,
            base_cycles: 0,
            miss_stall: 0,
            flush_stall: 0,
            write_stall: 0,
            ifetch_stall: 0,
            cfg,
        }
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs an entire trace and returns the result.
    pub fn run(mut self, trace: impl IntoIterator<Item = Instr>) -> SimResult {
        for instr in trace {
            self.step(&instr);
        }
        self.finish()
    }

    /// Executes one instruction.
    pub fn step(&mut self, instr: &Instr) {
        self.instructions += 1;
        // Base execution: `issue_width` instructions share one cycle.
        self.issue_slots += 1;
        let advanced = self.issue_slots >= self.cfg.issue_width;
        if advanced {
            self.issue_slots = 0;
            self.cycle += 1;
            self.base_cycles += 1;
        }

        let cycle_at_entry = self.cycle;
        self.fetch(instr);
        self.retire_fills();

        if let Some(mref) = instr.mem {
            self.data_access(mref, advanced);
        }
        if self.cycle != cycle_at_entry {
            // Any stall breaks the current issue group.
            self.issue_slots = 0;
        }
    }

    /// A snapshot of the accumulated result without ending the run —
    /// used for windowed / per-phase measurement.
    pub fn snapshot(&self) -> SimResult {
        SimResult {
            cycles: self.cycle,
            instructions: self.instructions,
            base_cycles: self.base_cycles,
            dcache: *self.dcache.stats(),
            icache: self.icache.as_ref().map(|c| *c.stats()),
            l2: self.l2.as_ref().map(|c| *c.stats()),
            wbuf: self.wbuf.as_ref().map(|w| *w.stats()),
            miss_stall_cycles: self.miss_stall,
            flush_stall_cycles: self.flush_stall,
            write_stall_cycles: self.write_stall,
            ifetch_stall_cycles: self.ifetch_stall,
            line_bytes: self.cfg.dcache.line_bytes(),
            beta_m: self.cfg.timing.beta_m(),
            miss_distance_hist: self.miss_distance_hist,
        }
    }

    /// Finishes the run and returns the accumulated result.
    pub fn finish(self) -> SimResult {
        SimResult {
            cycles: self.cycle,
            instructions: self.instructions,
            dcache: *self.dcache.stats(),
            icache: self.icache.as_ref().map(|c| *c.stats()),
            l2: self.l2.as_ref().map(|c| *c.stats()),
            wbuf: self.wbuf.as_ref().map(|w| *w.stats()),
            base_cycles: self.base_cycles,
            miss_stall_cycles: self.miss_stall,
            flush_stall_cycles: self.flush_stall,
            write_stall_cycles: self.write_stall,
            ifetch_stall_cycles: self.ifetch_stall,
            line_bytes: self.cfg.dcache.line_bytes(),
            beta_m: self.cfg.timing.beta_m(),
            miss_distance_hist: self.miss_distance_hist,
        }
    }

    /// Instruction fetch through the (full-blocking) I-cache — on its own
    /// bus by default (paper Section 3.3: two separate buses), or
    /// contending with data traffic when `shared_bus` is set.
    fn fetch(&mut self, instr: &Instr) {
        let Some(ic) = &mut self.icache else { return };
        let out = ic.access(MemOp::Load, instr.pc);
        if out.filled {
            let fill = self
                .cfg
                .timing
                .line_fill_time(self.cfg.icache.expect("icache cfg").line_bytes());
            let wait = if self.cfg.shared_bus {
                // Queue behind in-flight data traffic on the one bus.
                let start = self.cycle.max(self.mem_free_at);
                self.mem_free_at = start + fill;
                (start + fill) - self.cycle
            } else {
                fill
            };
            self.cycle += wait;
            self.ifetch_stall += wait;
        }
    }

    fn retire_fills(&mut self) {
        let now = self.cycle;
        while matches!(self.fills.front(), Some(f) if f.is_complete(now)) {
            self.fills.pop_front();
        }
        while matches!(self.pf_fills.front(), Some(f) if f.is_complete(now)) {
            self.pf_fills.pop_front();
        }
    }

    /// Max outstanding fills the stalling feature supports.
    fn mshrs(&self) -> usize {
        match self.cfg.stall {
            StallFeature::NonBlocking { mshrs } => mshrs as usize,
            _ => 1,
        }
    }

    fn data_access(&mut self, mref: MemRef, advanced: bool) {
        self.prefetch_wait(mref);
        self.conflict_stall(mref);
        self.retire_fills();

        let out = self.dcache.access(mref.op, mref.addr);

        if out.write_around {
            self.write_around(advanced);
            return;
        }
        if out.hit {
            // Tagged prefetch: the first demand reference to a
            // prefetched line triggers the next prefetch, keeping a
            // stream pipelined without a demand miss in between.
            if self.cfg.prefetch == Prefetch::NextLine && self.pf_tagged.remove(&out.line.raw()) {
                self.issue_prefetch(mref);
            }
            if out.write_through {
                self.write_through_hit();
            }
            return;
        }

        // A miss that allocates: wait for an MSHR, then start the fill.
        debug_assert!(out.filled, "non-hit non-write-around access must fill");
        if self.fills.len() >= self.mshrs() {
            let free_at = self.fills.front().expect("fills non-empty").complete_at();
            if free_at > self.cycle {
                self.miss_stall += free_at - self.cycle;
                self.cycle = free_at;
            }
            self.fills.pop_front();
        }

        // Record the inter-miss instruction distance (Eq. 8's ΔC).
        if let Some(last) = self.last_fill_instr {
            let bucket = SimResult::distance_bucket(self.instructions - last);
            self.miss_distance_hist[bucket] += 1;
        }
        self.last_fill_instr = Some(self.instructions);

        // The memory request issues in the instruction's own cycle.
        let issue = if advanced { self.cycle - 1 } else { self.cycle };
        let read_bypass_delay = self.wbuf.as_mut().map_or(0, |wb| wb.read_delay(issue));
        let sched = self.start_fill(mref.addr, issue + read_bypass_delay);

        let resume = match self.cfg.stall {
            StallFeature::FullStall => sched.complete_at(),
            StallFeature::BusLocked
            | StallFeature::BusNotLocked1
            | StallFeature::BusNotLocked2
            | StallFeature::BusNotLocked3 => sched.critical_arrives_at(),
            StallFeature::NonBlocking { .. } => self.cycle,
        };
        let end = resume.max(self.cycle);
        // Charge the advancement plus the instruction's re-based cycle
        // (the base cycle moves from the E − Λm account to the miss
        // account; with wide issue the instruction may not have had one).
        self.miss_stall += end - self.cycle + u64::from(advanced);
        self.base_cycles -= u64::from(advanced);
        self.cycle = end;

        self.handle_flush(&sched, out.writeback);
        if self.cfg.prefetch == Prefetch::NextLine {
            self.issue_prefetch(mref);
        }
        self.fills.push_back(sched);
    }

    /// Any access touching a line still streaming in from a *prefetch*
    /// waits for its chunk — regardless of the stalling feature, since
    /// the data simply is not there yet.
    fn prefetch_wait(&mut self, mref: MemRef) {
        let now = self.cycle;
        if let Some(f) = self
            .pf_fills
            .iter()
            .find(|f| !f.is_complete(now) && f.covers(mref.addr))
        {
            let until = f.chunk_available_at(mref.addr).max(now);
            if until > now {
                self.miss_stall += until - now;
                self.cycle = until;
            }
        }
    }

    /// Launches a next-line prefetch behind the demand fill.
    fn issue_prefetch(&mut self, mref: MemRef) {
        let line_bytes = self.cfg.dcache.line_bytes();
        let next = mref
            .addr
            .line(line_bytes)
            .base(line_bytes)
            .wrapping_add(line_bytes);
        let Some(writeback) = self.dcache.prefetch(next) else {
            return; // already resident (possibly by an earlier prefetch)
        };
        self.pf_tagged.insert(next.line(line_bytes).raw());
        if self.pf_tagged.len() > 4096 {
            // Stale tags (evicted before first use) are harmless; bound
            // the set anyway.
            self.pf_tagged.clear();
        }
        let sched = self.start_fill(next, self.cycle);
        if let Some(victim) = writeback {
            // The victim's flush rides behind the prefetch; it is never
            // on the processor's critical path.
            let service = self.victim_flush_service(victim.base(line_bytes), sched.complete_at());
            match &mut self.wbuf {
                Some(wb) => {
                    let stall = wb.enqueue(sched.complete_at(), service);
                    self.mem_free_at += stall;
                }
                None => {
                    self.mem_free_at += service;
                }
            }
        }
        self.pf_fills.push_back(sched);
        if self.pf_fills.len() > 4 {
            self.pf_fills.pop_front();
        }
    }

    /// Schedules a line fill for `addr`, sourcing it from the L2 when one
    /// is present and hits, otherwise from memory, and accounting the
    /// relevant port occupancies. `gate` is the earliest cycle the
    /// request may issue.
    fn start_fill(&mut self, addr: Addr, gate: u64) -> FillSchedule {
        let line_bytes = self.cfg.dcache.line_bytes();
        let (l2_hit, l2_victim_dirty) = match &mut self.l2 {
            Some(l2) => {
                let out = l2.access(MemOp::Load, addr);
                (out.hit, out.writeback.is_some())
            }
            None => {
                let start = gate.max(self.mem_free_at);
                let sched = FillSchedule::new(&self.cfg.timing, line_bytes, addr, start);
                self.mem_free_at = sched.complete_at();
                if let Some(wb) = &mut self.wbuf {
                    wb.occupy(start, sched.complete_at() - start);
                }
                return sched;
            }
        };
        if l2_hit {
            let timing = self.l2_timing.expect("l2 present implies timing");
            let start = gate.max(self.l2_free_at);
            let sched = FillSchedule::new(&timing, line_bytes, addr, start);
            self.l2_free_at = sched.complete_at();
            sched
        } else {
            // The L2 missed and filled from memory (its state is already
            // updated by the probe); a dirty L2 victim drains to memory
            // off the critical path.
            let start = gate.max(self.mem_free_at).max(self.l2_free_at);
            let sched = FillSchedule::new(&self.cfg.timing, line_bytes, addr, start);
            self.mem_free_at = sched.complete_at();
            self.l2_free_at = sched.complete_at();
            if let Some(wb) = &mut self.wbuf {
                wb.occupy(start, sched.complete_at() - start);
            }
            if l2_victim_dirty {
                self.mem_free_at += self.cfg.timing.line_write_time(line_bytes);
            }
            sched
        }
    }

    /// The service time of writing a victim line one level down: into
    /// the L2 when present (updating its state), else to memory.
    fn victim_flush_service(&mut self, victim_base: Addr, at: u64) -> u64 {
        let line_bytes = self.cfg.dcache.line_bytes();
        match &mut self.l2 {
            Some(l2) => {
                let out = l2.access(MemOp::Store, victim_base);
                let timing = self.l2_timing.expect("l2 present implies timing");
                if !out.hit {
                    // Inclusion slipped (the L2 evicted the line earlier):
                    // the write-allocate pull from memory rides the
                    // memory port off the critical path.
                    self.mem_free_at =
                        self.mem_free_at.max(at) + self.cfg.timing.line_fill_time(line_bytes);
                }
                if out.writeback.is_some() {
                    self.mem_free_at =
                        self.mem_free_at.max(at) + self.cfg.timing.line_write_time(line_bytes);
                }
                timing.line_fill_time(line_bytes)
            }
            None => self.cfg.timing.line_write_time(line_bytes),
        }
    }

    /// Stalls imposed by an in-flight fill *before* the access proceeds.
    fn conflict_stall(&mut self, mref: MemRef) {
        let now = self.cycle;
        let mut stall_until = now;
        match self.cfg.stall {
            StallFeature::FullStall => {}
            StallFeature::BusLocked => {
                // Any load/store while the line streams in waits for
                // completion.
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        stall_until = f.complete_at();
                    }
                }
            }
            StallFeature::BusNotLocked1 => {
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        let second_miss = !f.covers(mref.addr) && !self.dcache.contains(mref.addr);
                        if f.covers(mref.addr) || second_miss {
                            stall_until = f.complete_at();
                        }
                    }
                }
            }
            StallFeature::BusNotLocked2 => {
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        if f.covers(mref.addr) {
                            if !f.chunk_available(mref.addr, now) {
                                stall_until = f.complete_at();
                            }
                        } else if !self.dcache.contains(mref.addr) {
                            stall_until = f.complete_at();
                        }
                    }
                }
            }
            StallFeature::BusNotLocked3 => {
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        if f.covers(mref.addr) {
                            stall_until = f.chunk_available_at(mref.addr).max(now);
                        } else if !self.dcache.contains(mref.addr) {
                            stall_until = f.complete_at();
                        }
                    }
                }
            }
            StallFeature::NonBlocking { .. } => {
                // Accesses to any in-flight line wait for their chunk;
                // other lines proceed (misses gated by MSHR count later).
                if let Some(f) = self
                    .fills
                    .iter()
                    .find(|f| !f.is_complete(now) && f.covers(mref.addr))
                {
                    stall_until = f.chunk_available_at(mref.addr).max(now);
                }
            }
        }
        if stall_until > now {
            self.miss_stall += stall_until - now;
            self.cycle = stall_until;
        }
    }

    /// A write-around store miss: one `D`-byte transfer to memory.
    fn write_around(&mut self, advanced: bool) {
        let service = self.cfg.timing.single_write_time();
        let rebase = u64::from(advanced);
        self.base_cycles -= rebase;
        match &mut self.wbuf {
            Some(wb) => {
                // Posted write: only a full buffer stalls the CPU. The
                // re-base moves the W instruction's cycle here (module
                // docs).
                let stall = wb.enqueue(self.cycle, service);
                self.write_stall += stall + rebase;
                self.cycle += stall;
            }
            None => {
                let issue = if advanced { self.cycle - 1 } else { self.cycle };
                let start = issue.max(self.mem_free_at);
                let end = (start + service).max(self.cycle);
                self.write_stall += end - self.cycle + rebase;
                self.mem_free_at = start + service;
                self.cycle = end;
            }
        }
    }

    /// A write-through store hit: the store data travels to memory but
    /// the instruction keeps its base cycle (it is not a `W` miss).
    fn write_through_hit(&mut self) {
        let service = self.cfg.timing.single_write_time();
        match &mut self.wbuf {
            Some(wb) => {
                let stall = wb.enqueue(self.cycle, service);
                self.write_stall += stall;
                self.cycle += stall;
            }
            None => {
                let start = self.cycle.max(self.mem_free_at);
                let end = start + service;
                self.write_stall += end - self.cycle;
                self.mem_free_at = end;
                self.cycle = end;
            }
        }
    }

    /// Dirty-victim flush, posted after the fill completes (Section 5.3).
    fn handle_flush(&mut self, sched: &FillSchedule, victim: Option<simtrace::LineAddr>) {
        let Some(victim) = victim else { return };
        let line_bytes = self.cfg.dcache.line_bytes();
        let service = self.victim_flush_service(victim.base(line_bytes), sched.complete_at());
        match &mut self.wbuf {
            Some(wb) => {
                // Hidden from the CPU; back-pressure delays the memory
                // port, not the pipeline.
                let stall = wb.enqueue(sched.complete_at(), service);
                self.mem_free_at += stall;
            }
            None => {
                self.flush_stall += service;
                self.cycle += service;
                self.mem_free_at = self.mem_free_at.max(sched.complete_at()) + service;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WriteBufferConfig;
    use simcache::{CacheConfig, WriteMiss, WritePolicy};
    use simmem::{BusWidth, MemoryTiming};

    const BETA: u64 = 8;
    const LINE: u64 = 32; // L/D = 8 with a 4-byte bus

    fn timing() -> MemoryTiming {
        MemoryTiming::new(BusWidth::new(4).unwrap(), BETA)
    }

    fn config(stall: StallFeature) -> CpuConfig {
        CpuConfig::baseline(CacheConfig::new(8 * 1024, LINE, 2).unwrap(), timing())
            .with_stall(stall)
    }

    fn load(a: u64) -> Instr {
        Instr::mem(0u64, MemRef::load(a, 4))
    }

    fn store(a: u64) -> Instr {
        Instr::mem(0u64, MemRef::store(a, 4))
    }

    fn plain() -> Instr {
        Instr::plain(0u64)
    }

    fn eq2_identity(r: &SimResult) {
        let base = r.instructions - r.dcache.fills - r.dcache.write_arounds;
        assert_eq!(
            r.cycles,
            base + r.miss_stall_cycles
                + r.flush_stall_cycles
                + r.write_stall_cycles
                + r.ifetch_stall_cycles,
            "Eq. 2 identity violated: {r:?}"
        );
    }

    #[test]
    fn full_stall_phi_is_exactly_line_over_bus() {
        let trace = vec![load(0x1000), plain(), plain(), load(0x2000)];
        let r = Cpu::new(config(StallFeature::FullStall)).run(trace);
        // Two misses at (L/D)β = 64 cycles each, two plain cycles.
        assert_eq!(r.cycles, 64 + 1 + 1 + 64);
        assert!((r.phi() - 8.0).abs() < 1e-12, "φ = {}", r.phi());
        eq2_identity(&r);
    }

    #[test]
    fn bus_locked_resumes_at_critical_word() {
        // One isolated miss: BL pays only β_m.
        let r = Cpu::new(config(StallFeature::BusLocked)).run(vec![load(0x1000)]);
        assert_eq!(r.cycles, BETA);
        assert!((r.phi() - 1.0).abs() < 1e-12);
        eq2_identity(&r);
    }

    #[test]
    fn bus_locked_blocks_all_accesses_during_fill() {
        let mut cpu = Cpu::new(config(StallFeature::BusLocked));
        cpu.step(&load(0x1000)); // miss: fill 0..64, resume at 8
        assert_eq!(cpu.cycle(), 8);
        cpu.step(&load(0x1004)); // same line, still filling: wait to 64
        assert_eq!(cpu.cycle(), 64);
        let r = cpu.finish();
        eq2_identity(&r);
    }

    #[test]
    fn bnl1_allows_hits_to_other_lines() {
        let mut cpu = Cpu::new(config(StallFeature::BusNotLocked1));
        // Prime line B so it is resident (BNL resumes at critical word).
        cpu.step(&load(0x2000));
        assert_eq!(cpu.cycle(), 8);
        for _ in 0..64 {
            cpu.step(&plain()); // first fill completes meanwhile
        }
        let t = cpu.cycle();
        cpu.step(&load(0x1000)); // miss on line A, resumes at +β
        assert_eq!(cpu.cycle(), t + BETA);
        cpu.step(&load(0x2004)); // hit on resident line B: no stall
        assert_eq!(cpu.cycle(), t + BETA + 1);
        cpu.step(&load(0x1004)); // in-flight line A: stall until complete
        assert_eq!(cpu.cycle(), t + 64);
        let r = cpu.finish();
        eq2_identity(&r);
    }

    #[test]
    fn bus_locked_vs_bnl1_on_other_line_hit() {
        // BL stalls the other-line hit, BNL1 does not.
        let run = |stall| {
            let mut cpu = Cpu::new(config(stall));
            cpu.step(&load(0x2000));
            for _ in 0..64 {
                cpu.step(&plain());
            }
            cpu.step(&load(0x1000)); // miss, fill in flight
            cpu.step(&load(0x2004)); // hit other line
            cpu.cycle()
        };
        assert!(run(StallFeature::BusLocked) > run(StallFeature::BusNotLocked1));
    }

    #[test]
    fn bnl2_stalls_to_completion_when_chunk_missing() {
        let mut cpu = Cpu::new(config(StallFeature::BusNotLocked2));
        cpu.step(&load(0x1000)); // fill at 0; chunk 0 at 8, chunk 1 at 16...
        assert_eq!(cpu.cycle(), 8);
        // At cycle 9 chunk 1 (0x1004) is not there: stall to completion.
        cpu.step(&load(0x1004));
        assert_eq!(cpu.cycle(), 64);
        let r = cpu.finish();
        eq2_identity(&r);
    }

    #[test]
    fn bnl2_no_stall_when_chunk_already_arrived() {
        let mut cpu = Cpu::new(config(StallFeature::BusNotLocked2));
        cpu.step(&load(0x1000)); // resumes at 8
        for _ in 0..10 {
            cpu.step(&plain()); // cycle 18; chunk 1 arrived at 16
        }
        cpu.step(&load(0x1004));
        assert_eq!(
            cpu.cycle(),
            19,
            "arrived chunk satisfies the access with no stall"
        );
    }

    #[test]
    fn bnl3_waits_only_for_the_chunk() {
        let mut cpu = Cpu::new(config(StallFeature::BusNotLocked3));
        cpu.step(&load(0x1000)); // chunks at 8, 16, 24, ...
        assert_eq!(cpu.cycle(), 8);
        cpu.step(&load(0x1004)); // chunk 1 at 16: stall 9 → 16 (hit proceeds within the stall)
        assert_eq!(cpu.cycle(), 16);
        let r = cpu.finish();
        eq2_identity(&r);
        assert!(r.phi() < 8.0);
    }

    #[test]
    fn bnl3_second_access_to_critical_chunk_is_free() {
        let mut cpu = Cpu::new(config(StallFeature::BusNotLocked3));
        cpu.step(&load(0x1000));
        cpu.step(&load(0x1000)); // critical chunk already arrived
        assert_eq!(cpu.cycle(), 9);
    }

    #[test]
    fn non_blocking_load_miss_does_not_stall() {
        let mut cpu = Cpu::new(config(StallFeature::NonBlocking { mshrs: 4 }));
        cpu.step(&load(0x1000));
        assert_eq!(cpu.cycle(), 1, "NB hides the load miss");
        let r = cpu.finish();
        eq2_identity(&r);
        assert!(r.phi() <= 1.0 / BETA as f64 + 1e-12);
    }

    #[test]
    fn non_blocking_mshr_exhaustion_stalls() {
        let mut cpu = Cpu::new(config(StallFeature::NonBlocking { mshrs: 1 }));
        cpu.step(&load(0x1000)); // occupies the only MSHR; fill 0..64
        cpu.step(&load(0x2000)); // must wait for the first fill to retire
        assert!(
            cpu.cycle() >= 64,
            "second miss waits for MSHR: {}",
            cpu.cycle()
        );
        let r = cpu.finish();
        eq2_identity(&r);
    }

    #[test]
    fn non_blocking_overlaps_independent_misses() {
        // With 2 MSHRs, two back-to-back misses overlap their fills; with
        // 1 they serialise on the memory port.
        let run = |mshrs| {
            let mut cpu = Cpu::new(config(StallFeature::NonBlocking { mshrs }));
            cpu.step(&load(0x1000));
            cpu.step(&load(0x2000));
            // Touch both lines afterwards to expose fill completion times.
            cpu.step(&load(0x1004));
            cpu.step(&load(0x2004));
            cpu.cycle()
        };
        assert!(run(2) <= run(1));
    }

    #[test]
    fn ordering_fs_ge_bl_ge_bnl1_ge_bnl3_ge_nb() {
        use simtrace::spec92::{spec92_trace, Spec92Program};
        let run = |stall| {
            Cpu::new(config(stall))
                .run(spec92_trace(Spec92Program::Swm256, 42).take(30_000))
                .cycles
        };
        let fs = run(StallFeature::FullStall);
        let bl = run(StallFeature::BusLocked);
        let bnl1 = run(StallFeature::BusNotLocked1);
        let bnl2 = run(StallFeature::BusNotLocked2);
        let bnl3 = run(StallFeature::BusNotLocked3);
        let nb = run(StallFeature::NonBlocking { mshrs: 8 });
        assert!(fs >= bl, "FS {fs} < BL {bl}");
        assert!(bl >= bnl1, "BL {bl} < BNL1 {bnl1}");
        assert!(bnl1 >= bnl2, "BNL1 {bnl1} < BNL2 {bnl2}");
        assert!(bnl2 >= bnl3, "BNL2 {bnl2} < BNL3 {bnl3}");
        assert!(bnl3 >= nb, "BNL3 {bnl3} < NB {nb}");
    }

    #[test]
    fn flush_stalls_without_write_buffer() {
        // Dirty a line, evict it: the writeback costs (L/D)β extra.
        let cfg = CpuConfig::baseline(CacheConfig::new(64, 32, 1).unwrap(), timing());
        let mut cpu = Cpu::new(cfg);
        cpu.step(&store(0x0)); // miss, fill (64), dirty
        let after_store = cpu.cycle();
        assert_eq!(after_store, 64);
        cpu.step(&load(0x40)); // same set: evicts dirty line → fill + flush
        assert_eq!(cpu.cycle(), after_store + 64 + 64);
        let r = cpu.finish();
        assert_eq!(r.flush_stall_cycles, 64);
        eq2_identity(&r);
    }

    #[test]
    fn write_buffer_hides_flushes() {
        let base = CpuConfig::baseline(CacheConfig::new(64, 32, 1).unwrap(), timing());
        let with_wb = base.with_write_buffer(WriteBufferConfig::default());
        let trace: Vec<Instr> = (0..200u64)
            .map(|i| {
                if i % 2 == 0 {
                    store((i % 8) * 0x40)
                } else {
                    load(((i + 1) % 8) * 0x40)
                }
            })
            .collect();
        let slow = Cpu::new(base).run(trace.clone());
        let fast = Cpu::new(with_wb).run(trace);
        assert!(slow.flush_stall_cycles > 0);
        assert_eq!(fast.flush_stall_cycles, 0, "ideal buffer hides all flushes");
        assert!(fast.cycles < slow.cycles);
        eq2_identity(&slow);
        eq2_identity(&fast);
    }

    #[test]
    fn write_around_store_costs_beta() {
        let cfg = CpuConfig::baseline(
            CacheConfig::new(8 * 1024, LINE, 2)
                .unwrap()
                .with_write_miss(WriteMiss::Around),
            timing(),
        );
        let r = Cpu::new(cfg).run(vec![store(0x1000), plain()]);
        // Store miss around: β cycles; plain: 1.
        assert_eq!(r.cycles, BETA + 1);
        assert_eq!(r.dcache.write_arounds, 1);
        eq2_identity(&r);
    }

    #[test]
    fn write_through_store_hit_pays_transfer() {
        let cfg = CpuConfig::baseline(
            CacheConfig::new(8 * 1024, LINE, 2)
                .unwrap()
                .with_write_policy(WritePolicy::WriteThrough)
                .with_write_miss(WriteMiss::Around),
            timing(),
        );
        let mut cpu = Cpu::new(cfg);
        cpu.step(&load(0x1000)); // prime the line (64 cycles)
        let t = cpu.cycle();
        cpu.step(&store(0x1004)); // hit, but writes through: 1 + β
        assert_eq!(cpu.cycle(), t + 1 + BETA);
        let r = cpu.finish();
        eq2_identity(&r);
    }

    #[test]
    fn icache_misses_add_fetch_stalls() {
        let cfg =
            config(StallFeature::FullStall).with_icache(CacheConfig::new(4096, 32, 1).unwrap());
        // 64 sequential instructions: one I-miss per 8 instructions.
        let trace: Vec<Instr> = (0..64u64).map(|i| Instr::plain(i * 4)).collect();
        let r = Cpu::new(cfg).run(trace);
        assert_eq!(r.ifetch_stall_cycles, 8 * 64); // 8 line fills × 64 cycles
        assert_eq!(r.cycles, 64 + 512);
        eq2_identity(&r);
    }

    #[test]
    fn hits_cost_one_cycle() {
        let mut cpu = Cpu::new(config(StallFeature::FullStall));
        cpu.step(&load(0x1000));
        let t = cpu.cycle();
        for i in 0..7 {
            cpu.step(&load(0x1000 + i * 4));
        }
        assert_eq!(cpu.cycle(), t + 7);
    }

    #[test]
    fn pipelined_memory_shortens_fs_misses() {
        let mut cfg = config(StallFeature::FullStall);
        cfg.timing = timing().pipelined(2);
        let r = Cpu::new(cfg).run(vec![load(0x1000)]);
        // β_p = 8 + 2·7 = 22 instead of 64.
        assert_eq!(r.cycles, 22);
        eq2_identity(&r);
    }

    #[test]
    fn identity_holds_on_spec_proxies() {
        use simtrace::spec92::{spec92_trace, Spec92Program};
        for p in Spec92Program::ALL {
            for stall in [
                StallFeature::FullStall,
                StallFeature::BusLocked,
                StallFeature::BusNotLocked1,
                StallFeature::BusNotLocked2,
                StallFeature::BusNotLocked3,
                StallFeature::NonBlocking { mshrs: 4 },
            ] {
                let r = Cpu::new(config(stall)).run(spec92_trace(p, 3).take(20_000));
                eq2_identity(&r);
                let hi = (LINE / 4) as f64 + 1e-9;
                assert!(
                    r.phi() >= 0.0 && r.phi() <= hi,
                    "{p} {stall}: φ={} out of range",
                    r.phi()
                );
            }
        }
    }

    #[test]
    fn phi_bounds_per_feature() {
        use simtrace::spec92::{spec92_trace, Spec92Program};
        let run = |stall| {
            Cpu::new(config(stall))
                .run(spec92_trace(Spec92Program::Hydro2d, 9).take(30_000))
                .phi()
        };
        let ld = (LINE / 4) as f64;
        assert!((run(StallFeature::FullStall) - ld).abs() < 1e-9);
        let bl = run(StallFeature::BusLocked);
        assert!((1.0..=ld + 1e-9).contains(&bl), "BL φ = {bl}");
        let bnl3 = run(StallFeature::BusNotLocked3);
        assert!(bnl3 <= bl + 1e-9);
        let nb = run(StallFeature::NonBlocking { mshrs: 8 });
        assert!(nb <= bnl3 + 1e-9, "NB φ = {nb} > BNL3 φ = {bnl3}");
    }

    #[test]
    fn write_buffer_read_bypass_chunk_mode_delays_reads() {
        use simmem::BypassMode;
        let mk = |mode| {
            CpuConfig::baseline(CacheConfig::new(64, 32, 1).unwrap(), timing())
                .with_write_buffer(WriteBufferConfig { capacity: 2, mode })
        };
        let trace: Vec<Instr> = (0..100u64)
            .map(|i| {
                if i % 2 == 0 {
                    store((i % 6) * 0x40)
                } else {
                    load(((i + 3) % 6) * 0x40)
                }
            })
            .collect();
        let ideal = Cpu::new(mk(BypassMode::Ideal)).run(trace.clone());
        let chunky = Cpu::new(mk(BypassMode::ChunkGranular)).run(trace);
        assert!(chunky.cycles >= ideal.cycles);
    }

    #[test]
    fn next_line_prefetch_accelerates_streaming() {
        use crate::config::Prefetch;
        // Streaming loads with compute in between: one load per 8
        // instructions, so a 64-cycle line fill can hide behind 64
        // cycles of work.
        let mut trace = Vec::new();
        let mut pc = 0u64;
        for i in 0..4096u64 {
            trace.push(Instr::mem(pc, MemRef::load(0x10_0000 + i * 4, 4)));
            pc += 4;
            for _ in 0..7 {
                trace.push(Instr::plain(pc));
                pc += 4;
            }
        }
        let run = |prefetch| {
            Cpu::new(config(StallFeature::FullStall).with_prefetch(prefetch))
                .run(trace.iter().copied())
        };
        let plain = run(Prefetch::None);
        let pf = run(Prefetch::NextLine);
        assert!(
            pf.cycles * 3 < plain.cycles * 2,
            "prefetch should cut streaming time by ≥ a third: {} vs {}",
            pf.cycles,
            plain.cycles
        );
        assert!(pf.dcache.hit_ratio() > plain.dcache.hit_ratio());
        assert!(pf.dcache.prefetch_fills > 100);
        eq2_identity(&pf);
    }

    #[test]
    fn prefetched_line_access_waits_for_arrival() {
        use crate::config::Prefetch;
        let mut cpu = Cpu::new(config(StallFeature::FullStall).with_prefetch(Prefetch::NextLine));
        cpu.step(&load(0x1000)); // miss: fill 0..64; prefetch 0x1020 in 64..128
        assert_eq!(cpu.cycle(), 64);
        // Touch the prefetched line immediately: its first chunk arrives
        // at 64 + β = 72 (critical chunk of the prefetch schedule).
        cpu.step(&load(0x1020));
        assert_eq!(cpu.cycle(), 72);
        let r = cpu.finish();
        eq2_identity(&r);
    }

    #[test]
    fn prefetch_useless_on_pointer_chase_but_sound() {
        use crate::config::Prefetch;
        // Far-apart lines with no sequential pattern: prefetches are
        // wasted bus work, but correctness and the identity must hold.
        let trace: Vec<Instr> = (0..2000u64)
            .map(|i| Instr::mem(i * 4, MemRef::load(((i * 7919) % 0x100_0000) & !3, 4)))
            .collect();
        let run = |prefetch| {
            Cpu::new(config(StallFeature::FullStall).with_prefetch(prefetch))
                .run(trace.iter().copied())
        };
        let plain = run(Prefetch::None);
        let pf = run(Prefetch::NextLine);
        eq2_identity(&pf);
        // Wasted prefetches double the bus traffic in the worst case —
        // the Tullsen & Eggers caution the paper cites. The slowdown is
        // bounded by 2× plus small queueing effects.
        assert!(pf.cycles as f64 <= plain.cycles as f64 * 2.15);
        assert!(
            pf.cycles >= plain.cycles,
            "prefetch cannot help a pure chase"
        );
    }

    #[test]
    fn prefetch_identity_on_spec_proxies() {
        use crate::config::Prefetch;
        use simtrace::spec92::{spec92_trace, Spec92Program};
        for p in [Spec92Program::Swm256, Spec92Program::Doduc] {
            for stall in [StallFeature::FullStall, StallFeature::BusNotLocked3] {
                let r = Cpu::new(config(stall).with_prefetch(Prefetch::NextLine))
                    .run(spec92_trace(p, 3).take(20_000));
                eq2_identity(&r);
            }
        }
    }

    #[test]
    fn l2_hit_shortens_the_miss() {
        use crate::config::L2Config;
        let l2 = L2Config::new(CacheConfig::new(64 * 1024, LINE, 4).unwrap(), 2);
        let mut cpu = Cpu::new(config(StallFeature::FullStall).with_l2(l2));
        // Cold: both levels miss → full memory fill (64 cycles).
        cpu.step(&load(0x1000));
        assert_eq!(cpu.cycle(), 64);
        // Evict the line from the tiny... the L1 is 8K, so force an L1
        // conflict: the L1 is 2-way with 128 sets; three lines in one set
        // evict the first.
        let set_stride = 128 * LINE; // same L1 set, different tags
        cpu.step(&load(0x1000 + set_stride));
        cpu.step(&load(0x1000 + 2 * set_stride));
        let t = cpu.cycle();
        // Now 0x1000 is out of L1 but still in L2: refill at β_l2 = 2 →
        // 8 chunks × 2 = 16 cycles instead of 64.
        cpu.step(&load(0x1000));
        assert_eq!(cpu.cycle(), t + 16);
        let r = cpu.finish();
        eq2_identity(&r);
        assert_eq!(r.l2.expect("l2 stats").load_hits, 1);
    }

    #[test]
    fn l2_reduces_cycles_on_spec_proxies() {
        use crate::config::L2Config;
        use simtrace::spec92::{spec92_trace, Spec92Program};
        let run = |with_l2: bool| {
            let mut cfg = config(StallFeature::FullStall);
            if with_l2 {
                cfg = cfg.with_l2(L2Config::new(
                    CacheConfig::new(128 * 1024, LINE, 4).unwrap(),
                    2,
                ));
            }
            Cpu::new(cfg).run(spec92_trace(Spec92Program::Doduc, 5).take(30_000))
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with.cycles < without.cycles,
            "L2 must help: {} vs {}",
            with.cycles,
            without.cycles
        );
        eq2_identity(&with);
    }

    #[test]
    fn l2_identity_across_features_and_options() {
        use crate::config::{L2Config, Prefetch};
        use simtrace::spec92::{spec92_trace, Spec92Program};
        for stall in [StallFeature::FullStall, StallFeature::BusNotLocked3] {
            for pf in [Prefetch::None, Prefetch::NextLine] {
                let cfg = config(stall)
                    .with_l2(L2Config::new(
                        CacheConfig::new(64 * 1024, LINE, 4).unwrap(),
                        2,
                    ))
                    .with_prefetch(pf)
                    .with_write_buffer(WriteBufferConfig::default());
                let r = Cpu::new(cfg).run(spec92_trace(Spec92Program::Wave5, 6).take(15_000));
                eq2_identity(&r);
            }
        }
    }

    #[test]
    fn shared_bus_makes_fetches_contend_with_data() {
        // An I-miss right after a data miss queues behind it on a shared
        // bus but proceeds in parallel on split buses.
        let mk = |shared: bool| {
            let mut cfg =
                config(StallFeature::FullStall).with_icache(CacheConfig::new(4096, 32, 1).unwrap());
            if shared {
                cfg = cfg.with_shared_bus();
            }
            cfg
        };
        let trace: Vec<Instr> = (0..64u64)
            .map(|i| {
                if i % 8 == 0 {
                    Instr::mem(i * 4, MemRef::load(0x10_0000 + i * 64, 4))
                } else {
                    Instr::plain(i * 4)
                }
            })
            .collect();
        let split = Cpu::new(mk(false)).run(trace.iter().copied());
        let shared = Cpu::new(mk(true)).run(trace.iter().copied());
        assert!(
            shared.cycles > split.cycles,
            "bus contention must cost cycles: {} vs {}",
            shared.cycles,
            split.cycles
        );
        eq2_identity(&shared);
    }

    #[test]
    fn asymmetric_write_timing_slows_flushes_only() {
        let slow_writes = MemoryTiming::new(BusWidth::new(4).unwrap(), BETA).with_write_beta(16);
        let cfg = CpuConfig::baseline(CacheConfig::new(64, 32, 1).unwrap(), slow_writes);
        let mut cpu = Cpu::new(cfg);
        cpu.step(&store(0x0)); // fill 64 (reads unchanged)
        assert_eq!(cpu.cycle(), 64);
        cpu.step(&load(0x40)); // evict dirty: fill 64 + flush 8×16
        assert_eq!(cpu.cycle(), 64 + 64 + 128);
        let r = cpu.finish();
        assert_eq!(r.flush_stall_cycles, 128);
        eq2_identity(&r);
    }

    #[test]
    fn longer_memory_cycle_increases_bl_stalling_factor() {
        use simtrace::spec92::{spec92_trace, Spec92Program};
        let run = |beta| {
            let cfg = CpuConfig::baseline(
                CacheConfig::new(8 * 1024, LINE, 2).unwrap(),
                MemoryTiming::new(BusWidth::new(4).unwrap(), beta),
            )
            .with_stall(StallFeature::BusLocked);
            Cpu::new(cfg)
                .run(spec92_trace(Spec92Program::Swm256, 5).take(30_000))
                .phi()
        };
        // More memory latency → more overlap conflicts → higher φ
        // (Figure 1's upward trend).
        assert!(run(32) > run(4), "φ(32) = {} vs φ(4) = {}", run(32), run(4));
    }
}
