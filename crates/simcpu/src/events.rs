//! The miss-event timeline engine: O(misses) φ/cycle replay.
//!
//! The cache's hit/miss/fill/write-back sequence depends only on the
//! trace and the cache geometry — never on the timing model. One pass of
//! the trace through a bare [`Cache`] therefore suffices to record a
//! compact [`MissTimeline`] — the fill events (Eq. 8's ΔC sequence) plus
//! the hit accesses between them — after which a [`TimelineCpu`] can
//! replay *only that event stream* to produce the exact [`SimResult`] of
//! [`Cpu::run`](crate::Cpu::run) for **any** stalling feature, `β_m`,
//! bus width, pipelining `q` or write-buffer setting, in
//! `O(events + conflicted hits)` instead of `O(instructions)` per point.
//!
//! # Why the hits must be kept
//!
//! Timing is *not* purely a function of the misses: a hit issued while a
//! line streams in pays a conflict stall under BL/BNL/NB (Table 2). The
//! timeline therefore records every hit between fills (an [`Echo`]), and
//! the replay walks an event's echoes only while a fill is still in
//! flight — the first echo past the fill's completion fence ends the
//! scan, so the replayed work is `O(events)` in practice while storage
//! stays shared across every (feature × β_m × bus) point.
//!
//! # Exactness and scope
//!
//! The replay is **bit-identical** to [`Cpu::run`](crate::Cpu::run)
//! (asserted by `tests/timeline_oracle.rs` and the unit tests below)
//! whenever the timing model is history-free with respect to the cache
//! state: no instruction cache, no L2, no prefetching, single issue, and
//! a write-back write-allocate data cache (so every miss allocates and
//! hits stay hits regardless of timing). [`MissTimeline::supports`]
//! gates exactly that subset; callers keep `Cpu::run` as the oracle and
//! fall back to it otherwise — mirroring the
//! `hit_ratio_grid` / `hit_ratio_grid_replay` split in `simcache`.

use crate::config::{CpuConfig, Prefetch, StallFeature};
use crate::result::SimResult;
use simcache::{Cache, CacheConfig, CacheStats, WriteMiss, WritePolicy};
use simmem::{FillSchedule, MemoryTiming, WriteBuffer};
use simtrace::{Addr, Instr};
use std::collections::VecDeque;

/// One allocating fill: the timeline's unit of timing work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// 1-based index of the missing instruction (ΔC follows from
    /// consecutive events' differences).
    pub instr: u64,
    /// Full byte address of the miss. The byte address (not a chunk
    /// index) must be stored because the critical-word-first delivery
    /// order depends on the bus width, which is unknown until replay.
    pub addr: Addr,
    /// The miss was a store (write-allocate pulls the line either way).
    pub store: bool,
    /// A dirty victim must be flushed behind this fill.
    pub writeback: bool,
    /// Start of this event's echo range in [`MissTimeline`]'s echo list.
    pub echo_start: u32,
}

/// A hit access between two fills ("echo" of the surrounding misses):
/// timing-relevant only while a fill is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Echo {
    /// 1-based index of the instruction performing the access.
    pub instr: u64,
    /// Full byte address (chunk index depends on the replay bus width).
    pub addr: Addr,
    /// The access was a store.
    pub store: bool,
}

impl Echo {
    fn from_ref(instr: u64, addr: Addr, store: bool) -> Self {
        Echo { instr, addr, store }
    }
}

/// Streaming timeline extraction: feed instructions (or whole chunks)
/// as they are generated, then [`finish`](MissTimelineBuilder::finish).
///
/// This is the chunked-pipeline face of [`MissTimeline::extract`]: the
/// builder carries the live cache state between chunks, so feeding the
/// same stream in any chunking produces a bit-identical timeline — and
/// a 50 M-instruction trace never needs to exist in memory; only the
/// O(misses) events and O(conflictable hits) echoes accumulate.
#[derive(Debug, Clone)]
pub struct MissTimelineBuilder {
    cache: CacheConfig,
    sim: Cache,
    events: Vec<MissEvent>,
    echo_instrs: Vec<u64>,
    echo_addrs: Vec<Addr>,
    echo_stores: Vec<bool>,
    prelude: Vec<Echo>,
    miss_distance_hist: [u64; 20],
    last_fill_instr: Option<u64>,
    instructions: u64,
}

impl MissTimelineBuilder {
    /// Starts an extraction under `cache`.
    ///
    /// # Panics
    ///
    /// Panics if [`MissTimeline::supports_cache`] rejects `cache`.
    pub fn new(cache: CacheConfig) -> Self {
        assert!(
            MissTimeline::supports_cache(&cache),
            "timeline extraction needs a write-back write-allocate cache"
        );
        MissTimelineBuilder {
            cache,
            sim: Cache::new(cache),
            events: Vec::new(),
            echo_instrs: Vec::new(),
            echo_addrs: Vec::new(),
            echo_stores: Vec::new(),
            prelude: Vec::new(),
            miss_distance_hist: [0u64; 20],
            last_fill_instr: None,
            instructions: 0,
        }
    }

    /// Feeds one instruction.
    ///
    /// # Panics
    ///
    /// Panics if the stream holds ≥ 2³² hit accesses (the echo index is
    /// compact).
    pub fn process(&mut self, instr: &Instr) {
        self.instructions += 1;
        let Some(mref) = instr.mem else { return };
        let out = self.sim.access(mref.op, mref.addr);
        if out.filled {
            if let Some(last) = self.last_fill_instr {
                self.miss_distance_hist[SimResult::distance_bucket(self.instructions - last)] += 1;
            }
            self.last_fill_instr = Some(self.instructions);
            let echo_start =
                u32::try_from(self.echo_instrs.len()).expect("echo index fits in 32 bits");
            self.events.push(MissEvent {
                instr: self.instructions,
                addr: mref.addr,
                store: mref.op.is_store(),
                writeback: out.writeback.is_some(),
                echo_start,
            });
        } else {
            debug_assert!(out.hit, "a write-allocate access either hits or fills");
            if self.events.is_empty() {
                // Hits before the first fill can never stall.
                self.prelude.push(Echo::from_ref(
                    self.instructions,
                    mref.addr,
                    mref.op.is_store(),
                ));
            } else {
                self.echo_instrs.push(self.instructions);
                self.echo_addrs.push(mref.addr);
                self.echo_stores.push(mref.op.is_store());
            }
        }
    }

    /// Feeds one chunk — the unit a streaming pipeline delivers.
    pub fn process_slice(&mut self, instrs: &[Instr]) {
        for instr in instrs {
            self.process(instr);
        }
    }

    /// Instructions fed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Seals the extraction into an immutable [`MissTimeline`].
    pub fn finish(self) -> MissTimeline {
        MissTimeline {
            cache: self.cache,
            instructions: self.instructions,
            events: self.events,
            echo_instrs: self.echo_instrs,
            echo_addrs: self.echo_addrs,
            echo_stores: self.echo_stores,
            prelude: self.prelude,
            stats: *self.sim.stats(),
            miss_distance_hist: self.miss_distance_hist,
        }
    }
}

/// The complete timing-relevant record of one (trace, cache config)
/// pair: extract once, replay for every timing model.
///
/// Echoes are stored structure-of-arrays: the replay's fence scan reads
/// only the sorted instruction-index array (enabling the binary-search
/// window cut in [`TimelineCpu::run`]), addresses are touched only for
/// echoes that actually stall-check, and the store flags only by the
/// marks walk — 17 bytes per echo instead of a 24-byte record.
#[derive(Debug, Clone, PartialEq)]
pub struct MissTimeline {
    cache: CacheConfig,
    instructions: u64,
    events: Vec<MissEvent>,
    /// Echo instruction indices (ascending); event `i`'s echoes occupy
    /// `echo_instrs[events[i].echo_start .. events[i+1].echo_start]`
    /// (through the end of the list for the last event).
    echo_instrs: Vec<u64>,
    /// Echo byte addresses, parallel to `echo_instrs`.
    echo_addrs: Vec<Addr>,
    /// Echo store flags, parallel to `echo_instrs`.
    echo_stores: Vec<bool>,
    /// Hits before the first fill; they can never stall.
    prelude: Vec<Echo>,
    stats: CacheStats,
    miss_distance_hist: [u64; 20],
}

impl MissTimeline {
    /// Whether a cache configuration admits timing-free extraction: the
    /// hit/miss outcome of every access must be independent of when the
    /// accesses happen, which holds for write-back write-allocate caches
    /// (every miss allocates; no write-around / write-through traffic).
    pub fn supports_cache(cfg: &CacheConfig) -> bool {
        cfg.write_policy == WritePolicy::WriteBack && cfg.write_miss == WriteMiss::Allocate
    }

    /// Runs `trace` through the cache exactly once and records the
    /// timeline. Equivalent to driving a [`MissTimelineBuilder`] over
    /// the same stream (the streaming form for chunked pipelines).
    ///
    /// # Panics
    ///
    /// Panics if [`MissTimeline::supports_cache`] rejects `cache`, or if
    /// the trace holds ≥ 2³² hit accesses (the echo index is compact).
    pub fn extract(cache: CacheConfig, trace: impl IntoIterator<Item = Instr>) -> Self {
        let mut builder = MissTimelineBuilder::new(cache);
        for instr in trace {
            builder.process(&instr);
        }
        builder.finish()
    }

    /// The cache configuration the timeline was extracted under.
    pub fn cache(&self) -> &CacheConfig {
        &self.cache
    }

    /// Instructions in the recorded trace.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of fill events recorded.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The fill events, in trace order.
    pub fn events(&self) -> &[MissEvent] {
        &self.events
    }

    /// Final cache statistics of the recorded run (timing-independent,
    /// so they are shared verbatim by every replay).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Total data references in the recorded trace.
    pub fn references(&self) -> u64 {
        self.stats.accesses()
    }

    /// Whether [`TimelineCpu`] reproduces `Cpu::run` bit-identically for
    /// this configuration; callers must fall back to the full simulator
    /// when this is `false`.
    pub fn supports(&self, cfg: &CpuConfig) -> bool {
        cfg.dcache == self.cache
            && cfg.icache.is_none()
            && cfg.l2.is_none()
            && cfg.prefetch == Prefetch::None
            && cfg.issue_width == 1
            && cfg.validate().is_ok()
    }

    /// Replays the timeline under `cfg` and returns the exact
    /// [`SimResult`] of the equivalent full simulation.
    ///
    /// # Panics
    ///
    /// Panics when [`MissTimeline::supports`] rejects `cfg`; check first
    /// and fall back to [`Cpu::run`](crate::Cpu::run).
    pub fn replay(&self, cfg: &CpuConfig) -> SimResult {
        TimelineCpu::new(self, *cfg)
            .expect("unsupported configuration for timeline replay")
            .run()
    }

    /// Replays the timeline under every configuration in one walk of
    /// the event stream, returning the configs' exact [`SimResult`]s in
    /// order.
    ///
    /// Bit-identical to calling [`MissTimeline::replay`] per config but
    /// far cheaper for a batch: a paper-scale timeline is tens of
    /// megabytes of events and echoes, so per-point replay is bound by
    /// re-streaming that data from memory once per configuration. The
    /// batched walk touches each event exactly once and advances every
    /// config's (small, cache-resident) replay state while the event
    /// and its echo window are hot.
    ///
    /// # Errors
    ///
    /// Returns the first unsupported configuration's reason, as
    /// [`TimelineCpu::new`] would (caller should fall back to
    /// [`Cpu::run`](crate::Cpu::run) for that point).
    pub fn replay_batch(&self, cfgs: &[CpuConfig]) -> Result<Vec<SimResult>, String> {
        let replayers: Vec<TimelineCpu> = cfgs
            .iter()
            .map(|&cfg| TimelineCpu::new(self, cfg))
            .collect::<Result<_, _>>()?;
        let mut states: Vec<ReplayState> =
            replayers.iter().map(|r| ReplayState::new(&r.cfg)).collect();
        let echo_instrs = &self.echo_instrs;
        let echo_addrs = &self.echo_addrs;
        for (i, event) in self.events.iter().enumerate() {
            let start = event.echo_start as usize;
            let end = self
                .events
                .get(i + 1)
                .map_or(echo_instrs.len(), |next| next.echo_start as usize);
            for (r, st) in replayers.iter().zip(&mut states) {
                st.process_event(&r.cfg, r.mshrs(), event);
                if r.cfg.stall != StallFeature::FullStall {
                    st.scan_echoes(r.cfg.stall, echo_instrs, echo_addrs, start, end);
                }
            }
        }
        Ok(replayers
            .iter()
            .zip(&mut states)
            .map(|(r, st)| {
                st.advance(self.instructions);
                r.result(st, self.stats, self.miss_distance_hist)
            })
            .collect())
    }
}

/// Replays a [`MissTimeline`] under one timing configuration.
///
/// Construction validates the configuration; [`TimelineCpu::run`]
/// produces the final [`SimResult`] and
/// [`TimelineCpu::run_with_marks`] additionally snapshots the
/// accumulated result at given data-reference counts (the windowed /
/// per-phase measurement [`Cpu::snapshot`](crate::Cpu::snapshot)
/// provides in the full simulator).
#[derive(Debug, Clone)]
pub struct TimelineCpu<'a> {
    timeline: &'a MissTimeline,
    cfg: CpuConfig,
}

/// Scalar replay state: everything `Cpu` tracks that timing depends on.
struct ReplayState {
    cycle: u64,
    /// Instructions accounted into `cycle` so far.
    instr: u64,
    mem_free_at: u64,
    fills: VecDeque<FillSchedule>,
    wbuf: Option<WriteBuffer>,
    miss_stall: u64,
    flush_stall: u64,
}

impl ReplayState {
    fn new(cfg: &CpuConfig) -> Self {
        ReplayState {
            cycle: 0,
            instr: 0,
            mem_free_at: 0,
            fills: VecDeque::new(),
            wbuf: cfg
                .write_buffer
                .map(|wc| WriteBuffer::new(wc.capacity, cfg.timing.beta_m(), wc.mode)),
            miss_stall: 0,
            flush_stall: 0,
        }
    }

    /// Advances the clock by the base cycle of every instruction up to
    /// and including `to` (one cycle each at single issue).
    fn advance(&mut self, to: u64) {
        debug_assert!(to >= self.instr);
        self.cycle += to - self.instr;
        self.instr = to;
    }

    /// Drops completed fills from the front — the lazy equivalent of
    /// `Cpu::retire_fills` (fills complete in FIFO order because the
    /// memory port serialises their schedules).
    fn retire_fills(&mut self) {
        let now = self.cycle;
        while matches!(self.fills.front(), Some(f) if f.is_complete(now)) {
            self.fills.pop_front();
        }
    }

    /// `Cpu::conflict_stall`, with the residency question answered by
    /// the timeline instead of the cache: an echo's line is always
    /// resident, an event's never is.
    fn conflict_stall(&mut self, stall: StallFeature, addr: Addr, resident: bool) {
        let now = self.cycle;
        let mut stall_until = now;
        match stall {
            StallFeature::FullStall => {}
            StallFeature::BusLocked => {
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        stall_until = f.complete_at();
                    }
                }
            }
            StallFeature::BusNotLocked1 => {
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        let second_miss = !f.covers(addr) && !resident;
                        if f.covers(addr) || second_miss {
                            stall_until = f.complete_at();
                        }
                    }
                }
            }
            StallFeature::BusNotLocked2 => {
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        if f.covers(addr) {
                            if !f.chunk_available(addr, now) {
                                stall_until = f.complete_at();
                            }
                        } else if !resident {
                            stall_until = f.complete_at();
                        }
                    }
                }
            }
            StallFeature::BusNotLocked3 => {
                if let Some(f) = self.fills.front() {
                    if !f.is_complete(now) {
                        if f.covers(addr) {
                            stall_until = f.chunk_available_at(addr).max(now);
                        } else if !resident {
                            stall_until = f.complete_at();
                        }
                    }
                }
            }
            StallFeature::NonBlocking { .. } => {
                if let Some(f) = self
                    .fills
                    .iter()
                    .find(|f| !f.is_complete(now) && f.covers(addr))
                {
                    stall_until = f.chunk_available_at(addr).max(now);
                }
            }
        }
        if stall_until > now {
            self.miss_stall += stall_until - now;
            self.cycle = stall_until;
        }
    }

    /// One hit access at instruction `instr`: base cycle plus any
    /// fill-conflict stall.
    fn process_echo(&mut self, stall: StallFeature, instr: u64, addr: Addr) {
        self.advance(instr);
        self.retire_fills();
        self.conflict_stall(stall, addr, true);
    }

    /// One fill event: conflict stall, MSHR wait, fill launch, resume
    /// rule and posted flush — exactly `Cpu::data_access`'s miss path.
    fn process_event(&mut self, cfg: &CpuConfig, mshrs: usize, event: &MissEvent) {
        self.advance(event.instr);
        self.retire_fills();
        self.conflict_stall(cfg.stall, event.addr, false);
        self.retire_fills();

        if self.fills.len() >= mshrs {
            let free_at = self.fills.front().expect("fills non-empty").complete_at();
            if free_at > self.cycle {
                self.miss_stall += free_at - self.cycle;
                self.cycle = free_at;
            }
            self.fills.pop_front();
        }

        let line_bytes = cfg.dcache.line_bytes();
        let issue = self.cycle - 1;
        let read_bypass_delay = self.wbuf.as_mut().map_or(0, |wb| wb.read_delay(issue));
        let start = (issue + read_bypass_delay).max(self.mem_free_at);
        let sched = FillSchedule::new(&cfg.timing, line_bytes, event.addr, start);
        self.mem_free_at = sched.complete_at();
        if let Some(wb) = &mut self.wbuf {
            wb.occupy(start, sched.complete_at() - start);
        }

        let resume = match cfg.stall {
            StallFeature::FullStall => sched.complete_at(),
            StallFeature::BusLocked
            | StallFeature::BusNotLocked1
            | StallFeature::BusNotLocked2
            | StallFeature::BusNotLocked3 => sched.critical_arrives_at(),
            StallFeature::NonBlocking { .. } => self.cycle,
        };
        let end = resume.max(self.cycle);
        self.miss_stall += end - self.cycle + 1;
        self.cycle = end;

        if event.writeback {
            self.handle_flush(&cfg.timing, line_bytes, sched.complete_at());
        }
        self.fills.push_back(sched);
    }

    fn handle_flush(&mut self, timing: &MemoryTiming, line_bytes: u64, fill_complete: u64) {
        let service = timing.line_write_time(line_bytes);
        match &mut self.wbuf {
            Some(wb) => {
                let stall = wb.enqueue(fill_complete, service);
                self.mem_free_at += stall;
            }
            None => {
                self.flush_stall += service;
                self.cycle += service;
                self.mem_free_at = self.mem_free_at.max(fill_complete) + service;
            }
        }
    }

    /// Earliest cycle from which no in-flight fill can stall anything:
    /// fills complete in FIFO order, so the back completes last.
    fn fill_fence(&self) -> u64 {
        self.fills.back().map_or(0, FillSchedule::complete_at)
    }

    /// Walks one event's echo window, stall-checking only echoes that
    /// can still conflict with an in-flight fill.
    ///
    /// An echo stall-checks only while a fill is in flight: echo `e`
    /// stalls iff `cycle + (e.instr − instr) < fence`. Between stalls
    /// the lag (`cycle − instr`) is constant, so the whole eligible
    /// window is one binary-search cut on the sorted echo index array;
    /// a stall grows the lag, shrinking the cutoff, and the walk
    /// resumes with a fresh cut. Fills only retire during echoes, so
    /// the fence never moves.
    fn scan_echoes(
        &mut self,
        stall: StallFeature,
        echo_instrs: &[u64],
        echo_addrs: &[Addr],
        start: usize,
        end: usize,
    ) {
        let fence = self.fill_fence();
        let mut j = start;
        while j < end && fence > self.cycle {
            let cutoff = self.instr + (fence - self.cycle);
            let upto = j + echo_instrs[j..end].partition_point(|&e| e < cutoff);
            if upto == j {
                break;
            }
            let lag = self.cycle - self.instr;
            let mut next = upto;
            for jj in j..upto {
                self.process_echo(stall, echo_instrs[jj], echo_addrs[jj]);
                if self.cycle - self.instr != lag {
                    next = jj + 1;
                    break;
                }
            }
            // Lag unchanged: every echo past the cut fails the
            // original per-echo break condition too.
            if next == upto && self.cycle - self.instr == lag {
                break;
            }
            j = next;
        }
    }
}

impl<'a> TimelineCpu<'a> {
    /// Binds a timeline to a timing configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unsupported aspect when the
    /// replay could not be exact (caller should use `Cpu::run`).
    pub fn new(timeline: &'a MissTimeline, cfg: CpuConfig) -> Result<Self, String> {
        if cfg.dcache != timeline.cache {
            return Err("configuration's data cache differs from the timeline's".to_string());
        }
        if cfg.icache.is_some() {
            return Err("instruction caches make timing cache-history-dependent".to_string());
        }
        if cfg.l2.is_some() {
            return Err("an L2 holds timing-dependent state".to_string());
        }
        if cfg.prefetch != Prefetch::None {
            return Err("prefetching changes the cache's fill sequence".to_string());
        }
        if cfg.issue_width != 1 {
            return Err("issue grouping couples base cycles to stall history".to_string());
        }
        cfg.validate()?;
        Ok(TimelineCpu { timeline, cfg })
    }

    fn echo_bounds(&self, index: usize) -> (usize, usize) {
        let events = &self.timeline.events;
        let start = events[index].echo_start as usize;
        let end = events
            .get(index + 1)
            .map_or(self.timeline.echo_instrs.len(), |next| {
                next.echo_start as usize
            });
        (start, end)
    }

    fn mshrs(&self) -> usize {
        match self.cfg.stall {
            StallFeature::NonBlocking { mshrs } => mshrs as usize,
            _ => 1,
        }
    }

    /// Replays the event stream and returns the exact final result.
    pub fn run(&self) -> SimResult {
        let mut st = ReplayState::new(&self.cfg);
        let mshrs = self.mshrs();
        // FS never stalls an in-between hit (the fill always completed
        // at resume time), so its echoes need no walking at all.
        let scan = self.cfg.stall != StallFeature::FullStall;
        let echo_instrs = &self.timeline.echo_instrs;
        let echo_addrs = &self.timeline.echo_addrs;
        for (i, event) in self.timeline.events.iter().enumerate() {
            st.process_event(&self.cfg, mshrs, event);
            if scan {
                let (start, end) = self.echo_bounds(i);
                st.scan_echoes(self.cfg.stall, echo_instrs, echo_addrs, start, end);
            }
        }
        st.advance(self.timeline.instructions);
        self.result(&st, self.timeline.stats, self.timeline.miss_distance_hist)
    }

    /// Replays the event stream, snapshotting the accumulated result
    /// after the `m`-th data reference for each mark `m` (ascending), as
    /// `Cpu::snapshot` would at the same reference boundaries. Returns
    /// the snapshots and the final result.
    ///
    /// Unlike [`TimelineCpu::run`], every reference is walked (the marks
    /// are counted in references), so this costs `O(references)` — still
    /// without any cache work.
    ///
    /// # Panics
    ///
    /// Panics if `marks` is not ascending or exceeds the total number of
    /// data references in the timeline.
    pub fn run_with_marks(&self, marks: &[u64]) -> (Vec<SimResult>, SimResult) {
        assert!(
            marks.windows(2).all(|w| w[0] < w[1]),
            "marks must be strictly ascending"
        );
        let mut st = ReplayState::new(&self.cfg);
        let mshrs = self.mshrs();
        let mut snapshots = Vec::with_capacity(marks.len());
        let mut next_mark = marks.iter().copied().peekable();
        let mut refs = 0u64;
        let mut stats = CacheStats::default();
        let mut hist = [0u64; 20];
        let mut last_fill_instr = None;

        let mut after_ref =
            |st: &ReplayState, stats: &CacheStats, hist: &[u64; 20], refs: &mut u64| {
                *refs += 1;
                if next_mark.peek() == Some(refs) {
                    next_mark.next();
                    snapshots.push(self.result(st, *stats, *hist));
                }
            };

        for echo in &self.timeline.prelude {
            st.advance(echo.instr);
            if echo.store {
                stats.store_hits += 1;
            } else {
                stats.load_hits += 1;
            }
            after_ref(&st, &stats, &hist, &mut refs);
        }
        for (i, event) in self.timeline.events.iter().enumerate() {
            st.process_event(&self.cfg, mshrs, event);
            if let Some(last) = last_fill_instr {
                hist[SimResult::distance_bucket(event.instr - last)] += 1;
            }
            last_fill_instr = Some(event.instr);
            if event.store {
                stats.store_misses += 1;
            } else {
                stats.load_misses += 1;
            }
            stats.fills += 1;
            stats.writebacks += u64::from(event.writeback);
            after_ref(&st, &stats, &hist, &mut refs);
            let (start, end) = self.echo_bounds(i);
            for j in start..end {
                st.process_echo(
                    self.cfg.stall,
                    self.timeline.echo_instrs[j],
                    self.timeline.echo_addrs[j],
                );
                if self.timeline.echo_stores[j] {
                    stats.store_hits += 1;
                } else {
                    stats.load_hits += 1;
                }
                after_ref(&st, &stats, &hist, &mut refs);
            }
        }
        assert!(
            next_mark.peek().is_none(),
            "marks exceed the timeline's {refs} data references"
        );
        st.advance(self.timeline.instructions);
        debug_assert_eq!(stats, self.timeline.stats);
        let final_result = self.result(&st, stats, hist);
        (snapshots, final_result)
    }

    fn result(&self, st: &ReplayState, dcache: CacheStats, hist: [u64; 20]) -> SimResult {
        SimResult {
            cycles: st.cycle,
            instructions: st.instr,
            base_cycles: st.instr - dcache.fills,
            dcache,
            icache: None,
            l2: None,
            wbuf: st.wbuf.as_ref().map(|w| *w.stats()),
            miss_stall_cycles: st.miss_stall,
            flush_stall_cycles: st.flush_stall,
            write_stall_cycles: 0,
            ifetch_stall_cycles: 0,
            line_bytes: self.cfg.dcache.line_bytes(),
            beta_m: self.cfg.timing.beta_m(),
            miss_distance_hist: hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WriteBufferConfig;
    use crate::Cpu;
    use simmem::{BusWidth, BypassMode};
    use simtrace::spec92::{spec92_trace, Spec92Program};

    const N: usize = 12_000;

    fn cache() -> CacheConfig {
        CacheConfig::new(8 * 1024, 32, 2).unwrap()
    }

    fn all_stalls() -> Vec<StallFeature> {
        vec![
            StallFeature::FullStall,
            StallFeature::BusLocked,
            StallFeature::BusNotLocked1,
            StallFeature::BusNotLocked2,
            StallFeature::BusNotLocked3,
            StallFeature::NonBlocking { mshrs: 1 },
            StallFeature::NonBlocking { mshrs: 4 },
        ]
    }

    fn trace(p: Spec92Program) -> Vec<Instr> {
        spec92_trace(p, 0xDEAD_BEEF).take(N).collect()
    }

    #[test]
    fn replay_is_bit_identical_across_features_and_betas() {
        let tl = MissTimeline::extract(cache(), trace(Spec92Program::Ear));
        for stall in all_stalls() {
            for beta in [2u64, 8, 30] {
                let cfg = CpuConfig::baseline(
                    cache(),
                    MemoryTiming::new(BusWidth::new(4).unwrap(), beta),
                )
                .with_stall(stall);
                assert!(tl.supports(&cfg));
                let fast = tl.replay(&cfg);
                let slow = Cpu::new(cfg).run(trace(Spec92Program::Ear));
                assert_eq!(fast, slow, "{stall} β={beta}");
            }
        }
    }

    #[test]
    fn replay_matches_across_bus_widths_and_pipelining() {
        let tl = MissTimeline::extract(cache(), trace(Spec92Program::Swm256));
        for bus in [4u64, 8, 16] {
            for q in [None, Some(2)] {
                let mut timing = MemoryTiming::new(BusWidth::new(bus).unwrap(), 8);
                if let Some(q) = q {
                    timing = timing.pipelined(q);
                }
                let cfg =
                    CpuConfig::baseline(cache(), timing).with_stall(StallFeature::BusNotLocked3);
                let fast = tl.replay(&cfg);
                let slow = Cpu::new(cfg).run(trace(Spec92Program::Swm256));
                assert_eq!(fast, slow, "bus={bus} q={q:?}");
            }
        }
    }

    #[test]
    fn replay_matches_with_write_buffers_and_write_beta() {
        let tl = MissTimeline::extract(cache(), trace(Spec92Program::Hydro2d));
        for mode in [BypassMode::Ideal, BypassMode::ChunkGranular] {
            for capacity in [1usize, 4] {
                let timing = MemoryTiming::new(BusWidth::new(4).unwrap(), 8).with_write_beta(16);
                let cfg = CpuConfig::baseline(cache(), timing)
                    .with_stall(StallFeature::BusLocked)
                    .with_write_buffer(WriteBufferConfig { capacity, mode });
                let fast = tl.replay(&cfg);
                let slow = Cpu::new(cfg).run(trace(Spec92Program::Hydro2d));
                assert_eq!(fast, slow, "{mode:?} cap={capacity}");
            }
        }
    }

    #[test]
    fn one_timeline_serves_every_timing_point() {
        // The whole point: extract once, replay 6 features × 3 β.
        let tl = MissTimeline::extract(cache(), trace(Spec92Program::Doduc));
        let mut distinct = std::collections::HashSet::new();
        for stall in all_stalls() {
            for beta in [4u64, 15, 40] {
                let cfg = CpuConfig::baseline(
                    cache(),
                    MemoryTiming::new(BusWidth::new(4).unwrap(), beta),
                )
                .with_stall(stall);
                distinct.insert(tl.replay(&cfg).cycles);
            }
        }
        assert!(
            distinct.len() > 10,
            "timing points must differ: {distinct:?}"
        );
    }

    #[test]
    fn batched_replay_is_bit_identical_to_per_config_replay() {
        let tl = MissTimeline::extract(cache(), trace(Spec92Program::Nasa7));
        let mut cfgs = Vec::new();
        for stall in all_stalls() {
            for beta in [2u64, 8, 30] {
                for bus in [4u64, 16] {
                    cfgs.push(
                        CpuConfig::baseline(
                            cache(),
                            MemoryTiming::new(BusWidth::new(bus).unwrap(), beta),
                        )
                        .with_stall(stall),
                    );
                }
            }
        }
        let batched = tl.replay_batch(&cfgs).unwrap();
        assert_eq!(batched.len(), cfgs.len());
        for (cfg, fast) in cfgs.iter().zip(&batched) {
            assert_eq!(*fast, tl.replay(cfg), "{:?}", cfg.stall);
        }
    }

    #[test]
    fn batched_replay_rejects_unsupported_configs_wholesale() {
        let tl = MissTimeline::extract(cache(), trace(Spec92Program::Ear));
        let good = CpuConfig::baseline(cache(), MemoryTiming::new(BusWidth::new(4).unwrap(), 8));
        let bad = good.with_issue_width(2);
        assert!(tl.replay_batch(&[good, bad]).is_err());
        assert!(tl.replay_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn unsupported_configurations_are_rejected() {
        let tl = MissTimeline::extract(cache(), trace(Spec92Program::Ear));
        let base = CpuConfig::baseline(cache(), MemoryTiming::new(BusWidth::new(4).unwrap(), 8));
        assert!(tl.supports(&base));
        assert!(!tl.supports(&base.with_icache(CacheConfig::new(4096, 32, 1).unwrap())));
        assert!(!tl.supports(&base.with_issue_width(2)));
        assert!(!tl.supports(&base.with_prefetch(Prefetch::NextLine)));
        assert!(!tl.supports(&base.with_l2(crate::config::L2Config::new(
            CacheConfig::new(64 * 1024, 32, 4).unwrap(),
            2
        ))));
        let other_cache = CpuConfig::baseline(
            CacheConfig::new(4 * 1024, 32, 2).unwrap(),
            MemoryTiming::new(BusWidth::new(4).unwrap(), 8),
        );
        assert!(!tl.supports(&other_cache));
        assert!(TimelineCpu::new(&tl, other_cache).is_err());
    }

    #[test]
    fn extraction_rejects_write_around_caches() {
        let cfg = cache().with_write_miss(WriteMiss::Around);
        assert!(!MissTimeline::supports_cache(&cfg));
    }

    #[test]
    fn marks_reproduce_cpu_snapshots() {
        let trace = trace(Spec92Program::Wave5);
        let tl = MissTimeline::extract(cache(), trace.iter().copied());
        let cfg = CpuConfig::baseline(cache(), MemoryTiming::new(BusWidth::new(4).unwrap(), 8))
            .with_stall(StallFeature::BusLocked);
        let total_refs = tl.references();
        let marks = [total_refs / 4, total_refs / 2, total_refs];
        let (snaps, fin) = TimelineCpu::new(&tl, cfg).unwrap().run_with_marks(&marks);

        // Oracle: step the full simulator to the same reference counts.
        let mut cpu = Cpu::new(cfg);
        let mut refs = 0u64;
        let mut mark_iter = marks.iter().copied().peekable();
        let mut oracle = Vec::new();
        for instr in &trace {
            cpu.step(instr);
            if instr.mem.is_some() {
                refs += 1;
                if mark_iter.peek() == Some(&refs) {
                    mark_iter.next();
                    oracle.push(cpu.snapshot());
                }
            }
        }
        assert_eq!(snaps, oracle);
        assert_eq!(fin, cpu.finish());
    }

    #[test]
    fn empty_and_missless_traces_replay() {
        let tl = MissTimeline::extract(cache(), std::iter::empty());
        let cfg = CpuConfig::baseline(cache(), MemoryTiming::new(BusWidth::new(4).unwrap(), 8));
        let r = tl.replay(&cfg);
        assert_eq!(r.cycles, 0);
        assert_eq!(r, Cpu::new(cfg).run(std::iter::empty()));

        // All instructions hit one line after the first fill.
        let warm: Vec<Instr> = (0..100u64)
            .map(|i| Instr::mem(i * 4, simtrace::MemRef::load(0x1000 + (i % 8) * 4, 4)))
            .collect();
        let tl = MissTimeline::extract(cache(), warm.iter().copied());
        assert_eq!(tl.event_count(), 1);
        let r = tl.replay(&cfg);
        assert_eq!(r, Cpu::new(cfg).run(warm.iter().copied()));
    }
}
