//! Simulation results and the measured application profile.

use serde::{Deserialize, Serialize};
use simcache::CacheStats;
use simmem::wbuf::WriteBufferStats;
use std::fmt;

/// Everything one simulation run produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total execution cycles (the paper's `X`).
    pub cycles: u64,
    /// Instructions executed (`E`).
    pub instructions: u64,
    /// Cycles spent issuing non-memory-stalling instructions — the
    /// simulated `(E − Λm − W)/w` term (exact, including issue-group
    /// rounding).
    pub base_cycles: u64,
    /// Data-cache statistics.
    pub dcache: CacheStats,
    /// Instruction-cache statistics, when one was configured.
    pub icache: Option<CacheStats>,
    /// Second-level cache statistics, when one was configured.
    pub l2: Option<CacheStats>,
    /// Write-buffer statistics, when one was configured.
    pub wbuf: Option<WriteBufferStats>,
    /// Cycles attributable to data-miss servicing and fill-in-progress
    /// conflicts (the `(R/L)·φ·β_m` term, including the base cycles of
    /// the missing instructions).
    pub miss_stall_cycles: u64,
    /// Cycles the CPU stalled on dirty-line flushes (`α(R/D)β_m`).
    pub flush_stall_cycles: u64,
    /// Cycles the CPU stalled on write-around / write-through stores
    /// (`W·β_m`).
    pub write_stall_cycles: u64,
    /// Cycles the CPU stalled on instruction fetch misses.
    pub ifetch_stall_cycles: u64,
    /// Line size the data cache used (for `R = fills × L`).
    pub line_bytes: u64,
    /// Memory cycle time `β_m` used.
    pub beta_m: u64,
    /// Histogram of instruction distances between consecutive demand
    /// fills, in power-of-two buckets: bucket `i` counts distances in
    /// `[2^i, 2^(i+1))` (bucket 0 holds distance ≤ 1, the last bucket is
    /// open-ended). This is the distribution behind Eq. 8's `ΔC` and the
    /// Figure 1 stalling factors.
    pub miss_distance_hist: [u64; 20],
}

impl SimResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// The measured stalling factor `φ`.
    ///
    /// Derived from the miss-stall total so that Eq. 2 holds *exactly*
    /// for the simulated run:
    /// `φ = miss_stall_cycles / (Λm · β_m)`,
    /// where `Λm` is the number of line fills. Returns 0 when the run had
    /// no fills.
    pub fn phi(&self) -> f64 {
        let fills = self.dcache.fills;
        if fills == 0 || self.beta_m == 0 {
            0.0
        } else {
            self.miss_stall_cycles as f64 / (fills as f64 * self.beta_m as f64)
        }
    }

    /// The measured flush ratio `α`.
    pub fn alpha(&self) -> f64 {
        self.dcache.flush_ratio()
    }

    /// The bucket index for a miss distance (see
    /// [`SimResult::miss_distance_hist`]).
    pub fn distance_bucket(distance: u64) -> usize {
        (63 - distance.max(1).leading_zeros() as usize).min(19)
    }

    /// Median inter-miss instruction distance (bucket midpoint), or
    /// `None` when fewer than two fills happened.
    pub fn median_miss_distance(&self) -> Option<f64> {
        let total: u64 = self.miss_distance_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let mut seen = 0;
        for (i, &count) in self.miss_distance_hist.iter().enumerate() {
            seen += count;
            if seen * 2 >= total {
                return Some(1.5 * (1u64 << i) as f64);
            }
        }
        None
    }

    /// Bytes read by line fills (`R`).
    pub fn read_bytes(&self) -> u64 {
        self.dcache.read_bytes(self.line_bytes)
    }

    /// The measured application profile, ready to feed the analytic
    /// model.
    pub fn profile(&self) -> MeasuredProfile {
        MeasuredProfile {
            instructions: self.instructions,
            base_cycles: self.base_cycles,
            read_bytes: self.read_bytes(),
            write_arounds: self.dcache.write_arounds + self.dcache.write_throughs,
            hit_ratio: self.dcache.hit_ratio(),
            alpha: self.alpha(),
            phi: self.phi(),
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles / {} instr (CPI {:.3}), HR {:.4}, φ {:.2}, α {:.3}",
            self.cycles,
            self.instructions,
            self.cpi(),
            self.dcache.hit_ratio(),
            self.phi(),
            self.alpha()
        )
    }
}

/// The paper's application signature `{E, R, W, α, φ}` plus the hit
/// ratio, as measured by one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredProfile {
    /// Instructions executed (`E`).
    pub instructions: u64,
    /// Cycles spent issuing non-memory-stalling instructions — the
    /// simulated `(E − Λm − W)/w` term (exact, including issue-group
    /// rounding).
    pub base_cycles: u64,
    /// Bytes read by line fills (`R`).
    pub read_bytes: u64,
    /// Write-around / write-through operations (`W`).
    pub write_arounds: u64,
    /// Data-cache hit ratio.
    pub hit_ratio: f64,
    /// Flush ratio `α`.
    pub alpha: f64,
    /// Stalling factor `φ`.
    pub phi: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            cycles: 2_000,
            instructions: 1_000,
            dcache: CacheStats {
                load_hits: 250,
                load_misses: 40,
                store_hits: 90,
                store_misses: 20,
                fills: 60,
                writebacks: 30,
                ..CacheStats::default()
            },
            miss_stall_cycles: 60 * 8 * 4, // φ = 4
            flush_stall_cycles: 100,
            line_bytes: 32,
            beta_m: 8,
            ..SimResult::default()
        }
    }

    #[test]
    fn derived_quantities() {
        let r = sample();
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.phi() - 4.0).abs() < 1e-12);
        assert!((r.alpha() - 0.5).abs() < 1e-12);
        assert_eq!(r.read_bytes(), 60 * 32);
    }

    #[test]
    fn profile_mirrors_result() {
        let p = sample().profile();
        assert_eq!(p.instructions, 1_000);
        assert_eq!(p.read_bytes, 1_920);
        assert!((p.phi - 4.0).abs() < 1e-12);
        assert!((p.alpha - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_fills_zero_phi() {
        let r = SimResult {
            instructions: 10,
            cycles: 10,
            ..SimResult::default()
        };
        assert_eq!(r.phi(), 0.0);
        assert_eq!(r.cpi(), 1.0);
    }

    #[test]
    fn display_has_cpi_and_phi() {
        let s = sample().to_string();
        assert!(s.contains("CPI 2.000") && s.contains("φ 4.00"));
    }
}
