//! Closing the loop: Eq. 2 versus the cycle-accurate simulation.
//!
//! The whole methodology rests on the CPU-time model
//!
//! ```text
//! X = (E − Λm − W) + Λm·φ·β_m + flushes·(L/D)·β_m + W·β_m
//! ```
//!
//! (Eq. 2, with write-around `W`; under write-allocate `W = 0`). Given the
//! *measured* `{Λm, φ, flushes, W}` of a run, [`predict_cycles`] evaluates
//! the model and [`validation_error`] reports its relative deviation from
//! the simulated cycle count. By construction of the simulator's stall
//! accounting the deviation is zero up to integer rounding — this is the
//! reproduction of the paper's Section 4.5 claim that the model captures
//! mean memory delay exactly.

use crate::result::SimResult;

/// Evaluates Eq. 2 on the measured profile of `r`.
///
/// Uses the run's own measured stalling factor and flush count, so this
/// is the analytic model with perfectly-known inputs.
pub fn predict_cycles(r: &SimResult) -> f64 {
    let fills = r.dcache.fills as f64;
    let beta = r.beta_m as f64;
    // For single issue this equals E − Λm − W analytically; the simulator
    // reports it exactly so the identity also covers wide issue.
    let base = r.base_cycles as f64;
    let miss_term = fills * r.phi() * beta;
    let flush_term = r.flush_stall_cycles as f64; // flushes·(L/D)β_m when unbuffered
    let write_term = r.write_stall_cycles as f64;
    let ifetch_term = r.ifetch_stall_cycles as f64;
    base + miss_term + flush_term + write_term + ifetch_term
}

/// Relative error between Eq. 2's prediction and the simulated cycles.
///
/// Returns 0 for an empty run.
pub fn validation_error(r: &SimResult) -> f64 {
    if r.cycles == 0 {
        return 0.0;
    }
    (predict_cycles(r) - r.cycles as f64).abs() / r.cycles as f64
}

/// The Section 6 extension: Eq. 2 generalised to issue width `w`,
/// evaluated analytically as `(E − Λm − W)/w + stalls`.
///
/// Unlike [`predict_cycles`], the base term here is the analytic
/// `(E − Λm − W)/w`, so the prediction carries only issue-group rounding
/// error against the simulation (bounded by one cycle per stall event).
pub fn predict_cycles_multiissue(r: &SimResult, issue_width: u32) -> f64 {
    let e = r.instructions as f64;
    let fills = r.dcache.fills as f64;
    let w_ops = r.dcache.write_arounds as f64;
    let base = (e - fills - w_ops) / f64::from(issue_width.max(1));
    base + r.miss_stall_cycles as f64
        + r.flush_stall_cycles as f64
        + r.write_stall_cycles as f64
        + r.ifetch_stall_cycles as f64
}

#[cfg(test)]
mod tests {
    use crate::config::{CpuConfig, StallFeature, WriteBufferConfig};
    use crate::cpu::Cpu;
    use simcache::{CacheConfig, WriteMiss};
    use simmem::{BusWidth, MemoryTiming};
    use simtrace::spec92::{spec92_trace, Spec92Program};

    use super::*;

    fn run(stall: StallFeature, wb: bool, write_miss: WriteMiss, beta: u64) -> SimResult {
        let mut cfg = CpuConfig::baseline(
            CacheConfig::new(8 * 1024, 32, 2)
                .unwrap()
                .with_write_miss(write_miss),
            MemoryTiming::new(BusWidth::new(4).unwrap(), beta),
        )
        .with_stall(stall);
        if wb {
            cfg = cfg.with_write_buffer(WriteBufferConfig::default());
        }
        Cpu::new(cfg).run(spec92_trace(Spec92Program::Wave5, 11).take(25_000))
    }

    #[test]
    fn model_matches_simulation_exactly_across_features() {
        for stall in [
            StallFeature::FullStall,
            StallFeature::BusLocked,
            StallFeature::BusNotLocked1,
            StallFeature::BusNotLocked2,
            StallFeature::BusNotLocked3,
            StallFeature::NonBlocking { mshrs: 4 },
        ] {
            for wb in [false, true] {
                for wm in [WriteMiss::Allocate, WriteMiss::Around] {
                    let r = run(stall, wb, wm, 8);
                    let err = validation_error(&r);
                    assert!(err < 1e-9, "{stall} wb={wb} {wm:?}: error {err}");
                }
            }
        }
    }

    #[test]
    fn model_matches_across_memory_speeds() {
        for beta in [2, 4, 10, 20, 40] {
            let r = run(StallFeature::BusLocked, false, WriteMiss::Allocate, beta);
            assert!(validation_error(&r) < 1e-9, "β={beta}");
        }
    }

    #[test]
    fn empty_run_has_zero_error() {
        let r = SimResult::default();
        assert_eq!(validation_error(&r), 0.0);
    }

    #[test]
    fn multiissue_prediction_tracks_simulation() {
        use crate::config::CpuConfig;
        use simcache::CacheConfig;
        for width in [1u32, 2, 4] {
            let cfg = CpuConfig::baseline(
                CacheConfig::new(8 * 1024, 32, 2).unwrap(),
                MemoryTiming::new(BusWidth::new(4).unwrap(), 8),
            )
            .with_issue_width(width);
            let r = Cpu::new(cfg).run(spec92_trace(Spec92Program::Ear, 4).take(30_000));
            // The exact identity (measured base) holds for every width...
            assert!(validation_error(&r) < 1e-9, "width {width}");
            // ...and the analytic base term is within issue-rounding.
            let analytic = predict_cycles_multiissue(&r, width);
            let rel = (analytic - r.cycles as f64).abs() / r.cycles as f64;
            assert!(rel < 0.05, "width {width}: analytic off by {rel}");
        }
    }

    #[test]
    fn wider_issue_reduces_cycles_but_not_stalls() {
        use crate::config::CpuConfig;
        use simcache::CacheConfig;
        let run = |width: u32| {
            let cfg = CpuConfig::baseline(
                CacheConfig::new(8 * 1024, 32, 2).unwrap(),
                MemoryTiming::new(BusWidth::new(4).unwrap(), 8),
            )
            .with_issue_width(width);
            Cpu::new(cfg).run(spec92_trace(Spec92Program::Nasa7, 4).take(30_000))
        };
        let w1 = run(1);
        let w4 = run(4);
        assert!(w4.cycles < w1.cycles);
        assert!(w4.base_cycles < w1.base_cycles);
        // Memory stalls do not shrink with issue width — that is exactly
        // why memory features are worth more on wide-issue machines.
        assert!(w4.miss_stall_cycles >= w1.miss_stall_cycles / 2);
    }
}
