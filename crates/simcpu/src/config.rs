//! CPU configuration: stalling feature, caches, memory and write buffer.

use serde::{Deserialize, Serialize};
use simcache::CacheConfig;
use simmem::{BypassMode, MemoryTiming};
use std::fmt;

/// The processor stalling feature on a data-cache miss (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallFeature {
    /// FS: the processor waits until the entire line is in the cache
    /// (`φ = L/D`).
    FullStall,
    /// BL: the processor resumes as soon as the requested word arrives,
    /// but *any* load/store issued while the rest of the line streams in
    /// stalls until the fill completes (`1 ≤ φ ≤ L/D`).
    BusLocked,
    /// BNL1: other lines may be accessed during the fill; an access to the
    /// in-flight line — or a second miss — stalls until the fill
    /// completes (`1 ≤ φ ≤ L/D`).
    BusNotLocked1,
    /// BNL2: like BNL1, but an access to the in-flight line stalls only if
    /// its chunk has not yet arrived (then waits for full completion).
    BusNotLocked2,
    /// BNL3: an access to the in-flight line waits only until the chunk it
    /// needs arrives; partially filled lines satisfy accesses.
    BusNotLocked3,
    /// NB: a load miss does not stall the processor at all; subsequent
    /// accesses behave as BNL3 (`0 ≤ φ ≤ L/D`). The field is the number
    /// of simultaneously outstanding misses supported.
    NonBlocking {
        /// Miss-status holding registers (outstanding misses allowed).
        mshrs: u32,
    },
}

impl StallFeature {
    /// Short name used in figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            StallFeature::FullStall => "FS",
            StallFeature::BusLocked => "BL",
            StallFeature::BusNotLocked1 => "BNL1",
            StallFeature::BusNotLocked2 => "BNL2",
            StallFeature::BusNotLocked3 => "BNL3",
            StallFeature::NonBlocking { .. } => "NB",
        }
    }

    /// The features Figure 1 sweeps (everything with a measured `φ`).
    pub const MEASURED: [StallFeature; 4] = [
        StallFeature::BusLocked,
        StallFeature::BusNotLocked1,
        StallFeature::BusNotLocked2,
        StallFeature::BusNotLocked3,
    ];
}

impl fmt::Display for StallFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallFeature::NonBlocking { mshrs } => write!(f, "NB({mshrs})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Hardware prefetching on demand misses (a Section 2 related-work
/// feature the methodology can price like any other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Prefetch {
    /// No prefetching (the paper's configuration).
    #[default]
    None,
    /// Tagged next-line prefetch: a demand miss on line `X` also fetches
    /// line `X + 1` behind it on the bus.
    NextLine,
}

impl fmt::Display for Prefetch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefetch::None => f.write_str("no prefetch"),
            Prefetch::NextLine => f.write_str("next-line prefetch"),
        }
    }
}

/// Second-level cache configuration (an extension substrate: the paper's
/// single-level hierarchy is `l2: None`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// L2 geometry and policies (write-back, write-allocate).
    pub cache: CacheConfig,
    /// Cycles per bus chunk when filling L1 from L2 (the L2's `β`).
    pub beta_l2: u64,
}

impl L2Config {
    /// Creates an L2 configuration.
    pub fn new(cache: CacheConfig, beta_l2: u64) -> Self {
        L2Config { cache, beta_l2 }
    }
}

/// Write-buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WriteBufferConfig {
    /// Number of posted writes the buffer holds.
    pub capacity: usize,
    /// Read-bypass aggressiveness.
    pub mode: BypassMode,
}

impl Default for WriteBufferConfig {
    fn default() -> Self {
        WriteBufferConfig {
            capacity: 4,
            mode: BypassMode::Ideal,
        }
    }
}

/// Full CPU configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Data-cache geometry and policies.
    pub dcache: CacheConfig,
    /// Instruction cache; `None` models the paper's usual assumption of a
    /// (near-)perfect instruction cache.
    pub icache: Option<CacheConfig>,
    /// Bus width and memory cycle timing.
    pub timing: MemoryTiming,
    /// Stalling feature on data misses.
    pub stall: StallFeature,
    /// Read-bypassing write buffer; `None` means flushes stall the CPU.
    pub write_buffer: Option<WriteBufferConfig>,
    /// Instructions issued per cycle (the paper's Section 6 extension);
    /// 1 reproduces the paper's single-issue model.
    pub issue_width: u32,
    /// Hardware prefetch policy.
    pub prefetch: Prefetch,
    /// Optional second-level cache between the L1 and memory.
    pub l2: Option<L2Config>,
    /// Instruction fetches share the external data bus instead of having
    /// their own (relaxes the paper's separate-bus assumption 1).
    pub shared_bus: bool,
}

impl CpuConfig {
    /// A convenience baseline matching the paper's defaults: the given
    /// data cache, perfect I-cache, full-stalling, no write buffer.
    pub fn baseline(dcache: CacheConfig, timing: MemoryTiming) -> Self {
        CpuConfig {
            dcache,
            icache: None,
            timing,
            stall: StallFeature::FullStall,
            write_buffer: None,
            issue_width: 1,
            prefetch: Prefetch::None,
            l2: None,
            shared_bus: false,
        }
    }

    /// Replaces the stalling feature.
    pub fn with_stall(mut self, stall: StallFeature) -> Self {
        self.stall = stall;
        self
    }

    /// Adds a write buffer.
    pub fn with_write_buffer(mut self, wb: WriteBufferConfig) -> Self {
        self.write_buffer = Some(wb);
        self
    }

    /// Adds an instruction cache.
    pub fn with_icache(mut self, icache: CacheConfig) -> Self {
        self.icache = Some(icache);
        self
    }

    /// Sets the issue width (instructions per cycle when nothing stalls).
    pub fn with_issue_width(mut self, issue_width: u32) -> Self {
        self.issue_width = issue_width;
        self
    }

    /// Sets the prefetch policy.
    pub fn with_prefetch(mut self, prefetch: Prefetch) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Adds a second-level cache.
    pub fn with_l2(mut self, l2: L2Config) -> Self {
        self.l2 = Some(l2);
        self
    }

    /// Makes instruction fetches contend for the external data bus.
    pub fn with_shared_bus(mut self) -> Self {
        self.shared_bus = true;
        self
    }

    /// Validates cross-parameter constraints (line size vs bus width).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.timing
            .check_line(self.dcache.line_bytes())
            .map_err(|e| format!("data cache: {e}"))?;
        if let Some(ic) = &self.icache {
            self.timing
                .check_line(ic.line_bytes())
                .map_err(|e| format!("instruction cache: {e}"))?;
        }
        if let StallFeature::NonBlocking { mshrs } = self.stall {
            if mshrs == 0 {
                return Err("non-blocking cache needs at least one MSHR".to_string());
            }
        }
        if self.issue_width == 0 {
            return Err("issue width must be at least one".to_string());
        }
        if let Some(l2) = &self.l2 {
            if l2.cache.line_bytes() != self.dcache.line_bytes() {
                return Err(format!(
                    "L2 line size {} must match the L1's {}",
                    l2.cache.line_bytes(),
                    self.dcache.line_bytes()
                ));
            }
            if l2.cache.size_bytes() < self.dcache.size_bytes() {
                return Err("L2 must be at least as large as the L1".to_string());
            }
            if l2.beta_l2 == 0 {
                return Err("L2 beta must be at least one cycle".to_string());
            }
        }
        if self.dcache.write_policy == simcache::WritePolicy::WriteThrough
            && self.dcache.write_miss == simcache::WriteMiss::Allocate
        {
            return Err(
                "write-through with write-allocate is not modelled; use write-around".to_string(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::BusWidth;

    fn timing() -> MemoryTiming {
        MemoryTiming::new(BusWidth::new(4).unwrap(), 8)
    }

    #[test]
    fn baseline_defaults() {
        let cfg = CpuConfig::baseline(CacheConfig::new(8192, 32, 2).unwrap(), timing());
        assert_eq!(cfg.stall, StallFeature::FullStall);
        assert!(cfg.icache.is_none());
        assert!(cfg.write_buffer.is_none());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let cfg = CpuConfig::baseline(CacheConfig::new(8192, 32, 2).unwrap(), timing())
            .with_stall(StallFeature::BusLocked)
            .with_write_buffer(WriteBufferConfig::default())
            .with_icache(CacheConfig::new(4096, 32, 1).unwrap());
        assert_eq!(cfg.stall, StallFeature::BusLocked);
        assert!(cfg.write_buffer.is_some());
        assert!(cfg.icache.is_some());
    }

    #[test]
    fn validate_rejects_bad_line_bus_combo() {
        // 12-byte lines are impossible; but a valid cache line of 8 with a
        // 32-byte bus is fine (single chunk). Use line 16 with bus 64?
        // BusWidth::new(64) with line 16 is a divisor: allowed. Build a
        // mismatch via line 32, bus 64 → divisor, allowed. The only
        // invalid case is non-divisor/multiple, impossible for powers of
        // two, so validate NB instead.
        let cfg = CpuConfig::baseline(CacheConfig::new(8192, 32, 2).unwrap(), timing())
            .with_stall(StallFeature::NonBlocking { mshrs: 0 });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn l2_validation() {
        let base = CpuConfig::baseline(CacheConfig::new(8192, 32, 2).unwrap(), timing());
        let good = base.with_l2(L2Config::new(
            CacheConfig::new(64 * 1024, 32, 4).unwrap(),
            2,
        ));
        assert!(good.validate().is_ok());
        let wrong_line = base.with_l2(L2Config::new(
            CacheConfig::new(64 * 1024, 64, 4).unwrap(),
            2,
        ));
        assert!(wrong_line.validate().is_err());
        let too_small = base.with_l2(L2Config::new(CacheConfig::new(4096, 32, 2).unwrap(), 2));
        assert!(too_small.validate().is_err());
        let zero_beta = base.with_l2(L2Config::new(
            CacheConfig::new(64 * 1024, 32, 4).unwrap(),
            0,
        ));
        assert!(zero_beta.validate().is_err());
    }

    #[test]
    fn issue_width_validation() {
        let cfg = CpuConfig::baseline(CacheConfig::new(8192, 32, 2).unwrap(), timing());
        assert_eq!(cfg.issue_width, 1);
        assert!(cfg.with_issue_width(0).validate().is_err());
        assert!(cfg.with_issue_width(4).validate().is_ok());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(StallFeature::FullStall.name(), "FS");
        assert_eq!(StallFeature::NonBlocking { mshrs: 4 }.to_string(), "NB(4)");
        assert_eq!(StallFeature::BusNotLocked2.to_string(), "BNL2");
    }
}
