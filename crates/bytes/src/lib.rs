//! Offline stand-in for the `bytes` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! implements the small slice-of-a-shared-buffer surface the workspace
//! uses: [`BytesMut`] as an append-only builder, [`Bytes`] as a cheaply
//! cloneable view that the [`Buf`] cursor methods consume from the
//! front, and the [`BufMut`] writer trait. Semantics match upstream for
//! this subset (`len()` is the *remaining* length, `get_u8` advances).
#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
///
/// Clones share the underlying allocation; consuming via [`Buf`]
/// advances a per-handle cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            start: 0,
        }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::from(v),
            start: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// An appendable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read-cursor over a byte buffer.
pub trait Buf {
    /// Number of bytes left.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes and returns the next byte.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.data[self.start];
        self.start += 1;
        b
    }
}

/// Write-cursor over a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        assert_eq!(b.len(), 3);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 3);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3]);
        let copy = frozen.clone();
        assert_eq!(frozen.get_u8(), 1);
        assert_eq!(frozen.len(), 2);
        assert_eq!(&frozen[..], &[2, 3]);
        // Clones have independent cursors.
        assert_eq!(copy.len(), 3);
        assert_ne!(frozen, copy);
        assert_eq!(Bytes::from(vec![2u8, 3]), frozen);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn overrun_panics() {
        let mut b = Bytes::default();
        assert!(!b.has_remaining());
        b.get_u8();
    }
}
