//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal replacement: the derives accept the same syntax as
//! the real macros (including `#[serde(...)]` attributes) and expand to
//! nothing. That is sufficient here because the workspace only uses
//! `Serialize`/`Deserialize` as marker bounds — no serialization
//! backend (serde_json, bincode, ...) is linked.

use proc_macro::TokenStream;

/// Derives the (marker) `Serialize` trait. Expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (marker) `Deserialize` trait. Expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
