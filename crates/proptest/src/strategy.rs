//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// a strategy is simply a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe sampling, for boxed strategies.
trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_tuples_and_map_stay_in_domain() {
        let mut rng = rng_for("strategy::smoke");
        let s = (0u64..10, 0.0..=1.0f64).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..200 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 20 && a % 2 == 0);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = rng_for("strategy::oneof");
        let s = crate::prop_oneof![Just(1u32), Just(2), (10u32..12).prop_map(|v| v)];
        let mut seen = [0u32; 3];
        for _ in 0..300 {
            match s.sample(&mut rng) {
                1 => seen[0] += 1,
                2 => seen[1] += 1,
                10 | 11 => seen[2] += 1,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(seen.iter().all(|&c| c > 50), "balanced arms: {seen:?}");
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = rng_for("strategy::vec");
        let s = crate::collection::vec(0u8..5, 2..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = crate::collection::vec(0u8..5, 4);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
    }
}
