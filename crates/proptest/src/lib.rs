//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! re-implements the subset of proptest the workspace tests use:
//! the [`strategy::Strategy`] trait (ranges, tuples, `Just`, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `any::<bool>()`), the `proptest!`
//! test macro, and the `prop_assert*` macros. Each property runs a
//! fixed number of deterministic random cases (seeded from the test's
//! module path, so failures reproduce); there is no shrinking — a
//! failing case reports the values via the assertion message instead.
#![forbid(unsafe_code)]

pub mod strategy;

/// Value-tree-free `Arbitrary` support: `any::<T>()`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A `Vec` strategy with elements from `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Test-runner configuration, RNG, and error type.
pub mod test_runner {
    use rand::SeedableRng;
    use std::fmt;

    /// The deterministic generator behind every strategy.
    pub type TestRng = rand::rngs::SmallRng;

    /// How a property is executed.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (carried out of the test body by the
    /// `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// A generator seeded from the test's path: deterministic across
    /// runs, distinct across tests.
    pub fn rng_for(test_path: &str) -> TestRng {
        // FNV-1a over the path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among boxed alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion: on failure, aborts the current case with a
/// message (no panic unwinding through foreign frames).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: {:?}",
            left
        );
    }};
}

/// Declares property tests: each `fn` runs `config.cases` random cases
/// with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut proptest_rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for proptest_case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut proptest_rng);)+
                let proptest_result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = proptest_result {
                    panic!("property {} failed at case {}:\n{}",
                           stringify!($name), proptest_case, e);
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}
