//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this crate
//! implements the narrow API surface the workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` convenience methods
//! `gen`, `gen_range`, and `gen_bool` — on top of a xoshiro256++
//! generator seeded through SplitMix64 (the same construction the real
//! `SmallRng` uses on 64-bit targets). Streams are deterministic per
//! seed; they are not bit-compatible with upstream `rand`, which no
//! test relies on.
#![forbid(unsafe_code)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The non-cryptographic small generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and of high statistical quality.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Samples one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, width)` via Lemire's widening multiply.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, width) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if width == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, width) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::draw(rng) * (end - start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
