//! Figure-1 sweep benchmark: per-point full CPU simulation versus the
//! miss-event timeline engine (extract each program's timeline once,
//! replay it for every (feature, β_m) point).
//!
//! Both paths are measured single-threaded and self-contained — the
//! timeline path pays its trace generations and cache passes inside the
//! timed region (no memoisation), so the ratio is the engine's honest
//! algorithmic win, with `bench::exec` parallelism on top in production.
//!
//! Besides the criterion timings, the run asserts the two paths produce
//! bit-identical `SimResult`s on every point and records the wall-clock
//! comparison in `BENCH_phi.json` at the workspace root.

use bench::common::figure1_cache;
use bench::fig1::{PhiBenchResult, BETAS};
use criterion::{criterion_group, criterion_main, Criterion};
use simcpu::{Cpu, CpuConfig, MissTimeline, SimResult, StallFeature, TimelineCpu};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use std::time::Instant;

const INSTRUCTIONS: usize = 120_000;
const SEED: u64 = 0xDEAD_BEEF;

fn config(stall: StallFeature, beta: u64) -> CpuConfig {
    CpuConfig::baseline(
        figure1_cache(32),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
    )
    .with_stall(stall)
}

fn points() -> Vec<(StallFeature, u64)> {
    StallFeature::MEASURED
        .iter()
        .flat_map(|&f| BETAS.iter().map(move |&b| (f, b)))
        .collect()
}

/// The pre-engine path: every (feature, β, program) point generates the
/// trace and runs the full cache + CPU simulation from scratch.
fn full_simulation() -> Vec<SimResult> {
    let mut out = Vec::new();
    for &(stall, beta) in &points() {
        for p in Spec92Program::ALL {
            out.push(Cpu::new(config(stall, beta)).run(spec92_trace(p, SEED).take(INSTRUCTIONS)));
        }
    }
    out
}

/// The engine path: one trace generation + one cache pass per program,
/// then every timing point is an `O(misses)` replay.
fn timeline_replay() -> Vec<SimResult> {
    let timelines: Vec<MissTimeline> = Spec92Program::ALL
        .iter()
        .map(|&p| {
            MissTimeline::extract(figure1_cache(32), spec92_trace(p, SEED).take(INSTRUCTIONS))
        })
        .collect();
    let mut out = Vec::new();
    for &(stall, beta) in &points() {
        for tl in &timelines {
            out.push(
                TimelineCpu::new(tl, config(stall, beta))
                    .expect("supported config")
                    .run(),
            );
        }
    }
    out
}

/// Best-of-`reps` wall-clock seconds for one run of `f`.
fn time_best(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn phi_comparison(c: &mut Criterion) {
    // Correctness gate: the replay must be bit-identical to the full
    // simulation on every point before its speedup means anything.
    let fast = timeline_replay();
    let slow = full_simulation();
    assert_eq!(fast, slow, "timeline and full simulation diverged");

    let full_secs = time_best(2, || {
        full_simulation();
    });
    let timeline_secs = time_best(5, || {
        timeline_replay();
    });

    let result = PhiBenchResult {
        points: fast.len(),
        instructions: INSTRUCTIONS,
        full_secs,
        timeline_secs,
    };
    println!(
        "figure1 sweep ({} points, {} instr): full {:.3}s, timeline {:.3}s, speedup {:.1}x, {:.1} points/s",
        result.points,
        result.instructions,
        result.full_secs,
        result.timeline_secs,
        result.speedup(),
        result.points_per_sec(),
    );
    let json = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_phi.json");
    if let Err(e) = result.write_json(&json) {
        eprintln!("warning: could not write {}: {e}", json.display());
    }

    let mut group = c.benchmark_group("figure1_phi");
    group.bench_function("timeline_replay", |b| {
        b.iter(timeline_replay);
    });
    group.bench_function("full_simulation", |b| {
        b.iter(full_simulation);
    });
    group.finish();
}

criterion_group!(benches, phi_comparison);
criterion_main!(benches);
