//! Closed-form versus simulated miss ratios at paper scale: the
//! Figure-6 grid answered by stack-distance sweeps and by the analytic
//! reuse-distance-histogram backend, on 5 M-instruction SPEC92 proxy
//! traces across all six workloads.
//!
//! The sweep engine pays `O(refs · log sets)` per line size for every
//! workload; the analytic backend pays one streaming histogram fold
//! per workload (memoised by the trace store) after which *any*
//! (size × line × assoc) point is a histogram walk whose cost is
//! independent of trace length. The run:
//!
//! 1. answers the Figure-6 grid (7 sizes × 5 lines, two-way) with both
//!    backends, asserts their divergence stays within the pinned
//!    [`SET_CONFLICT_TOLERANCE`], and times each;
//! 2. answers the dense million-point grid (every set count 1..=2084,
//!    including the non-power-of-two geometries replay cannot
//!    express) analytically from the warm histograms;
//! 3. records the comparison in `BENCH_analytic.json` at the workspace
//!    root and registers a reduced criterion point.
//!
//! The one-time histogram fold is disclosed as `hist_pass_secs`, not
//! hidden inside the closed-form timings: production suites pay it
//! once per workload and amortise it over every grid they ask for.

use bench::grid::{self, AnalyticBenchResult, DenseGrid, GridSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use simcache::hitratio::SET_CONFLICT_TOLERANCE;
use simcache::{Analytic, HitRatioBackend, Simulated};
use simtrace::spec92::Spec92Program;
use simtrace::workload::builtin_spec;
use std::time::Instant;

const INSTRUCTIONS: usize = 5_000_000;
const WARMUP: u64 = (INSTRUCTIONS as u64) / 5;
const PROGRAMS: [Spec92Program; 6] = Spec92Program::ALL;

/// The Figure-6 grid both backends answer: 7 capacities × 5 line
/// sizes, two-way — 35 points per workload.
fn fig6_spec() -> GridSpec {
    GridSpec {
        cache_sizes: (0..=6).map(|i| 1024u64 << i).collect(),
        line_sizes: vec![8, 16, 32, 64, 128],
        assocs: vec![2],
        warmup: WARMUP,
    }
}

fn eval_grid(backend: &dyn HitRatioBackend, spec: &GridSpec) -> Vec<f64> {
    let mut out = Vec::with_capacity(spec.points());
    for &cache_bytes in &spec.cache_sizes {
        for &line_bytes in &spec.line_sizes {
            for &assoc in &spec.assocs {
                out.push(
                    backend
                        .hit_ratio(cache_bytes, line_bytes, assoc)
                        .expect("grid covered"),
                );
            }
        }
    }
    out
}

fn analytic_comparison(c: &mut Criterion) {
    let spec = fig6_spec();

    // Leg 1: the simulated backend — sweep folds plus point reads.
    let start = Instant::now();
    let sim_grids: Vec<Vec<f64>> = PROGRAMS
        .iter()
        .map(|&p| {
            let backend: Simulated = grid::build_simulated(builtin_spec(p), &spec, INSTRUCTIONS);
            eval_grid(&backend, &spec)
        })
        .collect();
    let sim_fig6_secs = start.elapsed().as_secs_f64();

    // Leg 2: the one-time streaming histogram folds (cold store).
    let start = Instant::now();
    for &p in &PROGRAMS {
        std::hint::black_box(grid::build_analytic(builtin_spec(p), INSTRUCTIONS, WARMUP));
    }
    let hist_pass_secs = start.elapsed().as_secs_f64();

    // Leg 3: closed-form Figure-6 answers from the warm store.
    let start = Instant::now();
    let analytic_grids: Vec<Vec<f64>> = PROGRAMS
        .iter()
        .map(|&p| {
            let backend: Analytic = grid::build_analytic(builtin_spec(p), INSTRUCTIONS, WARMUP);
            eval_grid(&backend, &spec)
        })
        .collect();
    let analytic_fig6_secs = start.elapsed().as_secs_f64();

    // Accuracy gate: the speedup is meaningless if the answers drift.
    let mut max_delta_hr = 0.0f64;
    for (s, a) in sim_grids
        .iter()
        .flatten()
        .zip(analytic_grids.iter().flatten())
    {
        max_delta_hr = max_delta_hr.max((s - a).abs());
    }
    assert!(
        max_delta_hr <= SET_CONFLICT_TOLERANCE,
        "backend divergence {max_delta_hr} exceeds tolerance {SET_CONFLICT_TOLERANCE}"
    );

    // Leg 4: the dense million-point grid, closed form only.
    let dense = DenseGrid::standard();
    let start = Instant::now();
    for &p in &PROGRAMS {
        let backend = grid::build_analytic(builtin_spec(p), INSTRUCTIONS, WARMUP);
        std::hint::black_box(grid::dense_best(&backend, &dense, 0.9));
    }
    let dense_eval_secs = start.elapsed().as_secs_f64();

    let result = AnalyticBenchResult {
        instructions: INSTRUCTIONS,
        workloads: PROGRAMS.len(),
        fig6_points: spec.points() * PROGRAMS.len(),
        sim_fig6_secs,
        analytic_fig6_secs,
        hist_pass_secs,
        max_delta_hr,
        tolerance: SET_CONFLICT_TOLERANCE,
        dense_points: dense.points() * PROGRAMS.len(),
        dense_eval_secs,
    };
    println!(
        "analytic backend ({} fig6 points, {} instr): sim {:.3}s ({:.1} points/s), \
         closed form {:.6}s ({:.0} points/s, {:.0}x), hist folds {:.3}s; \
         dense {} points in {:.3}s ({:.0} points/s)",
        result.fig6_points,
        result.instructions,
        result.sim_fig6_secs,
        result.sim_points_per_sec(),
        result.analytic_fig6_secs,
        result.analytic_points_per_sec(),
        result.fig6_speedup(),
        result.hist_pass_secs,
        result.dense_points,
        result.dense_eval_secs,
        result.dense_points_per_sec(),
    );
    assert!(
        result.fig6_speedup() >= 50.0,
        "closed form must answer fig6 points at ≥50x the sweep rate, got {:.1}x",
        result.fig6_speedup()
    );
    assert!(
        result.dense_eval_secs < result.sim_fig6_secs,
        "the million-point dense grid ({:.3}s) must finish before the sim's \
         {}-point fig6 grid ({:.3}s)",
        result.dense_eval_secs,
        result.fig6_points,
        result.sim_fig6_secs
    );
    let json = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_analytic.json");
    if let Err(e) = result.write_json(&json) {
        eprintln!("warning: could not write {}: {e}", json.display());
    }

    // A reduced criterion point tracks the closed-form evaluation rate
    // (warm histograms, small dense slice) run to run.
    let backend = grid::build_analytic(builtin_spec(PROGRAMS[0]), INSTRUCTIONS, WARMUP);
    let small = DenseGrid::small();
    let mut group = c.benchmark_group("analytic_backend");
    group.bench_function("dense_small_warm", |b| {
        b.iter(|| grid::dense_best(&backend, &small, 0.9));
    });
    group.finish();
}

criterion_group!(benches, analytic_comparison);
criterion_main!(benches);
