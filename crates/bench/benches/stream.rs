//! Paper-scale streaming benchmark: materialise-then-scan versus the
//! chunked generate→fold pipeline on a 5 M-instruction SPEC92 proxy
//! trace.
//!
//! The baseline is how every figure was produced before the engines
//! landed: collect the whole trace into memory, replay it once per
//! Figure-6 grid configuration, and run the full CPU simulation once
//! per Figure-1 φ point. The streaming path answers the identical
//! points with one chunked generation pass broadcast into per-line-size
//! stack-distance sweeps plus a miss-timeline sink, then `O(misses)`
//! replays — peak trace-resident memory is a few `REPRO_STREAM_CHUNK`
//! blocks instead of `24 B × N`.
//!
//! The run asserts both paths produce identical grid points and φ
//! values before timing anything, records the comparison in
//! `BENCH_stream.json` at the workspace root, and registers a reduced
//! criterion point so `cargo bench` tracks the pipeline's shape over
//! time.

use bench::stream::{self, FoldOut, FoldSink, StreamBenchResult};
use criterion::{criterion_group, criterion_main, Criterion};
use simcache::explore::{hit_ratio_grid_replay, HitRatioPoint};
use simcache::stackdist::StackDistSweep;
use simcpu::{Cpu, CpuConfig, MissTimeline, MissTimelineBuilder, StallFeature};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::{Instr, ReuseHistograms};
use std::time::Instant;

/// The streaming point: paper-scale, far beyond what the materialised
/// benches (`sweep.rs`, `phi.rs`) run.
const INSTRUCTIONS: usize = 5_000_000;
/// The long streaming-only point: ~24 B × 50 M ≈ 1.2 GB materialised —
/// past the box's memory budget, so there is no baseline leg; the
/// record is the pipeline's sustained instruction rate with every
/// production sink attached.
const LARGE_INSTRUCTIONS: usize = 50_000_000;
const SEED: u64 = 7;
const PROGRAM: Spec92Program = Spec92Program::Nasa7;
const LINES: [u64; 5] = [8, 16, 32, 64, 128];
const ASSOC: u32 = 2;
/// Figure-1 φ points: every blocking stall feature of Table 2 over the
/// full paper β_m sweep, at three bus widths. Every one of these is a
/// fresh 5 M-instruction `Cpu::run` for the baseline; the streaming
/// pipeline answers the whole batch with a single `O(misses)` walk of
/// the shared timeline (`MissTimeline::replay_batch`) — exactly the
/// asymmetry the methodology exists to exploit.
const FEATURES: [StallFeature; 5] = [
    StallFeature::FullStall,
    StallFeature::BusLocked,
    StallFeature::BusNotLocked1,
    StallFeature::BusNotLocked2,
    StallFeature::BusNotLocked3,
];
const BETAS: [u64; 7] = bench::fig1::BETAS;
const BUSES: [u64; 3] = [4, 8, 16];

fn sizes() -> Vec<u64> {
    (0..=6).map(|i| 1024u64 << i).collect()
}

fn phi_points() -> Vec<(StallFeature, u64, u64)> {
    FEATURES
        .iter()
        .flat_map(|&f| {
            BETAS
                .iter()
                .flat_map(move |&b| BUSES.iter().map(move |&bus| (f, b, bus)))
        })
        .collect()
}

fn phi_cache() -> simcache::CacheConfig {
    simcache::CacheConfig::new(8 * 1024, 32, ASSOC).expect("valid 8KB cache")
}

fn config(stall: StallFeature, beta: u64, bus: u64) -> CpuConfig {
    CpuConfig::baseline(
        phi_cache(),
        MemoryTiming::new(BusWidth::new(bus).expect("valid bus"), beta),
    )
    .with_stall(stall)
}

fn trace(n: usize) -> impl Iterator<Item = Instr> {
    spec92_trace(PROGRAM, SEED).take(n)
}

/// Assembles grid points from per-line-size sweeps, (cache, line) order
/// like the replay oracle.
fn grid_from_sweeps(sweeps: &[StackDistSweep], sizes: &[u64]) -> Vec<HitRatioPoint> {
    let mut points = Vec::with_capacity(sizes.len() * LINES.len());
    for &cache_bytes in sizes {
        for (li, &line_bytes) in LINES.iter().enumerate() {
            let sets = cache_bytes / (line_bytes * u64::from(ASSOC));
            let stats = sweeps[li].stats(sets.trailing_zeros(), ASSOC);
            points.push(HitRatioPoint {
                cache_bytes,
                line_bytes,
                hit_ratio: stats.hit_ratio(),
                flush_ratio: stats.flush_ratio(),
            });
        }
    }
    points
}

/// The materialise-then-scan baseline: collect the trace, replay it per
/// grid configuration, full-simulate it per φ point.
fn baseline(n: usize, sizes: &[u64]) -> (Vec<HitRatioPoint>, Vec<f64>) {
    let whole: Vec<Instr> = trace(n).collect();
    let grid = hit_ratio_grid_replay(sizes, &LINES, ASSOC, || whole.iter().copied(), n as u64 / 5)
        .expect("valid grid");
    let phis = phi_points()
        .iter()
        .map(|&(stall, beta, bus)| {
            Cpu::new(config(stall, beta, bus))
                .run(whole.iter().copied())
                .phi()
        })
        .collect();
    (grid, phis)
}

/// The streaming pipeline: one chunked generation pass broadcast into
/// five sweep sinks and a timeline sink, then one batched `O(misses)`
/// walk of the timeline answering every φ point at once.
fn streaming(n: usize, sizes: &[u64], chunk: usize) -> (Vec<HitRatioPoint>, Vec<f64>) {
    let min_sets = |l: u64| {
        sizes
            .iter()
            .map(|&c| c / (l * u64::from(ASSOC)))
            .min()
            .unwrap()
    };
    let max_sets = |l: u64| {
        sizes
            .iter()
            .map(|&c| c / (l * u64::from(ASSOC)))
            .max()
            .unwrap()
    };
    let mut sinks: Vec<FoldSink> = LINES
        .iter()
        .map(|&l| {
            FoldSink::Sweep(
                StackDistSweep::new_range(
                    l,
                    min_sets(l).trailing_zeros(),
                    max_sets(l).trailing_zeros(),
                    ASSOC,
                    n as u64 / 5,
                )
                .expect("valid sweep"),
            )
        })
        .collect();
    sinks.push(FoldSink::Timeline(MissTimelineBuilder::new(phi_cache())));
    let mut out = stream::broadcast(trace(n), chunk, sinks);
    let timeline: MissTimeline = out.pop().expect("timeline sink").into_timeline();
    let sweeps: Vec<StackDistSweep> = out.into_iter().map(FoldOut::into_sweep).collect();
    let grid = grid_from_sweeps(&sweeps, sizes);
    let configs: Vec<CpuConfig> = phi_points()
        .iter()
        .map(|&(stall, beta, bus)| config(stall, beta, bus))
        .collect();
    let phis = timeline
        .replay_batch(&configs)
        .expect("timeline supports the φ configs")
        .iter()
        .map(simcpu::SimResult::phi)
        .collect();
    (grid, phis)
}

/// The streaming-only long run: the same sweep + timeline sink set as
/// [`streaming`], plus the analytic backend's multi-granularity
/// reuse-distance histogram fold — one generation pass feeding every
/// sink a production suite run uses, at a trace length the
/// materialise-then-scan baseline cannot hold in memory.
fn streaming_large(n: usize, sizes: &[u64], chunk: usize) {
    let min_sets = |l: u64| {
        sizes
            .iter()
            .map(|&c| c / (l * u64::from(ASSOC)))
            .min()
            .unwrap()
    };
    let max_sets = |l: u64| {
        sizes
            .iter()
            .map(|&c| c / (l * u64::from(ASSOC)))
            .max()
            .unwrap()
    };
    let mut sinks: Vec<FoldSink> = LINES
        .iter()
        .map(|&l| {
            FoldSink::Sweep(
                StackDistSweep::new_range(
                    l,
                    min_sets(l).trailing_zeros(),
                    max_sets(l).trailing_zeros(),
                    ASSOC,
                    n as u64 / 5,
                )
                .expect("valid sweep"),
            )
        })
        .collect();
    sinks.push(FoldSink::Timeline(MissTimelineBuilder::new(phi_cache())));
    sinks.push(FoldSink::Hist(ReuseHistograms::new(
        8,
        128,
        1 << 14,
        n as u64 / 5,
    )));
    std::hint::black_box(stream::broadcast(trace(n), chunk, sinks));
}

/// Best-of-`reps` wall-clock seconds for one run of `f`.
fn time_best(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn stream_comparison(c: &mut Criterion) {
    let sizes = sizes();
    let chunk = stream::chunk_instructions();

    // Correctness gate: the streaming pipeline must answer the exact
    // same design points before its speedup means anything.
    let (base_grid, base_phis) = baseline(INSTRUCTIONS, &sizes);
    let (stream_grid, stream_phis) = streaming(INSTRUCTIONS, &sizes, chunk);
    assert_eq!(base_grid, stream_grid, "grid points diverged");
    assert_eq!(base_phis, stream_phis, "φ points diverged");

    let baseline_secs = time_best(1, || {
        std::hint::black_box(baseline(INSTRUCTIONS, &sizes));
    });
    let streaming_secs = time_best(2, || {
        std::hint::black_box(streaming(INSTRUCTIONS, &sizes, chunk));
    });
    let large_streaming_secs = time_best(1, || {
        streaming_large(LARGE_INSTRUCTIONS, &sizes, chunk);
    });

    let result = StreamBenchResult {
        grid_points: sizes.len() * LINES.len(),
        phi_points: phi_points().len(),
        instructions: INSTRUCTIONS,
        chunk_instructions: chunk,
        baseline_secs,
        streaming_secs,
        large_instructions: LARGE_INSTRUCTIONS,
        large_streaming_secs,
    };
    println!(
        "streaming pipeline ({} grid + {} φ points, {} instr, {}-instr chunks): \
         materialise-then-scan {:.3}s, streaming {:.3}s, speedup {:.1}x, {:.1} points/s; \
         {} instr streaming-only in {:.3}s ({:.0} instr/s)",
        result.grid_points,
        result.phi_points,
        result.instructions,
        result.chunk_instructions,
        result.baseline_secs,
        result.streaming_secs,
        result.speedup(),
        result.points_per_sec(),
        result.large_instructions,
        result.large_streaming_secs,
        result.large_instr_per_sec(),
    );
    let json = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stream.json");
    if let Err(e) = result.write_json(&json) {
        eprintln!("warning: could not write {}: {e}", json.display());
    }

    // A reduced criterion point tracks the pipeline's shape run to run
    // without re-paying the 5 M-instruction comparison per sample.
    let small = INSTRUCTIONS / 25;
    let mut group = c.benchmark_group("streaming_pipeline");
    group.bench_function("chunked_fold_200k", |b| {
        b.iter(|| streaming(small, &sizes, chunk));
    });
    group.finish();
}

criterion_group!(benches, stream_comparison);
criterion_main!(benches);
