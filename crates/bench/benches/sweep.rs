//! Design-space grid benchmark: per-configuration replay versus the
//! single-pass stack-distance sweep, on the Figure-6 grid (7 cache
//! sizes × 5 line sizes, two-way) over a SPEC92 proxy trace.
//!
//! Besides the criterion timings, the run asserts the two paths produce
//! identical points and records the wall-clock comparison in
//! `BENCH_sweep.json` at the workspace root.

use bench::sweep::SweepBenchResult;
use criterion::{criterion_group, criterion_main, Criterion};
use simcache::explore::{hit_ratio_grid, hit_ratio_grid_replay};
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::Instr;
use std::time::Instant;

const INSTRUCTIONS: usize = 120_000;
const WARMUP: u64 = INSTRUCTIONS as u64 / 5;
const LINES: [u64; 5] = [8, 16, 32, 64, 128];

fn sizes() -> Vec<u64> {
    (0..=6).map(|i| 1024u64 << i).collect()
}

fn trace() -> impl Iterator<Item = Instr> {
    spec92_trace(Spec92Program::Nasa7, 7).take(INSTRUCTIONS)
}

/// Best-of-`reps` wall-clock seconds for one run of `f`.
fn time_best(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn grid_comparison(c: &mut Criterion) {
    let sizes = sizes();

    // Correctness gate: the sweep must be bit-identical to the replay
    // before its speedup means anything.
    let fast = hit_ratio_grid(&sizes, &LINES, 2, trace, WARMUP).expect("valid grid");
    let replay = hit_ratio_grid_replay(&sizes, &LINES, 2, trace, WARMUP).expect("valid grid");
    assert_eq!(fast, replay, "sweep and replay grids diverged");

    let replay_secs = time_best(3, || {
        hit_ratio_grid_replay(&sizes, &LINES, 2, trace, WARMUP).expect("valid grid");
    });
    let sweep_secs = time_best(5, || {
        hit_ratio_grid(&sizes, &LINES, 2, trace, WARMUP).expect("valid grid");
    });

    let result = SweepBenchResult {
        grid_points: sizes.len() * LINES.len(),
        instructions: INSTRUCTIONS,
        replay_secs,
        sweep_secs,
    };
    println!(
        "figure6 grid ({} points, {} instr): replay {:.3}s, sweep {:.3}s, speedup {:.1}x, {:.1} points/s",
        result.grid_points,
        result.instructions,
        result.replay_secs,
        result.sweep_secs,
        result.speedup(),
        result.points_per_sec(),
    );
    let json = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json");
    if let Err(e) = result.write_json(&json) {
        eprintln!("warning: could not write {}: {e}", json.display());
    }

    let mut group = c.benchmark_group("figure6_grid");
    group.bench_function("single_pass_sweep", |b| {
        b.iter(|| hit_ratio_grid(&sizes, &LINES, 2, trace, WARMUP).expect("valid grid"));
    });
    group.bench_function("per_config_replay", |b| {
        b.iter(|| hit_ratio_grid_replay(&sizes, &LINES, 2, trace, WARMUP).expect("valid grid"));
    });
    group.finish();
}

criterion_group!(benches, grid_comparison);
criterion_main!(benches);
