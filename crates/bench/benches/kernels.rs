//! Criterion benchmarks of the simulation and analytic kernels.
//!
//! These time the machinery behind the experiments (trace generation,
//! cache simulation, CPU timing, the analytic sweeps), making the
//! harness double as a performance regression suite.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simcache::{Cache, CacheConfig, SectorCache, SectorConfig, VictimCache};
use simcpu::{Cpu, CpuConfig, L2Config, Prefetch, StallFeature};
use simmem::{BusWidth, MemoryTiming};
use simtrace::encode::TraceBuffer;
use simtrace::gen::{PatternTrace, TraceShape, ZipfWorkingSet};
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::Instr;
use smithval::{validate_all_panels, DesignTargetModel};
use tradeoff::equiv::traded_hit_ratio;
use tradeoff::{HitRatio, Machine, SystemConfig};

const N: usize = 50_000;

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(N as u64));
    for p in [Spec92Program::Nasa7, Spec92Program::Doduc] {
        g.bench_function(p.name(), |b| {
            b.iter(|| spec92_trace(p, 1).take(N).map(|i| i.pc.raw()).sum::<u64>())
        });
    }
    g.finish();
}

fn cache_simulation(c: &mut Criterion) {
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Swm256, 2).take(N).collect();
    let mut g = c.benchmark_group("cache_simulation");
    g.throughput(Throughput::Elements(N as u64));
    for (name, cfg) in [
        ("8K_2way_lru", CacheConfig::new(8 * 1024, 32, 2).unwrap()),
        ("64K_4way_lru", CacheConfig::new(64 * 1024, 32, 4).unwrap()),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || Cache::new(cfg),
                |mut cache| {
                    for i in &trace {
                        if let Some(m) = i.mem {
                            cache.access(m.op, m.addr);
                        }
                    }
                    cache.stats().hits()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn cpu_simulation(c: &mut Criterion) {
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Wave5, 3).take(N).collect();
    let mut g = c.benchmark_group("cpu_simulation");
    g.throughput(Throughput::Elements(N as u64));
    for stall in [StallFeature::FullStall, StallFeature::BusNotLocked3] {
        g.bench_function(stall.to_string(), |b| {
            b.iter_batched(
                || {
                    Cpu::new(
                        CpuConfig::baseline(
                            CacheConfig::new(8 * 1024, 32, 2).unwrap(),
                            MemoryTiming::new(BusWidth::new(4).unwrap(), 8),
                        )
                        .with_stall(stall),
                    )
                },
                |cpu| cpu.run(trace.iter().copied()).cycles,
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn analytic_kernels(c: &mut Criterion) {
    let base = SystemConfig::full_stalling(0.5);
    let doubled = base.with_bus_factor(2.0);
    let hr = HitRatio::new(0.95).unwrap();
    c.bench_function("traded_hit_ratio_sweep_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1000 {
                let m = Machine::new(4.0, 32.0, 2.0 + i as f64 * 0.05).unwrap();
                acc += traded_hit_ratio(&m, &base, &doubled, hr).unwrap();
            }
            acc
        })
    });
    c.bench_function("fig6_validation", |b| {
        let model = DesignTargetModel::default();
        b.iter(|| validate_all_panels(&model).unwrap().len())
    });
}

fn alternative_organisations(c: &mut Criterion) {
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Doduc, 4).take(N).collect();
    let mut g = c.benchmark_group("alternative_organisations");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("sector_64_8", |b| {
        b.iter_batched(
            || SectorCache::new(SectorConfig::new(8 * 1024, 64, 8, 2).unwrap()),
            |mut cache| {
                for i in &trace {
                    if let Some(m) = i.mem {
                        cache.access(m.op, m.addr);
                    }
                }
                cache.stats().hits()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("victim_dm_plus_4", |b| {
        b.iter_batched(
            || VictimCache::new(CacheConfig::new(8 * 1024, 32, 1).unwrap(), 4),
            |mut cache| {
                for i in &trace {
                    if let Some(m) = i.mem {
                        cache.access(m.op, m.addr);
                    }
                }
                cache.effective_hit_ratio()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn extended_cpu_paths(c: &mut Criterion) {
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Swm256, 5).take(N).collect();
    let mut g = c.benchmark_group("extended_cpu_paths");
    g.throughput(Throughput::Elements(N as u64));
    let base = || {
        CpuConfig::baseline(
            CacheConfig::new(8 * 1024, 32, 2).unwrap(),
            MemoryTiming::new(BusWidth::new(4).unwrap(), 8),
        )
    };
    g.bench_function("with_l2", |b| {
        b.iter_batched(
            || {
                Cpu::new(base().with_l2(L2Config::new(
                    CacheConfig::new(128 * 1024, 32, 4).unwrap(),
                    2,
                )))
            },
            |cpu| cpu.run(trace.iter().copied()).cycles,
            BatchSize::LargeInput,
        )
    });
    g.bench_function("with_prefetch", |b| {
        b.iter_batched(
            || Cpu::new(base().with_prefetch(Prefetch::NextLine)),
            |cpu| cpu.run(trace.iter().copied()).cycles,
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn trace_encoding(c: &mut Criterion) {
    let trace: Vec<Instr> = spec92_trace(Spec92Program::Ear, 6).take(N).collect();
    let mut g = c.benchmark_group("trace_encoding");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("encode", |b| {
        b.iter(|| TraceBuffer::encode(trace.iter().copied()).len())
    });
    let buf = TraceBuffer::encode(trace.iter().copied());
    g.bench_function("decode", |b| {
        b.iter(|| buf.iter().filter_map(Result::ok).count())
    });
    g.finish();
}

fn zipf_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf_sampling");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("zipf_64k_slots", |b| {
        b.iter_batched(
            || {
                PatternTrace::new(
                    ZipfWorkingSet::new(0, 64 * 1024, 8, 1.2, 0.2),
                    TraceShape::default(),
                    7,
                )
            },
            |trace| trace.take(N).filter(|i| i.mem.is_some()).count(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    trace_generation,
    cache_simulation,
    cpu_simulation,
    analytic_kernels,
    alternative_organisations,
    extended_cpu_paths,
    trace_encoding,
    zipf_sampling
);
criterion_main!(benches);
