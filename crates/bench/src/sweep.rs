//! EXP-SW — the single-pass design-space sweep engine.
//!
//! The Figure-6-style question — "how does the hit ratio move across
//! the whole (cache size × line size) grid for each workload?" — used
//! to cost one full trace replay per grid point. The sweep engine
//! answers it with one [`StackDistSweep`] pass per line size
//! (`O(|lines| · N)` instead of `O(|sizes| · |lines| · N)`), fed by the
//! chunked [`stream`] pipeline: the trace is generated (or folded from
//! the store) in bounded blocks and broadcast to every line-size sink,
//! so the sweep runs paper-scale traces without paper-scale memory.

use crate::registry::{ExpReport, Experiment, RunCtx};
use crate::stream;
use report::{Artifact, Table};
use simcache::explore::HitRatioPoint;
use simcache::stackdist::StackDistSweep;
use simtrace::spec92::Spec92Program;
use smithval::TableModel;
use std::path::Path;

/// Trace seed shared with the line-size experiment, so the sweep's
/// numbers are directly comparable to `linesize.csv`.
pub const SWEEP_SEED: u64 = 7;

/// The (cache size × line size) grid one sweep covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    /// Cache capacities in bytes (powers of two).
    pub cache_sizes: Vec<u64>,
    /// Line sizes in bytes (powers of two).
    pub line_sizes: Vec<u64>,
    /// Fixed associativity.
    pub assoc: u32,
    /// Instructions excluded from statistics.
    pub warmup: u64,
}

impl SweepGrid {
    /// The Figure-6-flavoured default grid: 1 KB – 64 KB, 8 B – 128 B
    /// lines, two-way.
    pub fn figure6(warmup: u64) -> Self {
        SweepGrid {
            cache_sizes: (0..=6).map(|i| 1024u64 << i).collect(),
            line_sizes: vec![8, 16, 32, 64, 128],
            assoc: 2,
            warmup,
        }
    }

    /// Grid points per workload.
    pub fn points(&self) -> usize {
        self.cache_sizes.len() * self.line_sizes.len()
    }

    /// Smallest set count any configuration of this grid needs at `line_bytes`.
    fn min_sets(&self, line_bytes: u64) -> u64 {
        self.cache_sizes
            .iter()
            .map(|&c| c / (line_bytes * u64::from(self.assoc)))
            .min()
            .expect("grid has cache sizes")
    }

    /// Largest set count any configuration of this grid needs at `line_bytes`.
    fn max_sets(&self, line_bytes: u64) -> u64 {
        self.cache_sizes
            .iter()
            .map(|&c| c / (line_bytes * u64::from(self.assoc)))
            .max()
            .expect("grid has cache sizes")
    }
}

/// One workload's measured grid, points in (cache size, line size)
/// order like [`simcache::explore::hit_ratio_grid`].
#[derive(Debug, Clone)]
pub struct WorkloadSweep {
    /// The workload.
    pub program: Spec92Program,
    /// Measured grid points.
    pub points: Vec<HitRatioPoint>,
}

/// Sweeps the grid for every workload, streaming: each workload's trace
/// is chunked ([`stream`]) into one [`StackDistSweep`] sink per line
/// size — already-materialised traces are folded in place
/// ([`stream::fold_slice`]), cold ones run the generate→fold pipeline
/// ([`stream::broadcast`]) without ever pinning the full trace, so peak
/// trace-resident memory is a few `REPRO_STREAM_CHUNK` blocks no matter
/// how long the trace is.
///
/// # Panics
///
/// Panics if a grid combination is not a valid cache geometry.
pub fn run_sweep(
    programs: &[Spec92Program],
    grid: &SweepGrid,
    instructions: usize,
) -> Vec<WorkloadSweep> {
    let chunk = stream::chunk_instructions();
    let sweeps: Vec<Vec<StackDistSweep>> = programs
        .iter()
        .map(|&program| {
            let sinks: Vec<StackDistSweep> = grid
                .line_sizes
                .iter()
                .map(|&line_bytes| {
                    StackDistSweep::new_range(
                        line_bytes,
                        grid.min_sets(line_bytes).trailing_zeros(),
                        grid.max_sets(line_bytes).trailing_zeros(),
                        grid.assoc,
                        grid.warmup,
                    )
                    .expect("valid grid line size")
                })
                .collect();
            match crate::tracestore::resident_trace(program, SWEEP_SEED, instructions) {
                Some(trace) => stream::fold_slice(trace.instrs(), chunk, sinks),
                None => stream::broadcast(
                    simtrace::workload::builtin_spec(program)
                        .compile(SWEEP_SEED)
                        .take(instructions),
                    chunk,
                    sinks,
                ),
            }
        })
        .collect();

    programs
        .iter()
        .enumerate()
        .map(|(pi, &program)| {
            let mut points = Vec::with_capacity(grid.points());
            for &cache_bytes in &grid.cache_sizes {
                for (li, &line_bytes) in grid.line_sizes.iter().enumerate() {
                    let sweep = &sweeps[pi][li];
                    let sets = cache_bytes / (line_bytes * u64::from(grid.assoc));
                    let stats = sweep.stats(sets.trailing_zeros(), grid.assoc);
                    points.push(HitRatioPoint {
                        cache_bytes,
                        line_bytes,
                        hit_ratio: stats.hit_ratio(),
                        flush_ratio: stats.flush_ratio(),
                    });
                }
            }
            WorkloadSweep { program, points }
        })
        .collect()
}

/// Converts one workload's measured points at `cache_bytes` into a
/// [`TableModel`], the bridge from the sweep engine into the Smith /
/// Figure 6 line-size methodology (`smithval`): the panels can then run
/// on *measured* miss ratios instead of the calibrated analytic model.
///
/// Returns `None` when the sweep has no points at that cache size.
pub fn measured_model(sweep: &WorkloadSweep, cache_bytes: u64) -> Option<TableModel> {
    let points: Vec<(f64, f64)> = sweep
        .points
        .iter()
        .filter(|p| p.cache_bytes == cache_bytes)
        .map(|p| (p.line_bytes as f64, 1.0 - p.hit_ratio))
        .collect();
    if points.is_empty() {
        None
    } else {
        Some(TableModel::new(cache_bytes as f64, points))
    }
}

/// The line size with the highest hit ratio at `cache_bytes`.
pub fn best_line(sweep: &WorkloadSweep, cache_bytes: u64) -> Option<u64> {
    sweep
        .points
        .iter()
        .filter(|p| p.cache_bytes == cache_bytes)
        .max_by(|a, b| a.hit_ratio.total_cmp(&b.hit_ratio))
        .map(|p| p.line_bytes)
}

/// Renders the sweep as a best-line-per-capacity table.
pub fn render(results: &[WorkloadSweep], grid: &SweepGrid) -> String {
    let mut header = vec!["program".to_string()];
    header.extend(
        grid.cache_sizes
            .iter()
            .map(|c| format!("best L @ {}K", c / 1024)),
    );
    let mut t = Table::new(header);
    for ws in results {
        let mut row = vec![ws.program.to_string()];
        for &c in &grid.cache_sizes {
            row.push(match best_line(ws, c) {
                Some(l) => format!("{l} B"),
                None => "-".to_string(),
            });
        }
        t.row(row);
    }
    format!(
        "Hit-ratio-optimal line size per capacity ({} grid points/workload, single-pass sweep):\n{}",
        grid.points(),
        t.render()
    )
}

/// The full measured grid as a typed `sweep.csv` artifact.
pub fn artifact(results: &[WorkloadSweep]) -> Artifact {
    let mut rows = Vec::new();
    for ws in results {
        for p in &ws.points {
            rows.push(vec![
                ws.program.to_string(),
                p.cache_bytes.to_string(),
                p.line_bytes.to_string(),
                format!("{:.6}", p.hit_ratio),
                format!("{:.6}", p.flush_ratio),
            ]);
        }
    }
    Artifact::csv(
        "sweep.csv",
        &[
            "program",
            "cache_bytes",
            "line_bytes",
            "hit_ratio",
            "flush_ratio",
        ],
        rows,
    )
}

/// Smith-selector agreement on *measured* miss ratios: for each
/// workload, feed its 16 KB sweep row into the Figure 6 panels as a
/// [`TableModel`] and check that Smith's Eq. 16 and the paper's Eq. 19
/// choose the same line size — the agreement must hold for any model,
/// measured tables included.
pub fn measured_validation(results: &[WorkloadSweep]) -> String {
    let cache_bytes = 16 * 1024;
    let mut t = Table::new(["program", "Smith Eq.16", "ours Eq.19", "agree"]);
    for ws in results {
        let Some(model) = measured_model(ws, cache_bytes) else {
            continue;
        };
        let Ok(validations) = smithval::validate_all_panels(&model) else {
            continue;
        };
        // Panel (a) is the canonical 16 KB configuration.
        for v in validations.iter().filter(|v| v.panel.starts_with("(a)")) {
            t.row([
                ws.program.to_string(),
                format!("{} B", v.smith_line),
                format!("{} B", v.eq19_line),
                v.selectors_agree.to_string(),
            ]);
        }
    }
    format!(
        "\nSelector agreement on measured 16 KB miss ratios:\n{}",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "sweep"
    }
    fn title(&self) -> &'static str {
        "Design-space sweep"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured", "engine"]
    }
    fn depends_on_traces(&self) -> &'static [&'static str] {
        &[crate::registry::traces::SWEEP7]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let instructions = ctx.instructions;
        let grid = SweepGrid::figure6(instructions as u64 / 5);
        let results = run_sweep(&Spec92Program::ALL, &grid, instructions);
        let mut out = render(&results, &grid);
        out.push_str(&measured_validation(&results));
        ExpReport {
            section: out,
            artifacts: vec![artifact(&results)],
        }
    }
}

/// Entry point shared by the binary and the `run_all` driver.
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

/// Timing comparison between the per-configuration replay and the
/// single-pass sweep on the same grid, as recorded in
/// `BENCH_sweep.json` by the `sweep` benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepBenchResult {
    /// Grid points measured.
    pub grid_points: usize,
    /// Trace length in instructions.
    pub instructions: usize,
    /// Wall-clock seconds for the per-configuration replay grid.
    pub replay_secs: f64,
    /// Wall-clock seconds for the single-pass sweep grid.
    pub sweep_secs: f64,
}

impl SweepBenchResult {
    /// Replay time over sweep time.
    pub fn speedup(&self) -> f64 {
        self.replay_secs / self.sweep_secs
    }

    /// Grid points per second through the sweep engine.
    pub fn points_per_sec(&self) -> f64 {
        self.grid_points as f64 / self.sweep_secs
    }

    /// Serialises the record as a small JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"figure6_grid\",\n  \"grid_points\": {},\n  \"instructions\": {},\n  \"replay_secs\": {:.6},\n  \"sweep_secs\": {:.6},\n  \"speedup\": {:.2},\n  \"points_per_sec\": {:.1}\n}}\n",
            self.grid_points,
            self.instructions,
            self.replay_secs,
            self.sweep_secs,
            self.speedup(),
            self.points_per_sec(),
        )
    }

    /// Writes the JSON record to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error on failure.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcache::explore::hit_ratio_grid_replay;
    use simtrace::spec92::spec92_trace;

    fn small_grid() -> SweepGrid {
        SweepGrid {
            cache_sizes: vec![1024, 4096],
            line_sizes: vec![16, 32],
            assoc: 2,
            warmup: 1_000,
        }
    }

    #[test]
    fn sweep_matches_per_config_replay_exactly() {
        let grid = small_grid();
        let programs = [Spec92Program::Ear, Spec92Program::Nasa7];
        let n = 8_000;
        let results = run_sweep(&programs, &grid, n);
        for ws in &results {
            let replay = hit_ratio_grid_replay(
                &grid.cache_sizes,
                &grid.line_sizes,
                grid.assoc,
                || spec92_trace(ws.program, SWEEP_SEED).take(n),
                grid.warmup,
            )
            .unwrap();
            assert_eq!(ws.points, replay, "{}", ws.program);
        }
    }

    #[test]
    fn grid_points_and_order() {
        let grid = small_grid();
        let results = run_sweep(&[Spec92Program::Ear], &grid, 2_000);
        assert_eq!(results.len(), 1);
        let points = &results[0].points;
        assert_eq!(points.len(), grid.points());
        assert_eq!(points[0].cache_bytes, 1024);
        assert_eq!(points[0].line_bytes, 16);
        assert_eq!(points[1].line_bytes, 32);
        assert_eq!(points[2].cache_bytes, 4096);
    }

    #[test]
    fn render_lists_programs_and_artifact_covers_grid() {
        let grid = small_grid();
        let results = run_sweep(&[Spec92Program::Ear], &grid, 2_000);
        let text = render(&results, &grid);
        assert!(text.contains("ear"));
        assert!(text.contains("best L @ 1K"));
        let a = artifact(&results);
        assert_eq!(a.name, "sweep.csv");
        match &a.kind {
            report::ArtifactKind::Csv { rows, .. } => assert_eq!(rows.len(), grid.points()),
            other => panic!("expected CSV artifact, got {other:?}"),
        }
    }

    #[test]
    fn bench_record_round_trips_the_numbers() {
        let r = SweepBenchResult {
            grid_points: 35,
            instructions: 60_000,
            replay_secs: 7.0,
            sweep_secs: 0.5,
        };
        assert!((r.speedup() - 14.0).abs() < 1e-12);
        assert!((r.points_per_sec() - 70.0).abs() < 1e-9);
        let json = r.to_json();
        for key in [
            "grid_points",
            "replay_secs",
            "sweep_secs",
            "speedup",
            "points_per_sec",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn measured_model_bridges_into_smithval() {
        use smithval::MissRatioModel;
        let grid = SweepGrid::figure6(500);
        let results = run_sweep(&[Spec92Program::Ear], &grid, 4_000);
        let model = measured_model(&results[0], 16 * 1024).expect("16 KB row exists");
        assert_eq!(model.points().len(), grid.line_sizes.len());
        for p in &results[0].points {
            if p.cache_bytes == 16 * 1024 {
                let m = model.miss_ratio(16.0 * 1024.0, p.line_bytes as f64);
                assert!(
                    (m - (1.0 - p.hit_ratio)).abs() < 1e-12,
                    "L={}",
                    p.line_bytes
                );
            }
        }
        assert!(
            measured_model(&results[0], 3).is_none(),
            "no points at 3 bytes"
        );
        let text = measured_validation(&results);
        assert!(text.contains("ear"));
        assert!(
            !text.contains("false"),
            "selectors must agree on measured tables:\n{text}"
        );
    }

    #[test]
    fn figure6_grid_shape() {
        let g = SweepGrid::figure6(0);
        assert_eq!(g.cache_sizes.first(), Some(&1024));
        assert_eq!(g.cache_sizes.last(), Some(&(64 * 1024)));
        assert_eq!(g.points(), 35);
    }
}
