//! EXP-F6 — Figure 6: validation against Smith's design-target optimal
//! line sizes, four panels.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{Artifact, Chart, Table};
use smithval::fig6::CANDIDATE_LINES;
use smithval::{validate_all_panels, DesignTargetModel, MissRatioModel, PanelValidation, PANELS};
use tradeoff::TradeoffError;

/// The bus-speed sweep of the figure's x-axis.
pub fn default_betas() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.5).collect()
}

/// Renders all four panels (reduced delay per 100 references vs β) plus
/// the validation table, returning the section and the typed
/// `fig6.csv` artifact.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn report(model: &dyn MissRatioModel) -> Result<ExpReport, TradeoffError> {
    let betas = default_betas();
    let mut out = String::new();
    let mut rows = Vec::new();

    for panel in &PANELS {
        let mut chart = Chart::new(
            format!("Figure 6 {}", panel.name),
            "normalized bus speed (beta)",
            "reduced delay / 100 refs",
            60,
            14,
        );
        for &line in CANDIDATE_LINES.iter().skip(1) {
            let series = panel.reduced_delay_series(model, line, &betas)?;
            for &(beta, v) in &series {
                rows.push(vec![
                    panel.name.to_string(),
                    format!("{line}"),
                    format!("{beta}"),
                    format!("{v:.4}"),
                ]);
            }
            chart.series(format!("L={line}"), series);
        }
        out.push_str(&chart.render());
        out.push('\n');
    }

    let validations = validate_all_panels(model)?;
    out.push_str(&validation_table(&validations));

    Ok(ExpReport {
        section: out,
        artifacts: vec![Artifact::csv(
            "fig6.csv",
            &["panel", "line_bytes", "beta", "reduced_delay_x100"],
            rows,
        )],
    })
}

/// The per-panel validation table.
pub fn validation_table(validations: &[PanelValidation]) -> String {
    let mut t = Table::new([
        "panel",
        "Smith Eq.16",
        "ours Eq.19",
        "agree",
        "matches paper",
    ]);
    for v in validations {
        t.row([
            v.panel.to_string(),
            format!("{} B", v.smith_line),
            format!("{} B", v.eq19_line),
            v.selectors_agree.to_string(),
            v.matches_paper.to_string(),
        ]);
    }
    t.render()
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "fig6"
    }
    fn title(&self) -> &'static str {
        "Figure 6"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "figure", "analytic", "validation"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        report(&DesignTargetModel::default()).expect("canonical model evaluates")
    }
}

/// Entry point shared by the binary and the suite driver.
///
/// # Panics
///
/// Panics if the canonical model fails evaluation (it does not).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_panels_and_validation() {
        let model = DesignTargetModel::default();
        let rep = report(&model).unwrap();
        let text = &rep.section;
        for panel in &PANELS {
            assert!(text.contains(panel.name), "missing {}", panel.name);
        }
        assert!(text.contains("matches paper"));
        assert!(!text.contains("false"), "all panels must validate:\n{text}");
        assert_eq!(rep.artifacts.len(), 1);
        assert_eq!(rep.artifacts[0].name, "fig6.csv");
    }

    #[test]
    fn validation_table_lists_four_rows() {
        let model = DesignTargetModel::default();
        let v = validate_all_panels(&model).unwrap();
        assert_eq!(v.len(), 4);
        let table = validation_table(&v);
        assert_eq!(table.lines().count(), 6); // header + sep + 4 rows
    }
}
