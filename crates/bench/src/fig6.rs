//! EXP-F6 — Figure 6: validation against Smith's design-target optimal
//! line sizes, four panels.

use report::{write_csv, Chart, Table};
use smithval::fig6::CANDIDATE_LINES;
use smithval::{validate_all_panels, DesignTargetModel, MissRatioModel, PanelValidation, PANELS};
use tradeoff::TradeoffError;

/// The bus-speed sweep of the figure's x-axis.
pub fn default_betas() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.5).collect()
}

/// Renders all four panels (reduced delay per 100 references vs β) plus
/// the validation table, writing `fig6.csv` under `dir`.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn report(model: &dyn MissRatioModel, dir: &std::path::Path) -> Result<String, TradeoffError> {
    let betas = default_betas();
    let mut out = String::new();
    let mut rows = Vec::new();

    for panel in &PANELS {
        let mut chart = Chart::new(
            format!("Figure 6 {}", panel.name),
            "normalized bus speed (beta)",
            "reduced delay / 100 refs",
            60,
            14,
        );
        for &line in CANDIDATE_LINES.iter().skip(1) {
            let series = panel.reduced_delay_series(model, line, &betas)?;
            for &(beta, v) in &series {
                rows.push(vec![
                    panel.name.to_string(),
                    format!("{line}"),
                    format!("{beta}"),
                    format!("{v:.4}"),
                ]);
            }
            chart.series(format!("L={line}"), series);
        }
        out.push_str(&chart.render());
        out.push('\n');
    }

    let validations = validate_all_panels(model)?;
    out.push_str(&validation_table(&validations));

    let csv = dir.join("fig6.csv");
    if let Err(e) = write_csv(
        &csv,
        &["panel", "line_bytes", "beta", "reduced_delay_x100"],
        &rows,
    ) {
        eprintln!("warning: could not write {}: {e}", csv.display());
    }
    Ok(out)
}

/// The per-panel validation table.
pub fn validation_table(validations: &[PanelValidation]) -> String {
    let mut t = Table::new([
        "panel",
        "Smith Eq.16",
        "ours Eq.19",
        "agree",
        "matches paper",
    ]);
    for v in validations {
        t.row([
            v.panel.to_string(),
            format!("{} B", v.smith_line),
            format!("{} B", v.eq19_line),
            v.selectors_agree.to_string(),
            v.matches_paper.to_string(),
        ]);
    }
    t.render()
}

/// Entry point shared by the binary and the `run_all` driver.
///
/// # Panics
///
/// Panics if the canonical model fails evaluation (it does not).
pub fn main_report() -> String {
    let model = DesignTargetModel::default();
    report(&model, &crate::common::results_dir()).expect("canonical model evaluates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_panels_and_validation() {
        let tmp = std::env::temp_dir().join("fig6_test_results");
        let model = DesignTargetModel::default();
        let text = report(&model, &tmp).unwrap();
        for panel in &PANELS {
            assert!(text.contains(panel.name), "missing {}", panel.name);
        }
        assert!(text.contains("matches paper"));
        assert!(!text.contains("false"), "all panels must validate:\n{text}");
        assert!(tmp.join("fig6.csv").exists());
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn validation_table_lists_four_rows() {
        let model = DesignTargetModel::default();
        let v = validate_all_panels(&model).unwrap();
        assert_eq!(v.len(), 4);
        let table = validation_table(&v);
        assert_eq!(table.lines().count(), 6); // header + sep + 4 rows
    }
}
