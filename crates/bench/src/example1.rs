//! EXP-EX1 — Example 1 (Section 5.2): the Short & Levy case study.
//!
//! Short & Levy's trace-driven data gives a full-blocking cache 91 % hit
//! ratio at 8 KB and 95.5 % at 32 KB. The paper's claim:
//!
//! * Case 1: a 64-bit-bus processor with the 8 KB cache performs like a
//!   32-bit-bus processor with the 32 KB cache.
//! * Case 2: a 64-bit bus with 32 KB performs like a 32-bit bus with
//!   128 KB.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use tradeoff::equiv::hit_gain_equivalent;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// One equivalence case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case label.
    pub name: String,
    /// Hit ratio of the small cache (64-bit side).
    pub small_hr: f64,
    /// Hit ratio the 32-bit side needs for equal performance (model).
    pub required_hr: f64,
    /// The measured hit ratio of the bigger cache (from Short & Levy).
    pub bigger_cache_hr: f64,
}

impl CaseResult {
    /// Whether the model's requirement is met by the bigger cache within
    /// `tol` (absolute hit-ratio difference).
    pub fn holds_within(&self, tol: f64) -> bool {
        (self.required_hr - self.bigger_cache_hr).abs() <= tol
    }
}

/// Evaluates both cases across a β_m sweep and returns the results at
/// each β.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn run(betas: &[f64]) -> Result<Vec<(f64, Vec<CaseResult>)>, TradeoffError> {
    // Short & Levy hit ratios: 8K → 91 %, 32K → 95.5 %; the paper's
    // Case 2 extrapolates 128 K with the same ΔHR law.
    let base = SystemConfig::full_stalling(0.5);
    let doubled = base.with_bus_factor(2.0);
    let mut out = Vec::new();
    for &beta in betas {
        let machine = Machine::new(4.0, 32.0, beta)?;
        let mut cases = Vec::new();
        for (name, small_hr, big_hr) in [
            ("Case 1: 64-bit+8K vs 32-bit+32K", 0.91, 0.955),
            ("Case 2: 64-bit+32K vs 32-bit+128K", 0.955, 0.9775),
        ] {
            let hr2 = HitRatio::new(small_hr)?;
            // Eq. 7: the hit-ratio increase equal to doubling the bus.
            let gain = hit_gain_equivalent(&machine, &base, &doubled, hr2)?;
            cases.push(CaseResult {
                name: name.to_string(),
                small_hr,
                required_hr: small_hr + gain,
                bigger_cache_hr: big_hr,
            });
        }
        out.push((beta, cases));
    }
    Ok(out)
}

/// Renders the case-study table.
pub fn render(results: &[(f64, Vec<CaseResult>)]) -> String {
    let mut t = Table::new([
        "beta_m",
        "case",
        "HR small cache",
        "HR needed (32-bit)",
        "HR bigger cache",
        "holds (±1%)",
    ]);
    for (beta, cases) in results {
        for c in cases {
            t.row([
                format!("{beta}"),
                c.name.clone(),
                format!("{:.2}%", 100.0 * c.small_hr),
                format!("{:.2}%", 100.0 * c.required_hr),
                format!("{:.2}%", 100.0 * c.bigger_cache_hr),
                c.holds_within(0.01).to_string(),
            ]);
        }
    }
    format!(
        "Example 1 — Short & Levy case study (L=32, D=4→8, α=0.5)\n{}",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "example1"
    }
    fn title(&self) -> &'static str {
        "Example 1"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "analytic"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        let results = run(&[4.0, 8.0, 16.0, 32.0]).expect("canonical parameters valid");
        ExpReport::text_only(render(&results))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_holds_for_moderate_memory_cycles() {
        // 91 % + gain ≈ 95.5 %: the gain law gives 0.5–0.6 of (1−HR) =
        // 4.5–5.4 %; Short & Levy's 4.5 % jump matches at the slow end.
        let results = run(&[8.0, 16.0, 32.0]).unwrap();
        for (beta, cases) in &results {
            assert!(
                cases[0].holds_within(0.012),
                "β={beta}: required {:.4} vs measured 0.955",
                cases[0].required_hr
            );
        }
    }

    #[test]
    fn case2_holds_for_moderate_memory_cycles() {
        let results = run(&[8.0, 16.0, 32.0]).unwrap();
        for (beta, cases) in &results {
            assert!(
                cases[1].holds_within(0.012),
                "β={beta}: required {:.4} vs 0.9775",
                cases[1].required_hr
            );
        }
    }

    #[test]
    fn gain_is_within_paper_band() {
        // 0.5(1−HR) ≤ gain ≤ 0.6(1−HR) for L ≥ 2D, α = 0.5.
        let results = run(&[2.0, 8.0, 64.0]).unwrap();
        for (_, cases) in &results {
            for c in cases {
                let gain = c.required_hr - c.small_hr;
                let miss = 1.0 - c.small_hr;
                assert!(gain >= 0.5 * miss - 1e-9 && gain <= 0.6 * miss + 1e-9);
            }
        }
    }

    #[test]
    fn render_mentions_both_cases() {
        let text = main_report();
        assert!(text.contains("Case 1") && text.contains("Case 2"));
    }
}
