//! EXP-X13 — associativity and replacement policy, priced in hit-ratio
//! currency.
//!
//! The paper holds the cache organisation fixed (two-way LRU) and varies
//! everything around it; this ablation turns the dial the paper left
//! alone. Doubling associativity is "worth" whatever hit ratio it buys —
//! directly comparable to the Figure 3–5 features — and the replacement
//! policy's effect shows how much of that worth is LRU-specific.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcache::{Cache, CacheConfig, Replacement};
use simtrace::spec92::{spec92_trace, Spec92Program};

/// Hit ratio of one (associativity, policy) point on one workload.
pub fn hit_ratio(
    program: Spec92Program,
    assoc: u32,
    replacement: Replacement,
    instructions: usize,
) -> f64 {
    let cfg = CacheConfig::new(8 * 1024, 32, assoc)
        .expect("valid cache")
        .with_replacement(replacement);
    let mut cache = Cache::new(cfg);
    for instr in spec92_trace(program, 0xA550).take(instructions) {
        if let Some(m) = instr.mem {
            cache.access(m.op, m.addr);
        }
    }
    cache.stats().hit_ratio()
}

/// The associativity ladder per workload (LRU).
pub fn assoc_ladder(instructions: usize) -> Vec<(Spec92Program, Vec<f64>)> {
    Spec92Program::ALL
        .iter()
        .map(|&p| {
            let hrs = [1u32, 2, 4, 8]
                .iter()
                .map(|&a| hit_ratio(p, a, Replacement::Lru, instructions))
                .collect();
            (p, hrs)
        })
        .collect()
}

/// The replacement-policy spread at 2-way, per workload.
pub fn policy_spread(instructions: usize) -> Vec<(Spec92Program, Vec<(Replacement, f64)>)> {
    let policies = [
        Replacement::Lru,
        Replacement::Fifo,
        Replacement::Random,
        Replacement::TreePlru,
    ];
    Spec92Program::ALL
        .iter()
        .map(|&p| {
            let hrs = policies
                .iter()
                .map(|&r| (r, hit_ratio(p, 2, r, instructions)))
                .collect();
            (p, hrs)
        })
        .collect()
}

/// Renders both tables.
pub fn render(
    ladder: &[(Spec92Program, Vec<f64>)],
    spread: &[(Spec92Program, Vec<(Replacement, f64)>)],
) -> String {
    let mut a = Table::new(["program", "1-way", "2-way", "4-way", "8-way", "ΔHR 1→2-way"]);
    for (p, hrs) in ladder {
        a.row([
            p.to_string(),
            format!("{:.2}%", 100.0 * hrs[0]),
            format!("{:.2}%", 100.0 * hrs[1]),
            format!("{:.2}%", 100.0 * hrs[2]),
            format!("{:.2}%", 100.0 * hrs[3]),
            format!("{:+.2}%", 100.0 * (hrs[1] - hrs[0])),
        ]);
    }
    let mut b = Table::new(["program", "LRU", "FIFO", "random", "tree-PLRU"]);
    for (p, hrs) in spread {
        let mut row = vec![p.to_string()];
        row.extend(hrs.iter().map(|(_, h)| format!("{:.2}%", 100.0 * h)));
        b.row(row);
    }
    format!(
        "Associativity ladder (8K, L=32, LRU):\n{}\n\
         Replacement policy at 2-way (8K, L=32):\n{}\
         The 1→2-way ΔHR column lands on the same axis as Figures 3–5: on several\n\
         workloads one extra way is worth more than the BNL feature and rivals the\n\
         write buffers.\n",
        a.render(),
        b.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "assoc"
    }
    fn title(&self) -> &'static str {
        "Associativity & replacement"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let n = ctx.instructions;
        ExpReport::text_only(render(&assoc_ladder(n), &policy_spread(n)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associativity_mostly_helps_modulo_lru_cyclic_thrash() {
        // LRU is not a stack algorithm across associativities: cyclic
        // sweeps slightly larger than a set's share (ear's loop nest)
        // genuinely lose hit ratio as ways grow. Allow that pathology a
        // bounded 3 % while requiring the direct-mapped → 2-way step to
        // help or be neutral everywhere.
        for (p, hrs) in assoc_ladder(30_000) {
            assert!(
                hrs[1] >= hrs[0] - 0.005,
                "{p}: 2-way must not lose to 1-way: {hrs:?}"
            );
            for w in hrs.windows(2) {
                assert!(w[1] >= w[0] - 0.03, "{p}: {hrs:?}");
            }
        }
    }

    #[test]
    fn lru_beats_random_on_reuse_heavy_code() {
        let lru = hit_ratio(Spec92Program::Ear, 2, Replacement::Lru, 30_000);
        let rand = hit_ratio(Spec92Program::Ear, 2, Replacement::Random, 30_000);
        assert!(lru >= rand - 0.005, "LRU {lru} vs random {rand}");
    }

    #[test]
    fn plru_tracks_lru_closely_at_two_way() {
        // Tree-PLRU with two ways *is* LRU.
        for p in [Spec92Program::Nasa7, Spec92Program::Doduc] {
            let lru = hit_ratio(p, 2, Replacement::Lru, 20_000);
            let plru = hit_ratio(p, 2, Replacement::TreePlru, 20_000);
            assert!((lru - plru).abs() < 1e-12, "{p}: {lru} vs {plru}");
        }
    }

    #[test]
    fn render_contains_both_tables() {
        let n = 10_000;
        let text = render(&assoc_ladder(n), &policy_spread(n));
        assert!(text.contains("1-way") && text.contains("tree-PLRU"));
    }
}
