//! EXP-X2 — Section 5.4.1: when to use a larger line size.
//!
//! Two complementary views:
//!
//! 1. Analytic: the minimum hit-ratio gain `ΔEHR` a larger line must
//!    deliver (Eq. 14), swept over line size and memory speed.
//! 2. Simulated: hit ratios *measured* by the cache simulator on a SPEC92
//!    proxy feed the optimal-line selectors, closing the loop between
//!    substrate and model.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{Artifact, Table};
use simcache::explore::hit_ratio_grid;
use simtrace::spec92::Spec92Program;
use tradeoff::linesize::{
    miss_count_ratio, optimal_line_eq19, optimal_line_smith, required_hit_gain, FillTiming,
    LineCandidate,
};
use tradeoff::{HitRatio, TradeoffError};

/// The analytic ΔEHR table: rows are larger lines, columns are `c`
/// values, base line 8 B at hit ratio `hr0`.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn required_gain_table(hr0: f64, beta: f64, cs: &[f64]) -> Result<String, TradeoffError> {
    let hr0 = HitRatio::new(hr0)?;
    let mut header = vec!["L* (bytes)".to_string()];
    header.extend(cs.iter().map(|c| format!("ΔEHR @ c={c}")));
    let mut t = Table::new(header);
    for l_star in [16.0, 32.0, 64.0, 128.0] {
        let mut row = vec![format!("{l_star}")];
        for &c in cs {
            let timing = FillTiming::new(c, beta)?;
            let r = miss_count_ratio(&timing, 4.0, 8.0, l_star, 0.5, 0.5)?;
            row.push(format!("{:.3}%", 100.0 * required_hit_gain(r, hr0)));
        }
        t.row(row);
    }
    Ok(t.render())
}

/// The simulated view: measure hit ratios across line sizes on a proxy
/// workload, then let both selectors pick the optimal line.
///
/// Returns `(candidates, smith's pick, eq19's pick)`.
///
/// # Errors
///
/// Propagates cache-configuration and model errors (stringified).
pub fn simulated_selection(
    program: Spec92Program,
    cache_bytes: u64,
    instructions: usize,
    timing: &FillTiming,
) -> Result<(Vec<LineCandidate>, f64, f64), String> {
    let lines = [8u64, 16, 32, 64, 128];
    // The trace comes from the shared store at the sweep seed, so this
    // experiment and the design-space sweep share one materialisation.
    let trace = crate::tracestore::spec_trace(program, crate::sweep::SWEEP_SEED, instructions);
    let points = hit_ratio_grid(
        &[cache_bytes],
        &lines,
        2,
        || trace.iter().copied(),
        instructions as u64 / 5,
    )
    .map_err(|e| e.to_string())?;
    let candidates: Vec<LineCandidate> = points
        .iter()
        .map(|p| {
            Ok(LineCandidate {
                line_bytes: p.line_bytes as f64,
                hit_ratio: HitRatio::new(p.hit_ratio).map_err(|e| e.to_string())?,
            })
        })
        .collect::<Result<_, String>>()?;
    let smith = optimal_line_smith(timing, 4.0, &candidates).map_err(|e| e.to_string())?;
    let ours = optimal_line_eq19(timing, 4.0, &candidates).map_err(|e| e.to_string())?;
    Ok((candidates, smith.line_bytes, ours.line_bytes))
}

/// Builds the full section plus the typed `linesize.csv` artifact.
///
/// # Panics
///
/// Panics if the canonical parameters were invalid (they are not).
pub fn report(instructions: usize) -> ExpReport {
    let mut out = String::new();
    out.push_str("Required hit-ratio gain ΔEHR over an 8-byte line (HR₀ = 95%, β = 1):\n");
    out.push_str(
        &required_gain_table(0.95, 1.0, &[2.0, 5.0, 10.0, 20.0])
            .expect("canonical parameters valid"),
    );
    out.push('\n');

    let timing = FillTiming::new(7.0, 1.0).expect("valid timing");
    let mut t = Table::new(["program", "measured HR by line", "Smith pick", "Eq.19 pick"]);
    let mut rows_csv = Vec::new();
    for p in [
        Spec92Program::Nasa7,
        Spec92Program::Doduc,
        Spec92Program::Ear,
    ] {
        match simulated_selection(p, 8 * 1024, instructions, &timing) {
            Ok((cands, smith, ours)) => {
                let hrs: Vec<String> = cands
                    .iter()
                    .map(|c| format!("{}B:{:.1}%", c.line_bytes, 100.0 * c.hit_ratio.value()))
                    .collect();
                for c in &cands {
                    rows_csv.push(vec![
                        p.to_string(),
                        format!("{}", c.line_bytes),
                        format!("{:.4}", c.hit_ratio.value()),
                    ]);
                }
                t.row([
                    p.to_string(),
                    hrs.join(" "),
                    format!("{smith} B"),
                    format!("{ours} B"),
                ]);
            }
            Err(e) => {
                t.row([
                    p.to_string(),
                    format!("error: {e}"),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    out.push_str("Optimal line from *measured* hit ratios (8K two-way, c=7, β=1):\n");
    out.push_str(&t.render());
    ExpReport {
        section: out,
        artifacts: vec![Artifact::csv(
            "linesize.csv",
            &["program", "line_bytes", "hit_ratio"],
            rows_csv,
        )],
    }
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "linesize"
    }
    fn title(&self) -> &'static str {
        "Line-size analysis"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "measured", "analytic"]
    }
    fn depends_on_traces(&self) -> &'static [&'static str] {
        &[crate::registry::traces::SWEEP7]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        report(ctx.instructions.min(60_000))
    }
}

/// Entry point shared by the binary and the `run_all` driver.
///
/// # Panics
///
/// Panics if the canonical parameters were invalid (they are not).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_gain_falls_with_latency() {
        // At higher c the transfer overhead of a big line matters less,
        // so the required gain falls.
        let hr0 = HitRatio::new(0.95).unwrap();
        let gain_at = |c: f64| {
            let t = FillTiming::new(c, 2.0).unwrap();
            let r = miss_count_ratio(&t, 4.0, 8.0, 64.0, 0.5, 0.5).unwrap();
            required_hit_gain(r, hr0)
        };
        assert!(gain_at(2.0) > gain_at(20.0));
    }

    #[test]
    fn selectors_agree_on_measured_curves() {
        // The paper's validation, but on hit ratios measured by our own
        // cache simulator rather than a parametric model.
        for (c, beta) in [(3.0, 0.5), (7.0, 1.0), (15.0, 2.0)] {
            let timing = FillTiming::new(c, beta).unwrap();
            let (_, smith, ours) =
                simulated_selection(Spec92Program::Nasa7, 8 * 1024, 40_000, &timing).unwrap();
            assert_eq!(smith, ours, "selectors disagree at c={c} β={beta}");
        }
    }

    #[test]
    fn strided_program_prefers_large_lines_when_bus_is_fast() {
        let timing = FillTiming::new(20.0, 0.5).unwrap();
        let (_, smith, _) =
            simulated_selection(Spec92Program::Swm256, 8 * 1024, 40_000, &timing).unwrap();
        assert!(
            smith >= 32.0,
            "sequential code with cheap transfer wants big lines: {smith}"
        );
    }

    #[test]
    fn table_renders() {
        let text = required_gain_table(0.95, 1.0, &[2.0, 10.0]).unwrap();
        assert!(text.contains("ΔEHR @ c=2"));
        assert!(text.contains("128"));
    }
}
