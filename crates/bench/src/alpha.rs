//! EXP-X6 — flush-ratio (α) sensitivity ablation.
//!
//! Every figure of the paper fixes `α = 0.5` "considering the average
//! situation". This ablation sweeps α and reports how each conclusion
//! moves: the hit ratio each feature trades, the feature ranking, and
//! the pipelining crossover. The headline: the ranking is α-stable, but
//! the *write buffers* curve scales almost linearly in α (their whole
//! value is hiding flushes), and the pipelining crossover versus write
//! buffers shifts with α while the one versus bus doubling does not.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{Chart, Table};
use tradeoff::crossover::{pipelined_vs_double_bus, pipelined_vs_write_buffers};
use tradeoff::equiv::traded_hit_ratio;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// The α grid of the ablation.
pub const ALPHAS: [f64; 6] = [0.0, 0.2, 0.4, 0.5, 0.6, 0.8];

/// ΔHR per feature at one α.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaPoint {
    /// Flush ratio.
    pub alpha: f64,
    /// ΔHR of doubling the bus.
    pub bus: f64,
    /// ΔHR of write buffers.
    pub write_buffers: f64,
    /// ΔHR of pipelined memory (q = 2).
    pub pipelined: f64,
}

/// Sweeps α at a fixed machine point.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn run(machine: &Machine, base_hr: HitRatio) -> Result<Vec<AlphaPoint>, TradeoffError> {
    ALPHAS
        .iter()
        .map(|&alpha| {
            let base = SystemConfig::full_stalling(alpha);
            Ok(AlphaPoint {
                alpha,
                bus: traded_hit_ratio(machine, &base, &base.with_bus_factor(2.0), base_hr)?,
                write_buffers: traded_hit_ratio(
                    machine,
                    &base,
                    &base.with_write_buffers(),
                    base_hr,
                )?,
                pipelined: traded_hit_ratio(
                    machine,
                    &base,
                    &base.with_pipelined_memory(2.0),
                    base_hr,
                )?,
            })
        })
        .collect()
}

/// Renders the ablation chart plus the crossover-shift table.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn report() -> Result<String, TradeoffError> {
    let machine = Machine::new(4.0, 32.0, 8.0)?;
    let hr = HitRatio::new(0.95)?;
    let points = run(&machine, hr)?;

    let mut chart = Chart::new(
        "ΔHR vs flush ratio α (L=32, D=4, β=8, HR=95%)",
        "alpha",
        "traded HR %",
        50,
        12,
    );
    chart.series(
        "doubling bus",
        points.iter().map(|p| (p.alpha, 100.0 * p.bus)).collect(),
    );
    chart.series(
        "write buffers",
        points
            .iter()
            .map(|p| (p.alpha, 100.0 * p.write_buffers))
            .collect(),
    );
    chart.series(
        "pipelined",
        points
            .iter()
            .map(|p| (p.alpha, 100.0 * p.pipelined))
            .collect(),
    );

    let mut t = Table::new([
        "alpha",
        "β* pipelined vs bus",
        "β* pipelined vs write buffers",
    ]);
    for &alpha in &ALPHAS {
        let vs_bus =
            pipelined_vs_double_bus(8.0, 2.0).map_or("never".to_string(), |b| format!("{b:.2}"));
        let vs_wb = pipelined_vs_write_buffers(8.0, 2.0, alpha)
            .map_or("never".to_string(), |b| format!("{b:.2}"));
        t.row([format!("{alpha}"), vs_bus, vs_wb]);
    }
    Ok(format!(
        "{}\nCrossover shifts with α:\n{}",
        chart.render(),
        t.render()
    ))
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "alpha"
    }
    fn title(&self) -> &'static str {
        "Flush-ratio ablation"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "analytic"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(report().expect("canonical parameters valid"))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<AlphaPoint> {
        run(
            &Machine::new(4.0, 32.0, 8.0).unwrap(),
            HitRatio::new(0.95).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn write_buffers_worth_nothing_without_flushes() {
        let p0 = &points()[0];
        assert_eq!(p0.alpha, 0.0);
        assert!(
            p0.write_buffers.abs() < 1e-12,
            "no flushes → nothing to hide"
        );
    }

    #[test]
    fn write_buffer_value_grows_with_alpha() {
        let ps = points();
        for w in ps.windows(2) {
            assert!(w[1].write_buffers > w[0].write_buffers);
        }
    }

    #[test]
    fn ranking_bus_over_write_buffers_is_alpha_stable() {
        for p in points() {
            assert!(p.bus > p.write_buffers, "α={}", p.alpha);
        }
    }

    #[test]
    fn bus_crossover_is_alpha_independent() {
        // (1 + α) cancels in the pipelined-vs-bus equality.
        let b = pipelined_vs_double_bus(8.0, 2.0).unwrap();
        assert!((b - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wbuf_crossover_moves_with_alpha() {
        let at = |a: f64| pipelined_vs_write_buffers(8.0, 2.0, a).unwrap();
        assert!(at(0.8) > at(0.2));
    }

    #[test]
    fn report_renders_chart_and_table() {
        let text = report().unwrap();
        assert!(text.contains("flush ratio"));
        assert!(text.contains("Crossover shifts"));
    }
}
