//! EXP-X5 — write-miss policy ablation: write-allocate versus
//! write-around.
//!
//! The paper's model covers both policies (Section 3.1): under
//! write-allocate the write misses join `R` and `W = 0`; under
//! write-around they form the `W·β_m` term and do not fill lines. Which
//! wins is workload-dependent — allocation pays when written lines are
//! re-referenced, write-around pays when stores scatter. The experiment
//! measures both on every proxy and confirms the model tracks each run
//! exactly.

use crate::common::figure1_cache;
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcache::WriteMiss;
use simcpu::{validation_error, Cpu, CpuConfig, SimResult};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};

/// The two policies, measured on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyComparison {
    /// Workload.
    pub program: Spec92Program,
    /// Write-allocate run.
    pub allocate: SimResult,
    /// Write-around run.
    pub around: SimResult,
}

impl PolicyComparison {
    /// The winning policy's name.
    pub fn winner(&self) -> &'static str {
        if self.allocate.cycles <= self.around.cycles {
            "allocate"
        } else {
            "around"
        }
    }
}

fn simulate(program: Spec92Program, policy: WriteMiss, beta: u64, n: usize) -> SimResult {
    let cfg = CpuConfig::baseline(
        figure1_cache(32).with_write_miss(policy),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
    );
    Cpu::new(cfg).run(spec92_trace(program, 0x3A3A).take(n))
}

/// Runs the comparison over all proxies.
pub fn run(beta: u64, instructions: usize) -> Vec<PolicyComparison> {
    Spec92Program::ALL
        .iter()
        .map(|&program| PolicyComparison {
            program,
            allocate: simulate(program, WriteMiss::Allocate, beta, instructions),
            around: simulate(program, WriteMiss::Around, beta, instructions),
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(rows: &[PolicyComparison]) -> String {
    let mut t = Table::new([
        "program",
        "allocate cycles",
        "around cycles",
        "winner",
        "W (around)",
        "model err (both)",
    ]);
    for r in rows {
        let err = validation_error(&r.allocate).max(validation_error(&r.around));
        t.row([
            r.program.to_string(),
            r.allocate.cycles.to_string(),
            r.around.cycles.to_string(),
            r.winner().to_string(),
            r.around.dcache.write_arounds.to_string(),
            format!("{err:.1e}"),
        ]);
    }
    format!(
        "Write-miss policy ablation (8K 2-way, L=32, D=4, β=8):\n{}",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "writemiss"
    }
    fn title(&self) -> &'static str {
        "Write-miss policy ablation"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(8, ctx.instructions)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_exact_under_both_policies() {
        for r in run(8, 20_000) {
            assert!(validation_error(&r.allocate) < 1e-9, "{}", r.program);
            assert!(validation_error(&r.around) < 1e-9, "{}", r.program);
        }
    }

    #[test]
    fn around_produces_w_term_allocate_does_not() {
        for r in run(8, 20_000) {
            assert_eq!(r.allocate.dcache.write_arounds, 0, "{}", r.program);
            assert!(r.around.dcache.write_arounds > 0, "{}", r.program);
        }
    }

    #[test]
    fn allocation_wins_on_store_reuse_workloads() {
        // The stencil codes re-read what they wrote: write-allocate must
        // win there. Hydro2d's margin is thin (~0.05%), so give the
        // comparison enough instructions to converge.
        let rows = run(8, 80_000);
        let by = |p: Spec92Program| rows.iter().find(|r| r.program == p).unwrap();
        assert_eq!(by(Spec92Program::Swm256).winner(), "allocate");
        assert_eq!(by(Spec92Program::Hydro2d).winner(), "allocate");
    }

    #[test]
    fn render_lists_all_programs() {
        let text = render(&run(8, 5_000));
        for p in Spec92Program::ALL {
            assert!(text.contains(p.name()));
        }
    }
}
