//! Process-wide memoised traces and miss timelines.
//!
//! Every φ/α experiment used to regenerate its SPEC92 proxy trace — and
//! re-simulate the cache — once *per timing point* (168 times for
//! Figure 1 alone), even though both depend only on (program, seed,
//! length) and (…, cache geometry) respectively. This store materialises
//! each trace once into a shared allocation and memoises each extracted
//! [`MissTimeline`], so a β-sweep costs one trace generation plus one
//! cache pass, after which every point is an `O(misses)` replay.
//!
//! Traces of different lengths share one backing: the proxy generators
//! are deterministic lazy streams, so the `n`-instruction trace is a
//! prefix of the `m ≥ n` one (asserted in the tests below). The store
//! keeps the longest materialisation per (program, seed) and hands out
//! prefix views.
//!
//! Set `REPRO_TRACE_CACHE=0` to disable memoisation (every call then
//! regenerates from scratch — useful for memory-constrained runs and for
//! A/B-testing the cache itself).

use crate::error::lock_recovering;
use crate::fault::{self, Site};
use simcache::CacheConfig;
use simcpu::MissTimeline;
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::Instr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Seed used by every `run_spec`-style experiment.
pub const SPEC_SEED: u64 = 0xDEAD_BEEF;

static TRACE_HITS: AtomicU64 = AtomicU64::new(0);
static TRACE_MISSES: AtomicU64 = AtomicU64::new(0);
static TIMELINE_HITS: AtomicU64 = AtomicU64::new(0);
static TIMELINE_MISSES: AtomicU64 = AtomicU64::new(0);
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// How many times a store lock was recovered from poison (a worker
/// panicked — or was fault-injected — while holding it).
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

/// Locks a store map, recovering from poison: a holder that died
/// mid-insert may have left a half-written entry, so the recovered map
/// is cleared and every entry recomputed on demand — one panicked
/// worker must never wedge later experiments.
fn lock_store<K, V>(m: &Mutex<HashMap<K, V>>) -> MutexGuard<'_, HashMap<K, V>> {
    let (mut guard, recovered) = lock_recovering(m);
    if recovered {
        guard.clear();
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
    }
    guard
}

/// A snapshot of the store's hit/miss counters — the scheduler's first
/// observability hook: a "hit" hands back a memoised allocation, a
/// "miss" pays a trace generation or a cache-simulation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounts {
    /// Trace lookups served from the store.
    pub trace_hits: u64,
    /// Trace lookups that (re)generated instructions.
    pub trace_misses: u64,
    /// Timeline lookups served from the store.
    pub timeline_hits: u64,
    /// Timeline lookups that ran a cache-simulation pass.
    pub timeline_misses: u64,
}

impl StoreCounts {
    /// Counter increments since an `earlier` snapshot.
    #[must_use]
    pub fn since(&self, earlier: &StoreCounts) -> StoreCounts {
        StoreCounts {
            trace_hits: self.trace_hits - earlier.trace_hits,
            trace_misses: self.trace_misses - earlier.trace_misses,
            timeline_hits: self.timeline_hits - earlier.timeline_hits,
            timeline_misses: self.timeline_misses - earlier.timeline_misses,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "traces {} hit / {} miss, timelines {} hit / {} miss",
            self.trace_hits, self.trace_misses, self.timeline_hits, self.timeline_misses
        )
    }
}

/// The current process-wide counter values.
pub fn counters() -> StoreCounts {
    StoreCounts {
        trace_hits: TRACE_HITS.load(Ordering::Relaxed),
        trace_misses: TRACE_MISSES.load(Ordering::Relaxed),
        timeline_hits: TIMELINE_HITS.load(Ordering::Relaxed),
        timeline_misses: TIMELINE_MISSES.load(Ordering::Relaxed),
    }
}

/// A shared trace prefix: cheap to clone, derefs to the instructions.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    data: Arc<Vec<Instr>>,
    len: usize,
}

impl TraceHandle {
    /// The instructions of this prefix.
    pub fn instrs(&self) -> &[Instr] {
        &self.data[..self.len]
    }
}

impl std::ops::Deref for TraceHandle {
    type Target = [Instr];
    fn deref(&self) -> &[Instr] {
        self.instrs()
    }
}

fn memoise() -> bool {
    std::env::var("REPRO_TRACE_CACHE").map_or(true, |v| v != "0")
}

type TraceKey = (Spec92Program, u64);
type TimelineKey = (Spec92Program, u64, usize, CacheConfig);

fn traces() -> &'static Mutex<HashMap<TraceKey, Arc<Vec<Instr>>>> {
    static STORE: OnceLock<Mutex<HashMap<TraceKey, Arc<Vec<Instr>>>>> = OnceLock::new();
    STORE.get_or_init(Mutex::default)
}

fn timelines() -> &'static Mutex<HashMap<TimelineKey, Arc<MissTimeline>>> {
    static STORE: OnceLock<Mutex<HashMap<TimelineKey, Arc<MissTimeline>>>> = OnceLock::new();
    STORE.get_or_init(Mutex::default)
}

fn generate(program: Spec92Program, seed: u64, len: usize) -> Arc<Vec<Instr>> {
    Arc::new(spec92_trace(program, seed).take(len).collect())
}

/// The first `len` instructions of a SPEC92 proxy trace, materialised at
/// most once per (program, seed) process-wide.
pub fn spec_trace(program: Spec92Program, seed: u64, len: usize) -> TraceHandle {
    if !memoise() {
        fault::check_or_unwind(Site::Extract);
        TRACE_MISSES.fetch_add(1, Ordering::Relaxed);
        return TraceHandle {
            data: generate(program, seed, len),
            len,
        };
    }
    let mut store = lock_store(traces());
    fault::check_or_unwind(Site::Lock);
    let entry = store
        .entry((program, seed))
        .or_insert_with(|| Arc::new(Vec::new()));
    if entry.len() < len {
        fault::check_or_unwind(Site::Extract);
        *entry = generate(program, seed, len);
        TRACE_MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        TRACE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    TraceHandle {
        data: Arc::clone(entry),
        len,
    }
}

/// The [`MissTimeline`] of a SPEC92 proxy prefix under `cache`,
/// extracted at most once per (program, seed, length, cache geometry)
/// process-wide.
pub fn spec_timeline(
    program: Spec92Program,
    seed: u64,
    len: usize,
    cache: &CacheConfig,
) -> Arc<MissTimeline> {
    if !memoise() {
        fault::check_or_unwind(Site::Extract);
        TIMELINE_MISSES.fetch_add(1, Ordering::Relaxed);
        let trace = spec_trace(program, seed, len);
        return Arc::new(MissTimeline::extract(*cache, trace.iter().copied()));
    }
    let key = (program, seed, len, *cache);
    if let Some(tl) = lock_store(timelines()).get(&key) {
        TIMELINE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(tl);
    }
    fault::check_or_unwind(Site::Extract);
    TIMELINE_MISSES.fetch_add(1, Ordering::Relaxed);
    // Extract outside the lock: concurrent workers may duplicate the
    // pass (first insertion wins) but never serialise behind it.
    let trace = spec_trace(program, seed, len);
    let tl = Arc::new(MissTimeline::extract(*cache, trace.iter().copied()));
    Arc::clone(lock_store(timelines()).entry(key).or_insert(tl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::figure1_cache;

    #[test]
    fn longer_traces_extend_shorter_ones() {
        let short: Vec<Instr> = spec92_trace(Spec92Program::Ear, 7).take(2_000).collect();
        let long: Vec<Instr> = spec92_trace(Spec92Program::Ear, 7).take(5_000).collect();
        assert_eq!(
            short[..],
            long[..2_000],
            "proxy traces must be prefix-stable"
        );
    }

    #[test]
    fn store_shares_one_backing_across_lengths() {
        let a = spec_trace(Spec92Program::Nasa7, 99, 1_000);
        let b = spec_trace(Spec92Program::Nasa7, 99, 3_000);
        let c = spec_trace(Spec92Program::Nasa7, 99, 2_000);
        assert_eq!(a.instrs(), &b.instrs()[..1_000]);
        assert_eq!(c.instrs(), &b.instrs()[..2_000]);
        // After the 3 000-instruction materialisation, shorter requests
        // alias the same allocation.
        assert!(Arc::ptr_eq(&b.data, &c.data));
        assert_eq!(a.len(), 1_000);
    }

    #[test]
    fn timelines_are_memoised_and_match_direct_extraction() {
        let cache = figure1_cache(32);
        let first = spec_timeline(Spec92Program::Ear, 42, 4_000, &cache);
        let second = spec_timeline(Spec92Program::Ear, 42, 4_000, &cache);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup must hit the memo"
        );
        let direct = MissTimeline::extract(cache, spec92_trace(Spec92Program::Ear, 42).take(4_000));
        assert_eq!(*first, direct);
    }
}
