//! Process-wide memoised traces and miss timelines.
//!
//! Every φ/α experiment used to regenerate its SPEC92 proxy trace — and
//! re-simulate the cache — once *per timing point* (168 times for
//! Figure 1 alone), even though both depend only on (program, seed,
//! length) and (…, cache geometry) respectively. This store materialises
//! each trace once into a shared allocation and memoises each extracted
//! [`MissTimeline`], so a β-sweep costs one trace generation plus one
//! cache pass, after which every point is an `O(misses)` replay.
//!
//! Workload identity is the declarative spec hash: every store keys on
//! `(`[`WorkloadId`]`, seed, …)`, so a built-in proxy and an inline
//! spec with the same canonical form share one entry. The legacy
//! `spec_*` entry points remain as thin wrappers over the built-in
//! specs ([`simtrace::workload::builtin_spec`]).
//!
//! Traces of different lengths share one backing: the generators are
//! deterministic lazy streams, so the `n`-instruction trace is a
//! prefix of the `m ≥ n` one (asserted in the tests below). The store
//! keeps the longest materialisation per (workload, seed) and hands
//! out prefix views.
//!
//! Timelines are extracted *streamingly*: a cold lookup folds the
//! chunked generator straight into a [`simcpu::MissTimelineBuilder`]
//! without ever materialising the trace, so fold-only experiments keep
//! at most one chunk of instructions resident (`REPRO_STREAM_CHUNK`,
//! see `DESIGN.md` §12). Only [`spec_trace`] pins full traces, and
//! those materialisations are byte-accounted ([`bytes_resident`]) and
//! capped: set `REPRO_TRACE_BUDGET` (bytes, with optional `k`/`m`/`g`
//! suffix) to evict least-recently-used traces above the cap.
//!
//! Set `REPRO_TRACE_CACHE=0` to disable memoisation (every call then
//! regenerates from scratch — useful for memory-constrained runs and for
//! A/B-testing the cache itself).

use crate::error::lock_recovering;
use crate::fault::{self, Site};
use crate::stream;
use simcache::CacheConfig;
use simcpu::{MissTimeline, MissTimelineBuilder};
use simtrace::spec92::Spec92Program;
use simtrace::workload::{builtin_spec, WorkloadId, WorkloadSpec};
use simtrace::{Instr, ReuseHistograms, INSTR_BYTES};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Seed used by every `run_spec`-style experiment.
pub const SPEC_SEED: u64 = 0xDEAD_BEEF;

static TRACE_HITS: AtomicU64 = AtomicU64::new(0);
static TRACE_MISSES: AtomicU64 = AtomicU64::new(0);
static TIMELINE_HITS: AtomicU64 = AtomicU64::new(0);
static TIMELINE_MISSES: AtomicU64 = AtomicU64::new(0);
static HIST_HITS: AtomicU64 = AtomicU64::new(0);
static HIST_MISSES: AtomicU64 = AtomicU64::new(0);
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);
static TRACE_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static HIST_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static COALESCED_WAITS: AtomicU64 = AtomicU64::new(0);

/// How many times a store lock was recovered from poison (a worker
/// panicked — or was fault-injected — while holding it).
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

/// Locks a store map, recovering from poison: a holder that died
/// mid-insert may have left a half-written entry, so the recovered map
/// is cleared and every entry recomputed on demand — one panicked
/// worker must never wedge later experiments.
fn lock_store<K, V>(m: &Mutex<HashMap<K, V>>) -> MutexGuard<'_, HashMap<K, V>> {
    let (mut guard, recovered) = lock_recovering(m);
    if recovered {
        guard.clear();
        POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
    }
    guard
}

/// A snapshot of the store's hit/miss counters — the scheduler's first
/// observability hook: a "hit" hands back a memoised allocation, a
/// "miss" pays a trace generation or a cache-simulation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounts {
    /// Trace lookups served from the store.
    pub trace_hits: u64,
    /// Trace lookups that (re)generated instructions.
    pub trace_misses: u64,
    /// Timeline lookups served from the store.
    pub timeline_hits: u64,
    /// Timeline lookups that ran a cache-simulation pass.
    pub timeline_misses: u64,
    /// Histogram lookups served from the store.
    pub hist_hits: u64,
    /// Histogram lookups that ran a reuse-distance fold.
    pub hist_misses: u64,
}

impl StoreCounts {
    /// Counter increments since an `earlier` snapshot.
    #[must_use]
    pub fn since(&self, earlier: &StoreCounts) -> StoreCounts {
        StoreCounts {
            trace_hits: self.trace_hits - earlier.trace_hits,
            trace_misses: self.trace_misses - earlier.trace_misses,
            timeline_hits: self.timeline_hits - earlier.timeline_hits,
            timeline_misses: self.timeline_misses - earlier.timeline_misses,
            hist_hits: self.hist_hits - earlier.hist_hits,
            hist_misses: self.hist_misses - earlier.hist_misses,
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "traces {} hit / {} miss, timelines {} hit / {} miss, histograms {} hit / {} miss",
            self.trace_hits,
            self.trace_misses,
            self.timeline_hits,
            self.timeline_misses,
            self.hist_hits,
            self.hist_misses
        )
    }
}

/// The current process-wide counter values.
pub fn counters() -> StoreCounts {
    StoreCounts {
        trace_hits: TRACE_HITS.load(Ordering::Relaxed),
        trace_misses: TRACE_MISSES.load(Ordering::Relaxed),
        timeline_hits: TIMELINE_HITS.load(Ordering::Relaxed),
        timeline_misses: TIMELINE_MISSES.load(Ordering::Relaxed),
        hist_hits: HIST_HITS.load(Ordering::Relaxed),
        hist_misses: HIST_MISSES.load(Ordering::Relaxed),
    }
}

/// A full observability snapshot of the store: hit/miss counters plus
/// eviction, coalescing, residency and recovery state. This is the one
/// accessor the scheduler footer and the query server's `/stats`
/// endpoint both read — ad-hoc counter plumbing goes through here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Hit/miss counters per store.
    pub counts: StoreCounts,
    /// Materialised traces evicted by the `REPRO_TRACE_BUDGET` cap.
    pub trace_evictions: u64,
    /// Memoised histograms evicted by the budget cap.
    pub hist_evictions: u64,
    /// Lookups that blocked on another thread's in-flight extraction
    /// of the same key instead of duplicating the work.
    pub coalesced_waits: u64,
    /// Bytes of trace data currently materialised.
    pub trace_bytes: u64,
    /// Bytes of reuse-histogram state currently memoised.
    pub hist_bytes: u64,
    /// Store locks recovered from poison (see [`poison_recoveries`]).
    pub poison_recoveries: u64,
}

impl Stats {
    /// One-line human summary for the scheduler footer.
    pub fn summary(&self) -> String {
        format!(
            "{}; evictions {} trace / {} hist, coalesced waits {}, resident {} B traces + {} B hists, poison recoveries {}",
            self.counts.summary(),
            self.trace_evictions,
            self.hist_evictions,
            self.coalesced_waits,
            self.trace_bytes,
            self.hist_bytes,
            self.poison_recoveries
        )
    }
}

/// The current process-wide [`Stats`] snapshot. Counter fields are
/// monotonic; the residency byte fields reflect this instant.
pub fn stats() -> Stats {
    Stats {
        counts: counters(),
        trace_evictions: TRACE_EVICTIONS.load(Ordering::Relaxed),
        hist_evictions: HIST_EVICTIONS.load(Ordering::Relaxed),
        coalesced_waits: COALESCED_WAITS.load(Ordering::Relaxed),
        trace_bytes: bytes_resident(),
        hist_bytes: hist_bytes_resident(),
        poison_recoveries: poison_recoveries(),
    }
}

/// A shared trace prefix: cheap to clone, derefs to the instructions.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    data: Arc<Vec<Instr>>,
    len: usize,
}

impl TraceHandle {
    /// The instructions of this prefix.
    pub fn instrs(&self) -> &[Instr] {
        &self.data[..self.len]
    }
}

impl std::ops::Deref for TraceHandle {
    type Target = [Instr];
    fn deref(&self) -> &[Instr] {
        self.instrs()
    }
}

fn memoise() -> bool {
    std::env::var("REPRO_TRACE_CACHE").map_or(true, |v| v != "0")
}

/// Parses a byte count with an optional `k`/`m`/`g` (×1024) suffix,
/// case-insensitively: `"8m"` → 8 MiB.
fn parse_bytes(s: &str) -> Option<u64> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mult = match t.as_bytes()[t.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (d, mult)
        }
        None => (t.as_str(), 1),
    };
    digits.trim().parse::<u64>().ok()?.checked_mul(mult)
}

/// The `REPRO_TRACE_BUDGET` cap on materialised trace bytes, if set.
fn trace_budget() -> Option<u64> {
    parse_bytes(&std::env::var("REPRO_TRACE_BUDGET").ok()?)
}

type TraceKey = (WorkloadId, u64);
type TimelineKey = (WorkloadId, u64, usize, CacheConfig);
/// (workload, seed, len, min line, max line, max distance, warm-up).
type HistKey = (WorkloadId, u64, usize, u64, u64, usize, u64);

/// A materialised trace plus its label and LRU stamp for the resident
/// listing and budget eviction.
struct TraceEntry {
    data: Arc<Vec<Instr>>,
    label: String,
    last_use: u64,
}

impl TraceEntry {
    fn bytes(&self) -> u64 {
        (self.data.len() * INSTR_BYTES) as u64
    }
}

/// Monotonic use counter stamping [`TraceEntry::last_use`].
static TICK: AtomicU64 = AtomicU64::new(0);

fn tick() -> u64 {
    TICK.fetch_add(1, Ordering::Relaxed) + 1
}

fn traces() -> &'static Mutex<HashMap<TraceKey, TraceEntry>> {
    static STORE: OnceLock<Mutex<HashMap<TraceKey, TraceEntry>>> = OnceLock::new();
    STORE.get_or_init(Mutex::default)
}

fn timelines() -> &'static Mutex<HashMap<TimelineKey, Arc<MissTimeline>>> {
    static STORE: OnceLock<Mutex<HashMap<TimelineKey, Arc<MissTimeline>>>> = OnceLock::new();
    STORE.get_or_init(Mutex::default)
}

/// Memoised reuse-distance histograms plus the LRU stamp for budget
/// eviction.
struct HistEntry {
    data: Arc<ReuseHistograms>,
    last_use: u64,
}

impl HistEntry {
    fn bytes(&self) -> u64 {
        self.data.bytes() as u64
    }
}

fn hists() -> &'static Mutex<HashMap<HistKey, HistEntry>> {
    static STORE: OnceLock<Mutex<HashMap<HistKey, HistEntry>>> = OnceLock::new();
    STORE.get_or_init(Mutex::default)
}

fn generate(spec: &WorkloadSpec, seed: u64, len: usize) -> Arc<Vec<Instr>> {
    Arc::new(spec.compile(seed).take(len).collect())
}

/// Coalesces concurrent misses on one memo key — the warm-key
/// discipline `sched` applies between experiments, generalised to any
/// lookup path (the query server's concurrent requests in particular).
///
/// The first thread to miss claims the key and pays the extraction;
/// every other thread arriving before the claim is released blocks on
/// the condvar instead of duplicating the pass, then re-probes the
/// memo. The claim is released by an RAII guard, so a claimer that
/// unwinds (fault injection panics mid-extract) can never wedge its
/// waiters — they wake, find the memo still cold, and one of them
/// claims in turn.
struct KeyGate<K> {
    in_flight: Mutex<HashSet<K>>,
    released: Condvar,
}

impl<K: Eq + Hash + Clone> KeyGate<K> {
    fn new() -> Self {
        KeyGate {
            in_flight: Mutex::new(HashSet::new()),
            released: Condvar::new(),
        }
    }

    /// Claims `key` for this thread, or blocks until the current
    /// holder releases it and returns `None` (the caller re-probes the
    /// memo before trying again).
    fn claim(&self, key: K) -> Option<KeyClaim<'_, K>> {
        let mut set = self
            .in_flight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if set.insert(key.clone()) {
            return Some(KeyClaim { gate: self, key });
        }
        COALESCED_WAITS.fetch_add(1, Ordering::Relaxed);
        while set.contains(&key) {
            set = self
                .released
                .wait(set)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        None
    }
}

/// An exclusive in-flight claim on one key; dropping it (normally or
/// during unwinding) releases the key and wakes every waiter.
struct KeyClaim<'a, K: Eq + Hash> {
    gate: &'a KeyGate<K>,
    key: K,
}

impl<K: Eq + Hash> Drop for KeyClaim<'_, K> {
    fn drop(&mut self) {
        let mut set = self
            .gate
            .in_flight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set.remove(&self.key);
        self.gate.released.notify_all();
    }
}

fn timeline_gate() -> &'static KeyGate<TimelineKey> {
    static GATE: OnceLock<KeyGate<TimelineKey>> = OnceLock::new();
    GATE.get_or_init(KeyGate::new)
}

fn hist_gate() -> &'static KeyGate<HistKey> {
    static GATE: OnceLock<KeyGate<HistKey>> = OnceLock::new();
    GATE.get_or_init(KeyGate::new)
}

/// Evicts least-recently-used entries (other than `keep`, which the
/// caller is handing out right now) until the store's byte total fits
/// `budget`. Outstanding `Arc` handles keep evicted allocations alive;
/// eviction only drops the store's reference.
fn evict_lru<K: Eq + std::hash::Hash + Copy, V>(
    store: &mut HashMap<K, V>,
    keep: K,
    budget: Option<u64>,
    bytes: impl Fn(&V) -> u64,
    last_use: impl Fn(&V) -> u64,
    evictions: &AtomicU64,
) {
    let Some(budget) = budget else { return };
    let mut total: u64 = store.values().map(&bytes).sum();
    while total > budget {
        let victim = store
            .iter()
            .filter(|(k, _)| **k != keep)
            .min_by_key(|(_, e)| last_use(e))
            .map(|(k, _)| *k);
        let Some(victim) = victim else { break };
        if let Some(evicted) = store.remove(&victim) {
            total -= bytes(&evicted);
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The `REPRO_TRACE_BUDGET` cap spans traces AND histograms: each
/// store's slice is the cap minus what the other store already holds.
fn enforce_budget(store: &mut HashMap<TraceKey, TraceEntry>, keep: TraceKey) {
    let budget = trace_budget().map(|b| b.saturating_sub(hist_bytes_resident()));
    enforce_budget_with(store, keep, budget);
}

fn enforce_budget_with(
    store: &mut HashMap<TraceKey, TraceEntry>,
    keep: TraceKey,
    budget: Option<u64>,
) {
    evict_lru(
        store,
        keep,
        budget,
        TraceEntry::bytes,
        |e| e.last_use,
        &TRACE_EVICTIONS,
    );
}

fn enforce_hist_budget_with(
    store: &mut HashMap<HistKey, HistEntry>,
    keep: HistKey,
    budget: Option<u64>,
) {
    evict_lru(
        store,
        keep,
        budget,
        HistEntry::bytes,
        |e| e.last_use,
        &HIST_EVICTIONS,
    );
}

/// Bytes of trace data currently materialised in the store.
pub fn bytes_resident() -> u64 {
    lock_store(traces()).values().map(TraceEntry::bytes).sum()
}

/// Bytes of reuse-distance histogram state currently memoised.
pub fn hist_bytes_resident() -> u64 {
    lock_store(hists()).values().map(HistEntry::bytes).sum()
}

/// The materialised traces — `(workload label, seed, bytes)` in
/// deterministic (label, seed) order — for the scheduler footer.
pub fn resident_entries() -> Vec<(String, u64, u64)> {
    let store = lock_store(traces());
    let mut entries: Vec<_> = store
        .iter()
        .map(|((_, seed), e)| (e.label.clone(), *seed, e.bytes()))
        .collect();
    drop(store);
    entries.sort_unstable();
    entries
}

/// A `len`-instruction prefix view of an already-materialised trace, if
/// the store holds one — the zero-cost path streaming folds probe
/// before regenerating. Counts a trace hit (and refreshes the LRU
/// stamp) only when it returns a handle.
pub fn resident_workload_trace(spec: &WorkloadSpec, seed: u64, len: usize) -> Option<TraceHandle> {
    if !memoise() {
        return None;
    }
    let mut store = lock_store(traces());
    let entry = store
        .get_mut(&(spec.id(), seed))
        .filter(|e| e.data.len() >= len)?;
    entry.last_use = tick();
    TRACE_HITS.fetch_add(1, Ordering::Relaxed);
    Some(TraceHandle {
        data: Arc::clone(&entry.data),
        len,
    })
}

/// Legacy probe for a SPEC92 proxy — [`resident_workload_trace`] of the
/// built-in spec.
pub fn resident_trace(program: Spec92Program, seed: u64, len: usize) -> Option<TraceHandle> {
    resident_workload_trace(builtin_spec(program), seed, len)
}

/// The first `len` instructions of a workload, materialised at most
/// once per (workload identity, seed) process-wide.
pub fn workload_trace(spec: &WorkloadSpec, seed: u64, len: usize) -> TraceHandle {
    if !memoise() {
        fault::check_or_unwind(Site::Extract);
        TRACE_MISSES.fetch_add(1, Ordering::Relaxed);
        return TraceHandle {
            data: generate(spec, seed, len),
            len,
        };
    }
    let mut store = lock_store(traces());
    fault::check_or_unwind(Site::Lock);
    let key = (spec.id(), seed);
    let entry = store.entry(key).or_insert_with(|| TraceEntry {
        data: Arc::new(Vec::new()),
        label: spec.label(),
        last_use: 0,
    });
    if entry.data.len() < len {
        fault::check_or_unwind(Site::Extract);
        entry.data = generate(spec, seed, len);
        TRACE_MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        TRACE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    entry.last_use = tick();
    let handle = TraceHandle {
        data: Arc::clone(&entry.data),
        len,
    };
    enforce_budget(&mut store, key);
    handle
}

/// Legacy entry point for a SPEC92 proxy — [`workload_trace`] of the
/// built-in spec (bit-identical to the old constructors).
pub fn spec_trace(program: Spec92Program, seed: u64, len: usize) -> TraceHandle {
    workload_trace(builtin_spec(program), seed, len)
}

/// Streams the workload's trace through a timeline builder without
/// pinning it: an already-materialised trace is folded in place, a cold
/// one is generated chunk by chunk (at most one `REPRO_STREAM_CHUNK`
/// block resident at a time).
fn extract_streaming(
    spec: &WorkloadSpec,
    seed: u64,
    len: usize,
    cache: &CacheConfig,
) -> MissTimeline {
    let chunk = stream::chunk_instructions();
    let mut builder = MissTimelineBuilder::new(*cache);
    if let Some(trace) = resident_workload_trace(spec, seed, len) {
        for block in trace.chunks(chunk) {
            builder.process_slice(block);
        }
    } else {
        spec.chunks(seed, len, chunk)
            .for_each_chunk(|block| builder.process_slice(block));
    }
    builder.finish()
}

/// The [`MissTimeline`] of a workload prefix under `cache`, extracted
/// at most once per (workload identity, seed, length, cache geometry)
/// process-wide. Extraction streams the trace ([`extract_streaming`]) —
/// a timeline lookup never materialises instructions.
pub fn workload_timeline(
    spec: &WorkloadSpec,
    seed: u64,
    len: usize,
    cache: &CacheConfig,
) -> Arc<MissTimeline> {
    if !memoise() {
        fault::check_or_unwind(Site::Extract);
        TIMELINE_MISSES.fetch_add(1, Ordering::Relaxed);
        return Arc::new(extract_streaming(spec, seed, len, cache));
    }
    let key = (spec.id(), seed, len, *cache);
    loop {
        {
            let store = lock_store(timelines());
            fault::check_or_unwind(Site::Lock);
            if let Some(tl) = store.get(&key) {
                TIMELINE_HITS.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(tl);
            }
        }
        // Coalesce: exactly one thread extracts a cold key; everyone
        // else blocks on the gate, then re-probes the memo.
        let Some(_claim) = timeline_gate().claim(key) else {
            continue;
        };
        // The claim may postdate another holder's insert — re-check.
        if let Some(tl) = lock_store(timelines()).get(&key) {
            TIMELINE_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(tl);
        }
        fault::check_or_unwind(Site::Extract);
        TIMELINE_MISSES.fetch_add(1, Ordering::Relaxed);
        // Extract outside the store lock so hits never serialise
        // behind the pass; the key gate already excludes duplicates.
        let tl = Arc::new(extract_streaming(spec, seed, len, cache));
        return Arc::clone(lock_store(timelines()).entry(key).or_insert(tl));
    }
}

/// Legacy entry point for a SPEC92 proxy — [`workload_timeline`] of the
/// built-in spec.
pub fn spec_timeline(
    program: Spec92Program,
    seed: u64,
    len: usize,
    cache: &CacheConfig,
) -> Arc<MissTimeline> {
    workload_timeline(builtin_spec(program), seed, len, cache)
}

/// Streams the workload's trace through a multi-granularity
/// reuse-distance fold without pinning it (same residency contract as
/// [`extract_streaming`]).
fn fold_histograms(
    spec: &WorkloadSpec,
    seed: u64,
    len: usize,
    min_line: u64,
    max_line: u64,
    max_distance: usize,
    warmup: u64,
) -> ReuseHistograms {
    let chunk = stream::chunk_instructions();
    let mut hists = ReuseHistograms::new(min_line, max_line, max_distance, warmup);
    if let Some(trace) = resident_workload_trace(spec, seed, len) {
        for block in trace.chunks(chunk) {
            hists.process_slice(block);
        }
    } else {
        spec.chunks(seed, len, chunk)
            .for_each_chunk(|block| hists.process_slice(block));
    }
    hists
}

/// The [`ReuseHistograms`] of a workload prefix, folded at most once
/// per (workload identity, seed, length, line range, distance cap,
/// warm-up) process-wide. The fold streams the trace chunk by chunk — a
/// histogram lookup never materialises instructions — and the memoised
/// state is byte-accounted under the same `REPRO_TRACE_BUDGET` cap as
/// the traces (least-recently-used histograms are evicted first).
#[allow(clippy::too_many_arguments)]
pub fn workload_histograms(
    spec: &WorkloadSpec,
    seed: u64,
    len: usize,
    min_line: u64,
    max_line: u64,
    max_distance: usize,
    warmup: u64,
) -> Arc<ReuseHistograms> {
    if !memoise() {
        fault::check_or_unwind(Site::Extract);
        HIST_MISSES.fetch_add(1, Ordering::Relaxed);
        return Arc::new(fold_histograms(
            spec,
            seed,
            len,
            min_line,
            max_line,
            max_distance,
            warmup,
        ));
    }
    let key = (
        spec.id(),
        seed,
        len,
        min_line,
        max_line,
        max_distance,
        warmup,
    );
    loop {
        {
            let mut store = lock_store(hists());
            fault::check_or_unwind(Site::Lock);
            if let Some(entry) = store.get_mut(&key) {
                entry.last_use = tick();
                HIST_HITS.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.data);
            }
        }
        // Coalesce cold folds exactly like timelines: one claimer
        // pays, waiters re-probe the memo once it releases.
        let Some(_claim) = hist_gate().claim(key) else {
            continue;
        };
        {
            let mut store = lock_store(hists());
            if let Some(entry) = store.get_mut(&key) {
                entry.last_use = tick();
                HIST_HITS.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.data);
            }
        }
        fault::check_or_unwind(Site::Extract);
        HIST_MISSES.fetch_add(1, Ordering::Relaxed);
        // Fold outside the store lock, and read the trace store's byte
        // total before re-locking: the lock order is always traces →
        // histograms, never the reverse.
        let folded = Arc::new(fold_histograms(
            spec,
            seed,
            len,
            min_line,
            max_line,
            max_distance,
            warmup,
        ));
        let trace_bytes = bytes_resident();
        let mut store = lock_store(hists());
        let entry = store.entry(key).or_insert_with(|| HistEntry {
            data: Arc::clone(&folded),
            last_use: 0,
        });
        entry.last_use = tick();
        let handle = Arc::clone(&entry.data);
        let budget = trace_budget().map(|b| b.saturating_sub(trace_bytes));
        enforce_hist_budget_with(&mut store, key, budget);
        return handle;
    }
}

/// Legacy entry point for a SPEC92 proxy — [`workload_histograms`] of
/// the built-in spec.
#[allow(clippy::too_many_arguments)]
pub fn spec_histograms(
    program: Spec92Program,
    seed: u64,
    len: usize,
    min_line: u64,
    max_line: u64,
    max_distance: usize,
    warmup: u64,
) -> Arc<ReuseHistograms> {
    workload_histograms(
        builtin_spec(program),
        seed,
        len,
        min_line,
        max_line,
        max_distance,
        warmup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::figure1_cache;
    use simtrace::spec92::spec92_trace;

    fn id_of(program: Spec92Program) -> WorkloadId {
        builtin_spec(program).id()
    }

    #[test]
    fn longer_traces_extend_shorter_ones() {
        let short: Vec<Instr> = spec92_trace(Spec92Program::Ear, 7).take(2_000).collect();
        let long: Vec<Instr> = spec92_trace(Spec92Program::Ear, 7).take(5_000).collect();
        assert_eq!(
            short[..],
            long[..2_000],
            "proxy traces must be prefix-stable"
        );
    }

    #[test]
    fn store_shares_one_backing_across_lengths() {
        let a = spec_trace(Spec92Program::Nasa7, 99, 1_000);
        let b = spec_trace(Spec92Program::Nasa7, 99, 3_000);
        let c = spec_trace(Spec92Program::Nasa7, 99, 2_000);
        assert_eq!(a.instrs(), &b.instrs()[..1_000]);
        assert_eq!(c.instrs(), &b.instrs()[..2_000]);
        // After the 3 000-instruction materialisation, shorter requests
        // alias the same allocation.
        assert!(Arc::ptr_eq(&b.data, &c.data));
        assert_eq!(a.len(), 1_000);
    }

    #[test]
    fn timelines_are_memoised_and_match_direct_extraction() {
        let cache = figure1_cache(32);
        let first = spec_timeline(Spec92Program::Ear, 42, 4_000, &cache);
        let second = spec_timeline(Spec92Program::Ear, 42, 4_000, &cache);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup must hit the memo"
        );
        let direct = MissTimeline::extract(cache, spec92_trace(Spec92Program::Ear, 42).take(4_000));
        assert_eq!(*first, direct);
    }

    #[test]
    fn byte_suffixes_parse() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("4k"), Some(4096));
        assert_eq!(parse_bytes("2M"), Some(2 << 20));
        assert_eq!(parse_bytes(" 1g "), Some(1 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("twelve"), None);
        assert_eq!(parse_bytes("k"), None);
    }

    fn entry(n_instrs: usize, last_use: u64) -> TraceEntry {
        TraceEntry {
            data: Arc::new(vec![Instr::plain(0u64); n_instrs]),
            label: "test".to_string(),
            last_use,
        }
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let a = (id_of(Spec92Program::Nasa7), 1);
        let b = (id_of(Spec92Program::Ear), 2);
        let c = (id_of(Spec92Program::Doduc), 3);
        let mut store = HashMap::new();
        store.insert(a, entry(100, 5)); // 2400 B, most recent
        store.insert(b, entry(100, 1)); // 2400 B, oldest
        store.insert(c, entry(100, 3)); // 2400 B
                                        // Budget for two entries: the oldest (b) goes first.
        enforce_budget_with(&mut store, a, Some(4_800));
        assert!(store.contains_key(&a) && store.contains_key(&c));
        assert!(!store.contains_key(&b));
        // Unset budget never evicts.
        enforce_budget_with(&mut store, a, None);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn budget_never_evicts_the_trace_being_handed_out() {
        let a = (id_of(Spec92Program::Nasa7), 1);
        let b = (id_of(Spec92Program::Ear), 2);
        let mut store = HashMap::new();
        store.insert(a, entry(1_000, 1)); // oldest AND just-used
        store.insert(b, entry(1_000, 2));
        // Budget fits nothing: everything but `keep` is evicted.
        enforce_budget_with(&mut store, a, Some(0));
        assert!(store.contains_key(&a), "the handed-out trace must survive");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn resident_probe_sees_only_materialised_prefixes() {
        let seed = 0x5EED_0001; // unique to this test: no cross-test interference
        let program = Spec92Program::Wave5;
        assert!(resident_trace(program, seed, 100).is_none());
        let full = spec_trace(program, seed, 2_000);
        let probe = resident_trace(program, seed, 1_500).expect("prefix is resident");
        assert_eq!(&full.instrs()[..1_500], probe.instrs());
        assert!(
            resident_trace(program, seed, 3_000).is_none(),
            "longer than materialised must miss"
        );
    }

    #[test]
    fn byte_accounting_tracks_materialisations() {
        let seed = 0x5EED_0002;
        let before = bytes_resident();
        let _t = spec_trace(Spec92Program::Hydro2d, seed, 1_000);
        let after = bytes_resident();
        assert_eq!(after - before, (1_000 * INSTR_BYTES) as u64);
        assert!(resident_entries()
            .iter()
            .any(|(name, s, bytes)| name == "hydro2d"
                && *s == seed
                && *bytes == (1_000 * INSTR_BYTES) as u64));
    }

    #[test]
    fn histograms_are_memoised_and_match_a_direct_fold() {
        let seed = 0x5EED_0004;
        let first = spec_histograms(Spec92Program::Ear, seed, 4_000, 8, 64, 512, 800);
        let second = spec_histograms(Spec92Program::Ear, seed, 4_000, 8, 64, 512, 800);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup must hit the memo"
        );
        let mut direct = ReuseHistograms::new(8, 64, 512, 800);
        let trace: Vec<Instr> = spec92_trace(Spec92Program::Ear, seed).take(4_000).collect();
        direct.process_slice(&trace);
        for line in [8, 16, 32, 64] {
            assert_eq!(first.profile(line), direct.profile(line), "line={line}");
        }
        assert!(hist_bytes_resident() > 0);
    }

    #[test]
    fn hist_budget_evicts_least_recently_used_first() {
        fn entry(last_use: u64) -> HistEntry {
            HistEntry {
                data: Arc::new(ReuseHistograms::new(32, 32, 64, 0)),
                last_use,
            }
        }
        let key = |seed| {
            (
                id_of(Spec92Program::Nasa7),
                seed,
                100,
                32u64,
                32u64,
                64usize,
                0u64,
            )
        };
        let mut store = HashMap::new();
        store.insert(key(1), entry(5)); // most recent
        store.insert(key(2), entry(1)); // oldest
        store.insert(key(3), entry(3));
        let one = store[&key(1)].bytes();
        // Budget for two entries: the oldest goes first.
        enforce_hist_budget_with(&mut store, key(1), Some(2 * one));
        assert!(store.contains_key(&key(1)) && store.contains_key(&key(3)));
        assert!(!store.contains_key(&key(2)));
        // A zero budget evicts everything but `keep`.
        enforce_hist_budget_with(&mut store, key(1), Some(0));
        assert!(store.contains_key(&key(1)), "the handed-out entry survives");
        assert_eq!(store.len(), 1);
        // Unset budget never evicts.
        enforce_hist_budget_with(&mut store, key(1), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn streaming_extraction_matches_whole_trace_extraction() {
        let cache = figure1_cache(32);
        let seed = 0x5EED_0003;
        let spec = builtin_spec(Spec92Program::Swm256);
        // Cold path: nothing resident, generation is chunked.
        let cold = extract_streaming(spec, seed, 6_000, &cache);
        let direct =
            MissTimeline::extract(cache, spec92_trace(Spec92Program::Swm256, seed).take(6_000));
        assert_eq!(cold, direct);
        // Warm path: folds the resident slice instead.
        let _pin = spec_trace(Spec92Program::Swm256, seed, 6_000);
        let warm = extract_streaming(spec, seed, 6_000, &cache);
        assert_eq!(warm, direct);
    }

    #[test]
    fn inline_specs_share_entries_with_the_builtin_of_equal_identity() {
        let seed = 0x5EED_0005;
        let named = builtin_spec(Spec92Program::Doduc);
        let mut anon = named.clone();
        anon.name = None; // a different label, the same canonical form
        let a = workload_trace(named, seed, 1_500);
        let b = workload_trace(&anon, seed, 1_500);
        assert!(Arc::ptr_eq(&a.data, &b.data), "one entry per identity");
    }
}
