//! Parallel experiment executor.
//!
//! Every experiment that fans out over workloads, line sizes, or design
//! points used to hand-roll its own `std::thread::scope` ladder (or run
//! serially). This module centralises the pattern: a fixed-size scoped
//! worker pool pulls jobs off a shared atomic cursor, so a long job on
//! one core does not serialise the rest, and results come back in input
//! order.

use crate::fault;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads for `jobs` independent jobs: one per core, never more
/// than the job count, at least one.
///
/// `REPRO_THREADS` overrides the core count (useful for pinning bench
/// runs or debugging with a single worker).
pub fn worker_count(jobs: usize) -> usize {
    let cores = std::env::var("REPRO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    cores.min(jobs).max(1)
}

/// Applies `f` to every item on a scoped worker pool and returns the
/// results in input order.
///
/// Jobs are claimed dynamically (atomic cursor), so heterogeneous job
/// lengths balance themselves; the caller's borrows stay available to
/// `f` because the pool is scoped.
///
/// # Panics
///
/// Propagates a panic from any job after the pool drains, preserving
/// the original payload — so the scheduler's panic containment still
/// sees a typed [`fault::TransientUnwind`] raised inside a worker.
pub fn parallel_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Workers inherit the spawner's current-experiment so targeted
    // fault injection reaches extractions that fan out over the pool.
    let exp = fault::current();
    let parts: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                let exp = exp.clone();
                scope.spawn(move || {
                    let _scope = fault::enter_shared(exp);
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<O>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, out) in parts.into_iter().flatten() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every job was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..257).collect();
        parallel_map(&items, |&i| {
            assert!(seen.lock().unwrap().insert(i), "job {i} ran twice");
        });
        assert_eq!(seen.lock().unwrap().len(), items.len());
    }

    #[test]
    fn worker_count_is_bounded_by_jobs() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(4) <= 4);
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn borrows_from_the_caller_are_usable() {
        let base = vec![10u64, 20, 30];
        let items = [0usize, 1, 2];
        let out = parallel_map(&items, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }
}
