//! EXP-X12 — victim caches: hit ratio bought with four lines of
//! fully-associative silicon (Jouppi, the paper's reference 7).
//!
//! The methodology's currency makes the comparison direct: the victim
//! buffer's effective-hit-ratio gain over a direct-mapped cache lands on
//! the same axis as the Figure 3–5 feature curves and as doubling the
//! associativity.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcache::{Cache, CacheConfig, VictimCache};
use simtrace::spec92::{spec92_trace, Spec92Program};

/// One workload's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimRow {
    /// Workload.
    pub program: Spec92Program,
    /// Hit ratio of the plain direct-mapped cache.
    pub dm_hr: f64,
    /// Effective hit ratio with a 4-line victim buffer.
    pub victim_hr: f64,
    /// Hit ratio of a 2-way cache of the same capacity.
    pub two_way_hr: f64,
    /// Fraction of direct-mapped misses the buffer recovered.
    pub recovery: f64,
}

/// Runs the comparison at one cache size.
pub fn run(cache_bytes: u64, victim_lines: usize, instructions: usize) -> Vec<VictimRow> {
    Spec92Program::ALL
        .iter()
        .map(|&program| {
            let dm_cfg = CacheConfig::new(cache_bytes, 32, 1).expect("valid");
            let mut dm = Cache::new(dm_cfg);
            let mut vc = VictimCache::new(dm_cfg, victim_lines);
            let mut two_way = Cache::new(CacheConfig::new(cache_bytes, 32, 2).expect("valid"));
            for instr in spec92_trace(program, 0x71C7).take(instructions) {
                if let Some(m) = instr.mem {
                    dm.access(m.op, m.addr);
                    vc.access(m.op, m.addr);
                    two_way.access(m.op, m.addr);
                }
            }
            VictimRow {
                program,
                dm_hr: dm.stats().hit_ratio(),
                victim_hr: vc.effective_hit_ratio(),
                two_way_hr: two_way.stats().hit_ratio(),
                recovery: vc.victim_stats().recovery_ratio(),
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(rows: &[VictimRow]) -> String {
    let mut t = Table::new([
        "program",
        "direct-mapped",
        "+4-line victim",
        "2-way",
        "misses recovered",
    ]);
    for r in rows {
        t.row([
            r.program.to_string(),
            format!("{:.2}%", 100.0 * r.dm_hr),
            format!("{:.2}%", 100.0 * r.victim_hr),
            format!("{:.2}%", 100.0 * r.two_way_hr),
            format!("{:.1}%", 100.0 * r.recovery),
        ]);
    }
    format!(
        "Victim buffer as hit-ratio currency (8K, L=32):\n{}\
         Four fully-associative lines recover a slice of the conflict misses —\n\
         worth comparing directly against the Figure 3–5 feature curves.\n",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "victim"
    }
    fn title(&self) -> &'static str {
        "Victim buffers"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(8 * 1024, 4, ctx.instructions)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_buffer_never_hurts_and_sometimes_helps() {
        let rows = run(8 * 1024, 4, 40_000);
        let mut helped = 0;
        for r in &rows {
            assert!(r.victim_hr >= r.dm_hr - 1e-12, "{:?}", r);
            if r.victim_hr > r.dm_hr + 1e-4 {
                helped += 1;
            }
        }
        assert!(
            helped >= 3,
            "the buffer should help several workloads: {rows:?}"
        );
    }

    #[test]
    fn two_way_upper_bounds_most_of_the_gain() {
        // Jouppi's observation: a small victim buffer approaches (but
        // does not generally exceed) doubling the associativity.
        let rows = run(8 * 1024, 4, 40_000);
        let exceeded = rows
            .iter()
            .filter(|r| r.victim_hr > r.two_way_hr + 0.01)
            .count();
        assert!(exceeded <= 1, "victim ≫ 2-way should be rare: {rows:?}");
    }

    #[test]
    fn recovery_is_a_fraction() {
        for r in run(8 * 1024, 4, 20_000) {
            assert!((0.0..=1.0).contains(&r.recovery), "{r:?}");
        }
    }

    #[test]
    fn render_lists_all_programs() {
        let text = render(&run(8 * 1024, 4, 10_000));
        for p in Spec92Program::ALL {
            assert!(text.contains(p.name()));
        }
    }
}
