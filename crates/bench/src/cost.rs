//! EXP-X8 — pins versus silicon: the abstract's cost implications,
//! quantified.
//!
//! Section 5.2 observes that doubling a *small* cache is cheap silicon
//! while doubling the bus costs pins — but for a *large* cache the bus
//! is the better deal because it trades for a huge SRAM increment. This
//! experiment makes that concrete: for each base cache size it finds the
//! equal-performance pair `(2D, C) ≡ (D, C′)` via the equivalence law
//! plus a hit-ratio-versus-size model, then prices both sides in pins
//! and SRAM bits.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use smithval::{DesignTargetModel, MissRatioModel};
use tradeoff::cost::{equivalent_cache_size, CacheAreaModel, PinModel};
use tradeoff::equiv::hit_gain_equivalent;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// One row of the pins-versus-silicon comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Cache size of the 64-bit-bus design.
    pub small_cache: u64,
    /// Its hit ratio under the model.
    pub small_hr: f64,
    /// The cache the 32-bit-bus design needs for equal performance.
    pub equivalent_cache: Option<u64>,
    /// Extra pins the 64-bit bus costs.
    pub extra_pins: u64,
    /// Extra SRAM kilobits the bigger cache costs.
    pub extra_kbits: Option<f64>,
}

/// Builds the comparison over a range of base cache sizes.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn run(beta_m: f64, line_bytes: u64) -> Result<Vec<CostRow>, TradeoffError> {
    let model = DesignTargetModel::default();
    let machine = Machine::new(4.0, line_bytes as f64, beta_m)?;
    let base = SystemConfig::full_stalling(0.5);
    let doubled = base.with_bus_factor(2.0);
    let area = CacheAreaModel::default();
    let pins = PinModel::default();

    let mut rows = Vec::new();
    for exp in 12..=18 {
        let small_cache = 1u64 << exp; // 4K .. 256K
        let small_hr = model.hit_ratio(small_cache as f64, line_bytes as f64);
        let hr2 = HitRatio::new(small_hr)?;
        // Eq. 7: the hit-ratio increase the 32-bit design needs.
        let gain = hit_gain_equivalent(&machine, &base, &doubled, hr2)?;
        let target = small_hr + gain;
        let equivalent_cache = equivalent_cache_size(
            |c| model.hit_ratio(c, line_bytes as f64),
            target,
            small_cache,
            1 << 24,
        );
        let extra_kbits = equivalent_cache
            .map(|c| {
                let big = area.bits(c, line_bytes, 2)?.total();
                let small = area.bits(small_cache, line_bytes, 2)?.total();
                Ok::<f64, TradeoffError>((big - small) as f64 / 1024.0)
            })
            .transpose()?;
        rows.push(CostRow {
            small_cache,
            small_hr,
            equivalent_cache,
            extra_pins: pins.doubling_cost(4),
            extra_kbits,
        });
    }
    Ok(rows)
}

/// Renders the table with the Section 5.2 reading.
pub fn render(rows: &[CostRow]) -> String {
    let mut t = Table::new([
        "64-bit design",
        "HR (model)",
        "32-bit needs",
        "extra pins (64-bit)",
        "extra SRAM (32-bit)",
    ]);
    for r in rows {
        t.row([
            format!("{}K + 64-bit", r.small_cache / 1024),
            format!("{:.2}%", 100.0 * r.small_hr),
            r.equivalent_cache
                .map_or("beyond 16M".to_string(), |c| format!("{}K", c / 1024)),
            format!("+{}", r.extra_pins),
            r.extra_kbits
                .map_or("—".to_string(), |k| format!("+{k:.0} Kbit")),
        ]);
    }
    format!(
        "Pins vs silicon for equal performance (L=32, β=8, α=0.5, design-target HR curve):\n{}\
         Reading: each row's two designs perform identically; small caches make the SRAM\n\
         column cheap (buy silicon, save pins), large caches make it enormous (buy pins).\n",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "cost"
    }
    fn title(&self) -> &'static str {
        "Pins vs silicon"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "analytic"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(8.0, 32).expect("canonical parameters valid")))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_cache_grows_superlinearly() {
        let rows = run(8.0, 32).unwrap();
        // The cache-size multiple needed to match the bus grows with the
        // base size (Section 5.2's "more advantageous when the cache is
        // large").
        let multiples: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.equivalent_cache.map(|c| c as f64 / r.small_cache as f64))
            .collect();
        assert!(multiples.len() >= 3, "most rows should resolve");
        assert!(
            multiples.last().unwrap() >= multiples.first().unwrap(),
            "{multiples:?}"
        );
        // Every resolved multiple is at least 2× (doubling the cache is
        // never enough on this curve's flat end... but at least 2×).
        for m in &multiples {
            assert!(*m >= 2.0, "{multiples:?}");
        }
    }

    #[test]
    fn pins_cost_is_constant_sram_cost_grows() {
        let rows = run(8.0, 32).unwrap();
        let kbits: Vec<f64> = rows.iter().filter_map(|r| r.extra_kbits).collect();
        for w in kbits.windows(2) {
            assert!(
                w[1] >= w[0],
                "SRAM increments grow with base size: {kbits:?}"
            );
        }
        for r in &rows {
            assert_eq!(r.extra_pins, 32);
        }
    }

    #[test]
    fn render_mentions_both_currencies() {
        let text = main_report();
        assert!(text.contains("extra pins"));
        assert!(text.contains("SRAM"));
    }
}
