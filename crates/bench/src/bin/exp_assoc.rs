//! Associativity and replacement-policy ablation.
fn main() {
    println!("{}", bench::assoc::main_report());
}
