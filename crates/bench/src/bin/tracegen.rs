//! Generates a SPEC92-proxy trace file for external replay.
//!
//! Usage: `tracegen <program> <instructions> <output.utt> [seed]`

use simtrace::encode::TraceBuffer;
use simtrace::spec92::{spec92_trace, Spec92Program};

fn parse_program(name: &str) -> Option<Spec92Program> {
    Spec92Program::ALL.into_iter().find(|p| p.name() == name)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 4 {
        eprintln!("usage: tracegen <program> <instructions> <output.utt> [seed]");
        eprintln!(
            "programs: {}",
            Spec92Program::ALL.map(|p| p.name()).join(", ")
        );
        std::process::exit(2);
    }
    let Some(program) = parse_program(&args[1]) else {
        eprintln!("unknown program {:?}", args[1]);
        std::process::exit(2);
    };
    let n: usize = args[2].parse().unwrap_or_else(|_| {
        eprintln!("bad instruction count {:?}", args[2]);
        std::process::exit(2);
    });
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);

    let buf = TraceBuffer::encode(spec92_trace(program, seed).take(n));
    if let Err(e) = buf.save(&args[3]) {
        eprintln!("cannot write {}: {e}", args[3]);
        std::process::exit(1);
    }
    println!(
        "{}: {} instructions, {} bytes ({:.2} B/instr) -> {}",
        program,
        buf.len(),
        buf.byte_len(),
        buf.byte_len() as f64 / buf.len() as f64,
        args[3]
    );
}
