//! Streaming-pipeline smoke: runs a Figure-6 sweep grid and a Figure-1
//! φ batch through the chunked generate→fold pipeline, checks peak RSS
//! stayed bounded (the point of streaming), then verifies the folded
//! numbers byte-identically against the materialise-then-scan oracle.
//!
//! ```text
//! stream_smoke [--instructions N] [--rss-limit-mb MB]
//! ```
//!
//! Defaults: 1 M instructions, 256 MB ceiling. The RSS check reads
//! `VmHWM` from `/proc/self/status` *before* the oracle pass (which
//! deliberately materialises the whole trace and would dominate the
//! high-water mark). Exit codes: `0` success, `1` RSS ceiling or
//! oracle mismatch, `2` bad usage.
//!
//! Wired into tier-1 as `./ci.sh stream`.

use bench::stream::{self, FoldOut, FoldSink};
use simcache::explore::{hit_ratio_grid_replay, HitRatioPoint};
use simcache::stackdist::StackDistSweep;
use simcpu::{Cpu, CpuConfig, MissTimeline, MissTimelineBuilder, StallFeature, TimelineCpu};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use simtrace::{Instr, INSTR_BYTES};
use std::process::ExitCode;

const SEED: u64 = 7;
const PROGRAM: Spec92Program = Spec92Program::Nasa7;
const LINES: [u64; 5] = [8, 16, 32, 64, 128];
const ASSOC: u32 = 2;
const BETAS: [u64; 3] = [4, 22, 50];

fn usage() -> ExitCode {
    eprintln!("usage: stream_smoke [--instructions N] [--rss-limit-mb MB]");
    ExitCode::from(2)
}

/// Peak resident set size in bytes (`VmHWM`), or `None` off-Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn sizes() -> Vec<u64> {
    (0..=6).map(|i| 1024u64 << i).collect()
}

fn phi_points() -> Vec<(StallFeature, u64)> {
    StallFeature::MEASURED
        .iter()
        .flat_map(|&f| BETAS.iter().map(move |&b| (f, b)))
        .collect()
}

fn phi_cache() -> simcache::CacheConfig {
    simcache::CacheConfig::new(8 * 1024, 32, ASSOC).expect("valid 8KB cache")
}

fn config(stall: StallFeature, beta: u64) -> CpuConfig {
    CpuConfig::baseline(
        phi_cache(),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
    )
    .with_stall(stall)
}

fn grid_from_sweeps(sweeps: &[StackDistSweep], sizes: &[u64]) -> Vec<HitRatioPoint> {
    let mut points = Vec::with_capacity(sizes.len() * LINES.len());
    for &cache_bytes in sizes {
        for (li, &line_bytes) in LINES.iter().enumerate() {
            let sets = cache_bytes / (line_bytes * u64::from(ASSOC));
            let stats = sweeps[li].stats(sets.trailing_zeros(), ASSOC);
            points.push(HitRatioPoint {
                cache_bytes,
                line_bytes,
                hit_ratio: stats.hit_ratio(),
                flush_ratio: stats.flush_ratio(),
            });
        }
    }
    points
}

/// One streamed pass: grid points from five sweep sinks, φ values from
/// a timeline sink's `O(misses)` replays.
fn streamed(n: usize, sizes: &[u64], chunk: usize) -> (Vec<HitRatioPoint>, Vec<f64>) {
    let warmup = n as u64 / 5;
    let min_sets = |l: u64| {
        sizes
            .iter()
            .map(|&c| c / (l * u64::from(ASSOC)))
            .min()
            .unwrap()
    };
    let max_sets = |l: u64| {
        sizes
            .iter()
            .map(|&c| c / (l * u64::from(ASSOC)))
            .max()
            .unwrap()
    };
    let mut sinks: Vec<FoldSink> = LINES
        .iter()
        .map(|&l| {
            FoldSink::Sweep(
                StackDistSweep::new_range(
                    l,
                    min_sets(l).trailing_zeros(),
                    max_sets(l).trailing_zeros(),
                    ASSOC,
                    warmup,
                )
                .expect("valid sweep"),
            )
        })
        .collect();
    sinks.push(FoldSink::Timeline(MissTimelineBuilder::new(phi_cache())));
    let mut out = stream::broadcast(spec92_trace(PROGRAM, SEED).take(n), chunk, sinks);
    let timeline: MissTimeline = out.pop().expect("timeline sink").into_timeline();
    let sweeps: Vec<StackDistSweep> = out.into_iter().map(FoldOut::into_sweep).collect();
    let phis = phi_points()
        .iter()
        .map(|&(stall, beta)| {
            TimelineCpu::new(&timeline, config(stall, beta))
                .expect("timeline supports the φ configs")
                .run()
                .phi()
        })
        .collect();
    (grid_from_sweeps(&sweeps, sizes), phis)
}

fn main() -> ExitCode {
    let mut instructions: usize = 1_000_000;
    let mut rss_limit_mb: u64 = 256;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |a: Option<String>| a.ok_or(());
        match arg.as_str() {
            "--instructions" => match value(args.next()).and_then(|v| v.parse().map_err(|_| ())) {
                Ok(n) if n > 0 => instructions = n,
                _ => return usage(),
            },
            "--rss-limit-mb" => match value(args.next()).and_then(|v| v.parse().map_err(|_| ())) {
                Ok(mb) => rss_limit_mb = mb,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let sizes = sizes();
    let chunk = stream::chunk_instructions();
    let (grid, phis) = streamed(instructions, &sizes, chunk);

    // RSS gate first: the oracle pass below materialises the whole
    // trace on purpose and would swamp the high-water mark.
    let peak = peak_rss_bytes();
    match peak {
        Some(bytes) => {
            let limit = rss_limit_mb * 1024 * 1024;
            println!(
                "stream_smoke: {} instr in {}-instr chunks ({} KB/chunk), {} grid + {} φ points, peak RSS {:.1} MB (limit {} MB)",
                instructions,
                chunk,
                chunk * INSTR_BYTES / 1024,
                grid.len(),
                phis.len(),
                bytes as f64 / (1024.0 * 1024.0),
                rss_limit_mb,
            );
            if bytes > limit {
                eprintln!(
                    "stream_smoke: FAIL: peak RSS {bytes} B exceeds {limit} B — streaming is not bounding memory"
                );
                return ExitCode::FAILURE;
            }
        }
        None => println!("stream_smoke: /proc/self/status unavailable, skipping RSS ceiling"),
    }

    // Oracle gate: materialise-then-scan must agree byte for byte.
    let whole: Vec<Instr> = spec92_trace(PROGRAM, SEED).take(instructions).collect();
    let oracle_grid = hit_ratio_grid_replay(
        &sizes,
        &LINES,
        ASSOC,
        || whole.iter().copied(),
        instructions as u64 / 5,
    )
    .expect("valid grid");
    if grid != oracle_grid {
        eprintln!("stream_smoke: FAIL: streamed grid diverged from the replay oracle");
        return ExitCode::FAILURE;
    }
    for (&(stall, beta), &phi) in phi_points().iter().zip(&phis) {
        let oracle = Cpu::new(config(stall, beta))
            .run(whole.iter().copied())
            .phi();
        if phi != oracle {
            eprintln!(
                "stream_smoke: FAIL: φ diverged at ({stall:?}, β={beta}): streamed {phi}, oracle {oracle}"
            );
            return ExitCode::FAILURE;
        }
    }
    println!("stream_smoke: OK — streamed folds byte-identical to the materialised oracle");
    ExitCode::SUCCESS
}
