//! Reuse-distance fingerprints of the proxy workloads.
fn main() {
    println!("{}", bench::reuse::main_report());
}
