//! Regenerates the Section 5.3 crossover-point analysis.
fn main() {
    println!("{}", bench::xover::main_report());
}
