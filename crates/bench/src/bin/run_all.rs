//! Runs every experiment through the registry scheduler, printing the
//! suite document to stdout and writing every artifact — the per-figure
//! CSVs, `run_all_report.txt` and the hash `manifest.json` — to the
//! results directory.
//!
//! `REPRO_JOBS=N` runs up to `N` experiments concurrently; the document
//! is byte-identical to the serial run either way. The per-experiment
//! wall-clock and trace-store footer goes to stderr so stdout stays
//! deterministic.

use bench::registry::RunCtx;
use bench::sched::{drive, SuiteOptions};

fn main() {
    let jobs = std::env::var("REPRO_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let opts = SuiteOptions {
        jobs,
        ctx: RunCtx::standard(),
    };
    match drive("all", &opts, &bench::common::results_dir()) {
        Ok(outcome) => {
            print!("{}", outcome.run.document());
            eprintln!("{}", outcome.run.footer());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
