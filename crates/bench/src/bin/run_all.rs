//! Runs every experiment through the registry scheduler, printing the
//! suite document to stdout and writing every artifact — the per-figure
//! CSVs, `run_all_report.txt` and the hash `manifest.json` — to the
//! results directory.
//!
//! `REPRO_JOBS=N` runs up to `N` experiments concurrently; the document
//! is byte-identical to the serial run either way. `REPRO_KEEP_GOING=1`
//! records failed experiments and completes the rest instead of
//! stopping at the first failure. The per-experiment wall-clock and
//! trace-store footer goes to stderr so stdout stays deterministic.
//!
//! Exit codes: `0` success, `1` one or more experiments failed, `3` an
//! artifact could not be written.

use bench::registry::RunCtx;
use bench::sched::{drive, SuiteOptions};
use bench::Error;

fn main() {
    let jobs = std::env::var("REPRO_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let keep_going = std::env::var("REPRO_KEEP_GOING").is_ok_and(|v| v == "1");
    let opts = SuiteOptions::new(jobs, RunCtx::standard()).keep_going(keep_going);
    match drive("all", &opts, &bench::common::results_dir()) {
        Ok(outcome) => {
            print!("{}", outcome.run.document());
            eprintln!("{}", outcome.run.footer());
            if outcome.run.has_failures() {
                eprintln!("{}", outcome.run.failure_summary());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(match e {
                Error::Write { .. } => 3,
                _ => 1,
            });
        }
    }
}
