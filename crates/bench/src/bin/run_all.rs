//! Runs every experiment in sequence, printing each report.
type Section = (&'static str, Box<dyn Fn() -> String>);

fn main() {
    let sections: Vec<Section> = vec![
        ("Tables 2 and 3", Box::new(bench::table23::main_report)),
        ("Figure 1", Box::new(bench::fig1::main_report)),
        ("Figure 2", Box::new(bench::fig2::main_report)),
        (
            "Figure 3",
            Box::new(|| bench::unified::main_report(bench::unified::FIG3)),
        ),
        (
            "Figure 4",
            Box::new(|| bench::unified::main_report(bench::unified::FIG4)),
        ),
        (
            "Figure 5",
            Box::new(|| bench::unified::main_report(bench::unified::FIG5)),
        ),
        ("Figure 6", Box::new(bench::fig6::main_report)),
        ("Example 1", Box::new(bench::example1::main_report)),
        ("Crossover points", Box::new(bench::xover::main_report)),
        ("Line-size analysis", Box::new(bench::linesize::main_report)),
        ("Model validation", Box::new(bench::validate::main_report)),
        ("Multi-issue extension", Box::new(bench::mi::main_report)),
        ("Prefetch pricing", Box::new(bench::prefetch::main_report)),
        (
            "Write-miss policy ablation",
            Box::new(bench::writemiss::main_report),
        ),
        ("Flush-ratio ablation", Box::new(bench::alpha::main_report)),
        ("L2 extension", Box::new(bench::l2::main_report)),
        ("Pins vs silicon", Box::new(bench::cost::main_report)),
        (
            "Miss-distance profiles",
            Box::new(bench::missdist::main_report),
        ),
        ("Per-phase profiles", Box::new(bench::phases::main_report)),
        ("Sector caches", Box::new(bench::sector::main_report)),
        ("Victim buffers", Box::new(bench::victim::main_report)),
        (
            "Associativity & replacement",
            Box::new(bench::assoc::main_report),
        ),
        ("Multiprogramming", Box::new(bench::context::main_report)),
        (
            "Assumption audit",
            Box::new(bench::assumptions::main_report),
        ),
        ("Non-blocking cache", Box::new(bench::nb::main_report)),
        (
            "Reuse-distance fingerprints",
            Box::new(bench::reuse::main_report),
        ),
        ("Design-space sweep", Box::new(bench::sweep::main_report)),
    ];
    for (name, f) in sections {
        println!("================ {name} ================");
        println!("{}", f());
    }
}
