//! Analytic-backend accuracy gate: the closed-form miss-ratio backend
//! must track the simulator within its stated tolerance.
//!
//! ```text
//! analytic_check [--instructions N]
//! ```
//!
//! Two checks, across all six SPEC92 proxies:
//!
//! 1. **Fully-associative exactness** — Mattson inclusion makes the
//!    histogram prefix an *exact* answer, so the analytic FA LRU hit
//!    ratio must be bit-equal to `Cache` replay (not merely close).
//! 2. **Set-conflict tolerance** — over the Figure-6 comparison grid
//!    (7 capacities × 5 line sizes × associativity 1/2/4) the analytic
//!    binomial set-conflict model must stay within
//!    [`SET_CONFLICT_TOLERANCE`] of the stack-distance sweeps.
//!
//! Exit codes: `0` success, `1` tolerance or exactness violation, `2`
//! bad usage. Wired into tier-1 as `./ci.sh analytic`.

use bench::grid::{self, GridSpec};
use simcache::explore::measure_dcache;
use simcache::hitratio::SET_CONFLICT_TOLERANCE;
use simcache::CacheConfig;
use simtrace::spec92::Spec92Program;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: analytic_check [--instructions N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut instructions: usize = 120_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instructions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => instructions = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let warmup = instructions as u64 / 5;
    let mut failed = false;

    // Gate 1: FA LRU bit-exactness against Cache replay.
    for &program in &Spec92Program::ALL {
        let analytic = grid::build_analytic(
            simtrace::workload::builtin_spec(program),
            instructions,
            warmup,
        );
        let trace = bench::tracestore::spec_trace(program, bench::sweep::SWEEP_SEED, instructions);
        for (line_bytes, lines) in [(16u64, 8u32), (32, 64), (64, 256)] {
            let cfg = CacheConfig::new(line_bytes * u64::from(lines), line_bytes, lines)
                .expect("valid fully-associative geometry");
            let measured = measure_dcache(cfg, trace.iter().copied(), warmup).hit_ratio();
            let closed = analytic
                .fa_hit_ratio(line_bytes, u64::from(lines))
                .expect("folded line size");
            if closed != measured {
                eprintln!(
                    "analytic_check: FAIL: {program} FA L={line_bytes} cap={lines}: \
                     analytic {closed} != replay {measured} (must be bit-equal)"
                );
                failed = true;
            }
        }
    }
    println!(
        "analytic_check: FA LRU bit-exact vs Cache replay across {} proxies",
        Spec92Program::ALL.len()
    );

    // Gate 2: set-conflict model within tolerance on the comparison grid.
    let spec = GridSpec::comparison(warmup);
    let results = grid::compare(&Spec92Program::ALL, &spec, instructions);
    let mut global_max = 0.0f64;
    for wg in &results {
        let max = wg.max_delta();
        global_max = global_max.max(max);
        println!(
            "analytic_check: {:<8} max |ΔHR| {:.4} mean {:.4} over {} points",
            wg.program.to_string(),
            max,
            wg.mean_delta(),
            wg.points.len()
        );
        if max > SET_CONFLICT_TOLERANCE {
            eprintln!(
                "analytic_check: FAIL: {} max |ΔHR| {:.4} exceeds tolerance {}",
                wg.program, max, SET_CONFLICT_TOLERANCE
            );
            failed = true;
        }
    }

    if failed {
        return ExitCode::FAILURE;
    }
    println!(
        "analytic_check: OK — global max |ΔHR| {global_max:.4} ≤ {SET_CONFLICT_TOLERANCE} \
         over {} grid points",
        results.iter().map(|w| w.points.len()).sum::<usize>()
    );
    ExitCode::SUCCESS
}
