//! Regenerates Figure 3 (unified tradeoff, L = 8 bytes).
fn main() {
    println!("{}", bench::unified::main_report(bench::unified::FIG3));
}
