//! Inspects a trace file produced by `tracegen`: counts, mix and the
//! hit ratio it would achieve on the paper's Figure 1 cache.

use simcache::{Cache, CacheConfig};
use simtrace::encode::TraceBuffer;
use simtrace::stats::TraceStats;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: traceinfo <trace.utt>");
        std::process::exit(2);
    };
    let buf = match TraceBuffer::load(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut stats = TraceStats::new();
    let mut cache = Cache::new(CacheConfig::new(8 * 1024, 32, 2).expect("valid cache"));
    for instr in buf.iter() {
        let instr = match instr {
            Ok(i) => i,
            Err(e) => {
                eprintln!("corrupt trace: {e}");
                std::process::exit(1);
            }
        };
        stats.record(&instr);
        if let Some(m) = instr.mem {
            cache.access(m.op, m.addr);
        }
    }
    println!("{path}: {stats}");
    println!("8K 2-way L=32 data cache: {}", cache.stats());
}
