//! Regenerates the Section 6 multi-issue extension analysis.
fn main() {
    println!("{}", bench::mi::main_report());
}
