//! Regenerates the single-pass design-space sweep (EXP-SW).
fn main() {
    println!("{}", bench::sweep::main_report());
}
