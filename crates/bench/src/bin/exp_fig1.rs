//! Regenerates Figure 1 (stalling factors vs memory cycle time).
fn main() {
    println!("{}", bench::fig1::main_report());
}
