//! Regenerates Figure 2 (bus-width/hit-ratio trading vs memory latency).
fn main() {
    println!("{}", bench::fig2::main_report());
}
