//! Regenerates Table 2 (stalling features and φ bounds).
fn main() {
    println!("{}", bench::table23::table2(8.0));
}
