//! Multiprogramming (process-switch) degradation study.
fn main() {
    println!("{}", bench::context::main_report());
}
