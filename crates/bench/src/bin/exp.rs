//! The generic experiment runner — one binary for the whole registry,
//! replacing the historical per-figure `exp_*` binaries.
//!
//! ```text
//! exp list [filter]        # id, tags, shared traces, title
//! exp <id>                 # run one experiment, print its section
//! exp run [--filter F] [--jobs N] [--results-dir DIR] [--keep-going]
//! ```
//!
//! `run` over the full registry also writes `run_all_report.txt` and
//! `manifest.json` next to the artifacts; the observability footer goes
//! to stderr so stdout stays deterministic.
//!
//! With `--keep-going`, a panicking, hung or persistently failing
//! experiment is recorded as a typed failure and the rest of the suite
//! still runs; the manifest then carries a per-experiment status
//! section. `REPRO_EXP_TIMEOUT=secs` arms the per-experiment watchdog
//! and `REPRO_FAULTS=site:exp:kind[:times],...` arms deterministic
//! fault injection (see `DESIGN.md` §11).
//!
//! Exit codes: `0` success, `1` one or more experiments failed, `2` bad
//! usage (including a filter that matches nothing), `3` an artifact
//! could not be written.

use bench::registry::{self, RunCtx};
use bench::sched::{drive, SuiteOptions};
use bench::Error;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: exp list [filter]\n       exp <id>\n       exp run [--filter <tag|id>] [--jobs N] [--results-dir DIR] [--keep-going]\n\
         exit codes: 0 ok, 1 experiment failure, 2 bad usage, 3 artifact write failure"
    );
    std::process::exit(2);
}

fn list(filter: &str) {
    let selection = registry::matching_or_err(filter).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    for e in selection {
        println!(
            "{:<12} [{}]{} {}",
            e.id(),
            e.tags().join(","),
            if e.depends_on_traces().is_empty() {
                String::new()
            } else {
                format!(" traces={}", e.depends_on_traces().join(","))
            },
            e.title()
        );
    }
}

fn run(args: &[String]) {
    let mut filter = String::new();
    let mut jobs = 1usize;
    let mut keep_going = false;
    let mut results_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--filter" => filter = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--keep-going" => keep_going = true,
            "--results-dir" => {
                results_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            _ => usage(),
        }
    }
    let opts = SuiteOptions::new(jobs, RunCtx::standard()).keep_going(keep_going);
    let dir = results_dir.unwrap_or_else(bench::common::results_dir);
    match drive(&filter, &opts, &dir) {
        Ok(outcome) => {
            print!("{}", outcome.run.document());
            eprintln!("{}", outcome.run.footer());
            if outcome.run.has_failures() {
                eprintln!("{}", outcome.run.failure_summary());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(match e {
                Error::NoMatch { .. } => 2,
                Error::Experiment { .. } => 1,
                Error::Write { .. } => 3,
            });
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => list(args.get(1).map_or("", String::as_str)),
        Some("run") => run(&args[1..]),
        Some(id) => match registry::find(id) {
            Some(exp) => println!("{}", registry::main_report(exp)),
            None => {
                eprintln!("error: no experiment with id {id:?} (try `exp list`)");
                std::process::exit(2);
            }
        },
    }
}
