//! The generic experiment runner — one binary for the whole registry,
//! replacing the historical per-figure `exp_*` binaries.
//!
//! ```text
//! exp list                 # id, tags, shared traces, title
//! exp <id>                 # run one experiment, print its section
//! exp run [--filter F] [--jobs N] [--results-dir DIR]
//! ```
//!
//! `run` over the full registry also writes `run_all_report.txt` and
//! `manifest.json` next to the artifacts; the observability footer goes
//! to stderr so stdout stays deterministic.

use bench::registry::{self, RunCtx};
use bench::sched::{drive, SuiteOptions};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: exp list\n       exp <id>\n       exp run [--filter <tag|id>] [--jobs N] [--results-dir DIR]"
    );
    std::process::exit(2);
}

fn list() {
    for e in registry::all() {
        println!(
            "{:<12} [{}]{} {}",
            e.id(),
            e.tags().join(","),
            if e.depends_on_traces().is_empty() {
                String::new()
            } else {
                format!(" traces={}", e.depends_on_traces().join(","))
            },
            e.title()
        );
    }
}

fn run(args: &[String]) {
    let mut filter = String::new();
    let mut jobs = 1usize;
    let mut results_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--filter" => filter = it.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--results-dir" => {
                results_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            _ => usage(),
        }
    }
    let opts = SuiteOptions {
        jobs,
        ctx: RunCtx::standard(),
    };
    let dir = results_dir.unwrap_or_else(bench::common::results_dir);
    match drive(&filter, &opts, &dir) {
        Ok(outcome) => {
            print!("{}", outcome.run.document());
            eprintln!("{}", outcome.run.footer());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => list(),
        Some("run") => run(&args[1..]),
        Some(id) => match registry::find(id) {
            Some(exp) => println!("{}", registry::main_report(exp)),
            None => {
                eprintln!("error: no experiment with id {id:?} (try `exp list`)");
                std::process::exit(1);
            }
        },
    }
}
