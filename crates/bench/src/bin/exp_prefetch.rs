//! Prices next-line prefetching in the paper's hit-ratio currency.
fn main() {
    println!("{}", bench::prefetch::main_report());
}
