//! Victim-buffer study (Jouppi) priced in hit-ratio currency.
fn main() {
    println!("{}", bench::victim::main_report());
}
