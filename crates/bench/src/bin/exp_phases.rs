//! Per-phase application of the methodology (Table 1's scoping).
fn main() {
    println!("{}", bench::phases::main_report());
}
