//! Converts a Dinero `.din` trace to the compact `.utt` format (and back
//! with `--reverse`), so real traces can drive the experiments.

use simtrace::din::{write_din, DinReader};
use simtrace::encode::TraceBuffer;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reverse = args.first().map(String::as_str) == Some("--reverse");
    let rest = if reverse { &args[1..] } else { &args[..] };
    let [input, output] = rest else {
        eprintln!("usage: din2utt [--reverse] <input> <output>");
        std::process::exit(2);
    };
    let result = if reverse {
        // .utt → .din
        TraceBuffer::load(input).and_then(|buf| {
            let trace: Result<Vec<_>, _> = buf.iter().collect();
            let trace = trace
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            write_din(BufWriter::new(File::create(output)?), trace)
        })
    } else {
        // .din → .utt
        File::open(input).and_then(|f| {
            let records: Result<Vec<_>, _> = DinReader::new(BufReader::new(f)).collect();
            let trace = records
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            let buf = TraceBuffer::encode(trace);
            println!("{} instructions, {} bytes", buf.len(), buf.byte_len());
            buf.save(output)
        })
    };
    if let Err(e) = result {
        eprintln!("conversion failed: {e}");
        std::process::exit(1);
    }
}
