//! Regenerates Table 3 (per-feature miss-traffic ratios, write allocate).
fn main() {
    println!(
        "{}",
        bench::table23::table3().expect("canonical parameters valid")
    );
}
