//! Regenerates Example 1 (the Short & Levy bus-vs-cache-size case study).
fn main() {
    println!("{}", bench::example1::main_report());
}
