//! Sector-cache organisation study (tag economy vs traffic).
fn main() {
    println!("{}", bench::sector::main_report());
}
