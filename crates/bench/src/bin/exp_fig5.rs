//! Regenerates Figure 5 (unified tradeoff with BNL3, L = 32 bytes).
fn main() {
    println!("{}", bench::unified::main_report(bench::unified::FIG5));
}
