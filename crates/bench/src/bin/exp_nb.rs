//! Measures the non-blocking cache's stalling factor (left unmeasured in
//! the paper) and ranks it.
fn main() {
    println!("{}", bench::nb::main_report());
}
