//! Pins-versus-silicon cost analysis for equal-performance designs.
fn main() {
    println!("{}", bench::cost::main_report());
}
