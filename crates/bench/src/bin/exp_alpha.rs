//! Flush-ratio (α) sensitivity ablation.
fn main() {
    println!("{}", bench::alpha::main_report());
}
