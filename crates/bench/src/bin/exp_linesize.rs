//! Regenerates the Section 5.4.1 line-size analysis.
fn main() {
    println!("{}", bench::linesize::main_report());
}
