//! Diagnostic: per-proxy cache behaviour at the paper's Figure 1 cache
//! (8 KB two-way, L = 32, D = 4, β = 8) and at 32 KB for the
//! size-sensitivity the Example 1 case study relies on.

use report::Table;
use simcache::CacheConfig;
use simcpu::{Cpu, CpuConfig, StallFeature};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};

fn measure(program: Spec92Program, cache_bytes: u64, instructions: usize) -> simcpu::SimResult {
    let cfg = CpuConfig::baseline(
        CacheConfig::new(cache_bytes, 32, 2).expect("valid cache"),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), 8),
    )
    .with_stall(StallFeature::FullStall);
    Cpu::new(cfg).run(spec92_trace(program, 0xDEAD_BEEF).take(instructions))
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000);
    let mut t = Table::new([
        "program", "HR @8K", "HR @32K", "HR @128K", "α @8K", "mem frac",
    ]);
    for p in Spec92Program::ALL {
        let r8 = measure(p, 8 * 1024, n);
        let r32 = measure(p, 32 * 1024, n);
        let r128 = measure(p, 128 * 1024, n);
        t.row([
            p.to_string(),
            format!("{:.2}%", 100.0 * r8.dcache.hit_ratio()),
            format!("{:.2}%", 100.0 * r32.dcache.hit_ratio()),
            format!("{:.2}%", 100.0 * r128.dcache.hit_ratio()),
            format!("{:.3}", r8.alpha()),
            format!(
                "{:.3}",
                r8.dcache.accesses() as f64 / r8.instructions as f64
            ),
        ]);
    }
    println!("{}", t.render());
}
