//! Inter-miss distance profiles behind the Figure 1 stalling factors.
fn main() {
    println!("{}", bench::missdist::main_report());
}
