//! Write-allocate versus write-around ablation.
fn main() {
    println!("{}", bench::writemiss::main_report());
}
