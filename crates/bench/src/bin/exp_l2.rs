//! Second-level-cache extension analysis.
fn main() {
    println!("{}", bench::l2::main_report());
}
