//! Audit of the paper's Section 3.1 hardware assumptions.
fn main() {
    println!("{}", bench::assumptions::main_report());
}
