//! Regenerates Figure 6 (validation with Smith's design-target optima).
fn main() {
    println!("{}", bench::fig6::main_report());
}
