//! Regenerates Figure 4 (unified tradeoff, L = 32 bytes).
fn main() {
    println!("{}", bench::unified::main_report(bench::unified::FIG4));
}
