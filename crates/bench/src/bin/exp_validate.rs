//! Regenerates the Section 4.5 model-vs-simulation validation.
fn main() {
    println!("{}", bench::validate::main_report());
}
