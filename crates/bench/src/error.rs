//! Typed failure and error model of the experiment pipeline.
//!
//! Three layers, from innermost out:
//!
//! * [`ExpFailure`] — one experiment went wrong (panicked, overran its
//!   watchdog deadline, or exhausted its transient-error retries). The
//!   scheduler turns these into per-experiment outcomes instead of
//!   letting them abort the pool; `--keep-going` runs collect them.
//! * [`Error`] — a whole [`crate::sched::drive`] call could not produce
//!   its result: nothing matched the filter, a strict (non-keep-going)
//!   run hit an [`ExpFailure`], or an artifact could not be written
//!   even after retries. The binaries map each variant to a distinct
//!   exit code.
//! * [`lock_recovering`] — the shared poison-recovery primitive: a
//!   panicked (or fault-injected) holder must never wedge later
//!   experiments behind a poisoned `Mutex`.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Why one experiment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The experiment's `run` (or an extraction it triggered) panicked.
    Panicked,
    /// The experiment overran the per-experiment watchdog deadline.
    TimedOut {
        /// The configured deadline it overran.
        limit: Duration,
    },
    /// A transient (injected or real I/O) error survived every retry.
    Transient,
}

/// One experiment's terminal failure, as recorded in suite outcomes,
/// the failure summary and the manifest status section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpFailure {
    /// What class of failure this is.
    pub kind: FailureKind,
    /// Deterministic human-readable cause (panic message, injected
    /// fault description, or the last transient error).
    pub message: String,
    /// Retries spent before giving up.
    pub retries: u32,
}

impl ExpFailure {
    /// The manifest status keyword (`failed` / `timed-out`).
    pub fn status(&self) -> &'static str {
        match self.kind {
            FailureKind::TimedOut { .. } => "timed-out",
            FailureKind::Panicked | FailureKind::Transient => "failed",
        }
    }
}

impl fmt::Display for ExpFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Panicked => write!(f, "panicked: {}", self.message),
            FailureKind::TimedOut { limit } => {
                write!(f, "timed out after {}s watchdog", limit.as_secs_f64())
            }
            FailureKind::Transient => {
                write!(f, "failed after {} retries: {}", self.retries, self.message)
            }
        }
    }
}

/// A suite-level error from [`crate::sched::drive`].
#[derive(Debug)]
pub enum Error {
    /// The selection filter matched no registered experiment.
    NoMatch {
        /// The offending filter.
        filter: String,
    },
    /// A strict (non-`--keep-going`) run stopped at this failure.
    Experiment {
        /// Id of the failed experiment.
        id: String,
        /// What went wrong.
        failure: ExpFailure,
    },
    /// An artifact or manifest write failed even after retries.
    Write {
        /// Destination path.
        path: PathBuf,
        /// Underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoMatch { filter } => {
                write!(f, "no experiment matches {filter:?} (try `list`)")
            }
            Error::Experiment { id, failure } => {
                write!(
                    f,
                    "experiment {id} {failure} (rerun with --keep-going to finish the rest)"
                )
            }
            Error::Write { path, source } => write!(f, "writing {}: {source}", path.display()),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Write { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Locks `m`, recovering from a poisoned mutex instead of propagating
/// the panic: the poison flag is cleared and the guard handed back,
/// with a flag telling the caller recovery happened (so it can drop
/// state a dying holder may have left half-written).
pub fn lock_recovering<T>(m: &Mutex<T>) -> (MutexGuard<'_, T>, bool) {
    match m.lock() {
        Ok(guard) => (guard, false),
        Err(poisoned) => {
            m.clear_poison();
            (poisoned.into_inner(), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_statuses_and_messages() {
        let p = ExpFailure {
            kind: FailureKind::Panicked,
            message: "boom".into(),
            retries: 0,
        };
        assert_eq!(p.status(), "failed");
        assert!(p.to_string().contains("panicked: boom"));

        let t = ExpFailure {
            kind: FailureKind::TimedOut {
                limit: Duration::from_secs(2),
            },
            message: String::new(),
            retries: 0,
        };
        assert_eq!(t.status(), "timed-out");
        assert!(t.to_string().contains("2s watchdog"));

        let r = ExpFailure {
            kind: FailureKind::Transient,
            message: "injected i/o fault".into(),
            retries: 3,
        };
        assert_eq!(r.status(), "failed");
        assert!(r.to_string().contains("after 3 retries"));
    }

    #[test]
    fn error_messages_name_the_cause() {
        let e = Error::NoMatch {
            filter: "warp".into(),
        };
        assert!(e.to_string().contains("no experiment matches \"warp\""));
        let e = Error::Write {
            path: PathBuf::from("/x/y.csv"),
            source: io::Error::other("disk on fire"),
        };
        assert!(e.to_string().contains("/x/y.csv"));
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn lock_recovering_survives_a_poisoned_mutex() {
        let m = Mutex::new(7u32);
        // Poison it: panic while holding the guard on another thread.
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = m.lock().unwrap();
                panic!("poison the mutex");
            })
            .join()
        });
        assert!(m.is_poisoned());
        let (guard, recovered) = lock_recovering(&m);
        assert!(recovered);
        assert_eq!(*guard, 7);
        drop(guard);
        // Poison is cleared: the next lock is clean.
        let (_guard, recovered) = lock_recovering(&m);
        assert!(!recovered);
    }
}
