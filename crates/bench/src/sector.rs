//! EXP-X11 — sector caches: large-line tag economy at small-line
//! traffic.
//!
//! Alpert & Flynn (the paper's related work) argue larger lines amortise
//! tag silicon; Smith's criterion says slow buses punish large-line
//! traffic. A sector cache takes both sides: one tag per 64-byte block,
//! 8-byte sub-block fills. This experiment measures hit ratio, memory
//! traffic and mean access time for three equal-data-capacity designs —
//! conventional small lines, conventional large lines, and the sector
//! organisation — and prices their silicon with the cost model.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcache::{Cache, CacheConfig, SectorCache, SectorConfig};
use simtrace::spec92::{spec92_trace, Spec92Program};
use tradeoff::cost::CacheAreaModel;
use tradeoff::TradeoffError;

/// Measured behaviour of one organisation on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct OrgResult {
    /// Organisation label.
    pub name: String,
    /// Hit ratio.
    pub hit_ratio: f64,
    /// Bytes fetched from memory.
    pub read_bytes: u64,
    /// Bytes written back.
    pub write_bytes: u64,
    /// Mean memory access time per reference (cycles).
    pub mean_access: f64,
    /// Total SRAM bits (data + tags + status).
    pub sram_bits: u64,
}

/// Memory technology for the mean-access-time computation: latency `c`
/// cycles plus `beta` cycles per `bus_bytes` transferred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SectorTech {
    /// Access latency in cycles (includes the hit cycle).
    pub c: f64,
    /// Cycles per bus chunk.
    pub beta: f64,
    /// Bus width in bytes.
    pub bus_bytes: f64,
}

impl SectorTech {
    fn transfer(&self, bytes: f64) -> f64 {
        self.beta * (bytes / self.bus_bytes).max(1.0)
    }
}

fn conventional(
    name: &str,
    cache_bytes: u64,
    line_bytes: u64,
    program: Spec92Program,
    n: usize,
    tech: SectorTech,
) -> Result<OrgResult, TradeoffError> {
    let mut cache = Cache::new(CacheConfig::new(cache_bytes, line_bytes, 2).expect("valid"));
    for instr in spec92_trace(program, 0x5EC7).take(n) {
        if let Some(m) = instr.mem {
            cache.access(m.op, m.addr);
        }
    }
    let s = cache.stats();
    let accesses = s.accesses() as f64;
    let per_miss = tech.c - 1.0 + tech.transfer(line_bytes as f64);
    let flush = s.writebacks as f64 * tech.transfer(line_bytes as f64);
    let mean_access = 1.0 + (s.misses() as f64 * per_miss + flush) / accesses;
    let bits = CacheAreaModel::default().bits(cache_bytes, line_bytes, 2)?;
    Ok(OrgResult {
        name: name.to_string(),
        hit_ratio: s.hit_ratio(),
        read_bytes: s.read_bytes(line_bytes),
        write_bytes: s.flush_bytes(line_bytes),
        mean_access,
        sram_bits: bits.total(),
    })
}

fn sector(
    cache_bytes: u64,
    block: u64,
    sub: u64,
    program: Spec92Program,
    n: usize,
    tech: SectorTech,
) -> Result<OrgResult, TradeoffError> {
    let cfg = SectorConfig::new(cache_bytes, block, sub, 2).expect("valid sector");
    let mut cache = SectorCache::new(cfg);
    for instr in spec92_trace(program, 0x5EC7).take(n) {
        if let Some(m) = instr.mem {
            cache.access(m.op, m.addr);
        }
    }
    let s = cache.stats();
    let accesses = s.accesses() as f64;
    let per_miss = tech.c - 1.0 + tech.transfer(sub as f64);
    let flush = cache.sector_stats().subblock_writebacks as f64 * tech.transfer(sub as f64);
    let mean_access = 1.0 + (s.misses() as f64 * per_miss + flush) / accesses;
    // Silicon: data + one tag per block + valid/dirty bit per sub-block.
    let blocks = cache_bytes / block;
    let sets = cfg.num_sets();
    let tag_bits = 32 - block.trailing_zeros() - sets.trailing_zeros();
    let sram_bits =
        cache_bytes * 8 + blocks * u64::from(tag_bits) + blocks * 2 * u64::from(cfg.subblocks());
    Ok(OrgResult {
        name: format!("sector {block}B/{sub}B"),
        hit_ratio: s.hit_ratio(),
        read_bytes: cache.read_bytes(),
        write_bytes: cache.writeback_bytes(),
        mean_access,
        sram_bits,
    })
}

/// Runs the three organisations on one workload.
///
/// # Errors
///
/// Propagates cost-model errors.
pub fn run(program: Spec92Program, n: usize) -> Result<Vec<OrgResult>, TradeoffError> {
    let tech = SectorTech {
        c: 7.0,
        beta: 2.0,
        bus_bytes: 8.0,
    };
    Ok(vec![
        conventional("conventional 8B lines", 8 * 1024, 8, program, n, tech)?,
        conventional("conventional 64B lines", 8 * 1024, 64, program, n, tech)?,
        sector(8 * 1024, 64, 8, program, n, tech)?,
    ])
}

/// Renders the comparison for a few workloads.
///
/// # Errors
///
/// Propagates cost-model errors.
pub fn report(n: usize) -> Result<String, TradeoffError> {
    let mut out = String::new();
    for program in [Spec92Program::Nasa7, Spec92Program::Doduc] {
        let rows = run(program, n)?;
        let mut t = Table::new([
            "organisation",
            "HR",
            "read traffic",
            "mean access",
            "SRAM Kbit",
        ]);
        for r in &rows {
            t.row([
                r.name.clone(),
                format!("{:.2}%", 100.0 * r.hit_ratio),
                format!("{} KB", r.read_bytes / 1024),
                format!("{:.3}", r.mean_access),
                format!("{:.1}", r.sram_bits as f64 / 1024.0),
            ]);
        }
        out.push_str(&format!(
            "{program} (8K data, c=7, β=2/8B bus):\n{}\n",
            t.render()
        ));
    }
    out.push_str(
        "The sector organisation keeps the 64B design's tag budget while fetching 8B\n\
         sub-blocks: tag silicon of the large line, traffic near the small line.\n",
    );
    Ok(out)
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "sector"
    }
    fn title(&self) -> &'static str {
        "Sector caches"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(report(ctx.instructions).expect("canonical parameters valid"))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by<'a>(rows: &'a [OrgResult], prefix: &str) -> &'a OrgResult {
        rows.iter().find(|r| r.name.starts_with(prefix)).unwrap()
    }

    #[test]
    fn sector_has_large_line_tag_budget() {
        let rows = run(Spec92Program::Nasa7, 20_000).unwrap();
        let small = by(&rows, "conventional 8B");
        let large = by(&rows, "conventional 64B");
        let sect = by(&rows, "sector");
        // Tag budgets: small lines burn far more SRAM than 64B tags;
        // the sector sits near the 64B design.
        assert!(small.sram_bits > large.sram_bits);
        assert!(sect.sram_bits < small.sram_bits);
        let large_overhead = large.sram_bits - 8 * 1024 * 8;
        let sect_overhead = sect.sram_bits - 8 * 1024 * 8;
        assert!(
            (sect_overhead as f64) < 2.5 * large_overhead as f64,
            "sector overhead {sect_overhead} vs 64B overhead {large_overhead}"
        );
    }

    #[test]
    fn sector_traffic_well_below_large_lines_on_irregular_code() {
        let rows = run(Spec92Program::Doduc, 30_000).unwrap();
        let large = by(&rows, "conventional 64B");
        let sect = by(&rows, "sector");
        assert!(
            (sect.read_bytes as f64) < 0.6 * large.read_bytes as f64,
            "sector {} vs 64B {}",
            sect.read_bytes,
            large.read_bytes
        );
    }

    #[test]
    fn mean_access_times_are_sane() {
        for program in [Spec92Program::Nasa7, Spec92Program::Ear] {
            for r in run(program, 20_000).unwrap() {
                assert!(r.mean_access >= 1.0, "{}: {}", r.name, r.mean_access);
                assert!(r.mean_access < 20.0, "{}: {}", r.name, r.mean_access);
            }
        }
    }

    #[test]
    fn report_renders_both_programs() {
        let text = report(10_000).unwrap();
        assert!(text.contains("nasa7") && text.contains("doduc"));
        assert!(text.contains("sector 64B/8B"));
    }
}
