//! The chunked generate→fold pipeline: paper-scale traces without
//! paper-scale memory.
//!
//! Every fold the methodology needs — a [`StackDistSweep`] per line
//! size, a [`MissTimeline`] per cache — consumes the trace strictly in
//! order. This module broadcasts one deterministic chunk stream
//! ([`simtrace::chunk::ChunkedTrace`]) to any number of [`ChunkSink`]s:
//! serially when only one worker is available, or as a rayon-free
//! `std::thread::scope` pipeline (producer thread + one consumer per
//! sink, bounded channels) when cores allow. Either way each sink sees
//! the identical ordered chunk sequence, so the folded results are
//! **bit-identical** to the monolithic whole-trace path — asserted by
//! `tests/streaming_oracle.rs` — and peak trace-resident memory is a
//! few chunks, not the trace length.
//!
//! The chunk size comes from `REPRO_STREAM_CHUNK` (instructions,
//! default [`simtrace::chunk::DEFAULT_CHUNK_INSTRUCTIONS`]); the
//! determinism contract is documented in `DESIGN.md` §12.

use crate::{exec, fault};
use simcache::stackdist::StackDistSweep;
use simcpu::{MissTimeline, MissTimelineBuilder};
use simtrace::chunk::{ChunkedTrace, DEFAULT_CHUNK_INSTRUCTIONS};
use simtrace::{Instr, ReuseHistograms};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;

/// Chunks a producer may hold in flight per sink (bounded channel
/// depth): with the producer's scratch chunk this caps trace-resident
/// bytes at `(IN_FLIGHT_CHUNKS + 1) × chunk × 24 B` per sink fan-out.
const IN_FLIGHT_CHUNKS: usize = 2;

/// Instructions per streamed chunk: `REPRO_STREAM_CHUNK`, defaulting to
/// [`DEFAULT_CHUNK_INSTRUCTIONS`].
pub fn chunk_instructions() -> usize {
    std::env::var("REPRO_STREAM_CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CHUNK_INSTRUCTIONS)
}

/// An order-sensitive fold over a chunked instruction stream.
///
/// Implementations must be pure folds of the chunk sequence: feeding
/// the same chunks in the same order must produce the same output
/// regardless of thread interleaving — that is the entire determinism
/// argument of the parallel pipeline.
pub trait ChunkSink: Send {
    /// The folded result.
    type Out: Send;
    /// Folds one chunk (chunks arrive in stream order, back to back).
    fn consume(&mut self, chunk: &[Instr]);
    /// Seals the fold.
    fn finish(self) -> Self::Out;
}

impl ChunkSink for StackDistSweep {
    type Out = StackDistSweep;
    fn consume(&mut self, chunk: &[Instr]) {
        self.process_slice(chunk);
    }
    fn finish(self) -> StackDistSweep {
        self
    }
}

impl ChunkSink for MissTimelineBuilder {
    type Out = MissTimeline;
    fn consume(&mut self, chunk: &[Instr]) {
        self.process_slice(chunk);
    }
    fn finish(self) -> MissTimeline {
        MissTimelineBuilder::finish(self)
    }
}

impl ChunkSink for ReuseHistograms {
    type Out = ReuseHistograms;
    fn consume(&mut self, chunk: &[Instr]) {
        self.process_slice(chunk);
    }
    fn finish(self) -> ReuseHistograms {
        self
    }
}

/// A heterogeneous sink for pipelines folding sweeps and timelines out
/// of one generation pass (the `stream_smoke` / `BENCH_stream` shape).
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum FoldSink {
    /// Folds into a [`StackDistSweep`].
    Sweep(StackDistSweep),
    /// Folds into a [`MissTimeline`].
    Timeline(MissTimelineBuilder),
    /// Folds into multi-granularity [`ReuseHistograms`] (the analytic
    /// hit-ratio backend's input).
    Hist(ReuseHistograms),
}

/// The result of one [`FoldSink`].
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum FoldOut {
    /// A finished sweep.
    Sweep(StackDistSweep),
    /// A finished timeline.
    Timeline(MissTimeline),
    /// Finished reuse-distance histograms.
    Hist(ReuseHistograms),
}

impl FoldOut {
    /// Unwraps a sweep result.
    ///
    /// # Panics
    ///
    /// Panics if this fold produced a timeline.
    pub fn into_sweep(self) -> StackDistSweep {
        match self {
            FoldOut::Sweep(s) => s,
            _ => panic!("fold did not produce a sweep"),
        }
    }

    /// Unwraps a timeline result.
    ///
    /// # Panics
    ///
    /// Panics if this fold did not produce a timeline.
    pub fn into_timeline(self) -> MissTimeline {
        match self {
            FoldOut::Timeline(t) => t,
            _ => panic!("fold did not produce a timeline"),
        }
    }

    /// Unwraps a histograms result.
    ///
    /// # Panics
    ///
    /// Panics if this fold did not produce histograms.
    pub fn into_histograms(self) -> ReuseHistograms {
        match self {
            FoldOut::Hist(h) => h,
            _ => panic!("fold did not produce histograms"),
        }
    }
}

impl ChunkSink for FoldSink {
    type Out = FoldOut;
    fn consume(&mut self, chunk: &[Instr]) {
        match self {
            FoldSink::Sweep(s) => s.process_slice(chunk),
            FoldSink::Timeline(t) => t.process_slice(chunk),
            FoldSink::Hist(h) => h.process_slice(chunk),
        }
    }
    fn finish(self) -> FoldOut {
        match self {
            FoldSink::Sweep(s) => FoldOut::Sweep(s),
            FoldSink::Timeline(t) => FoldOut::Timeline(t.finish()),
            FoldSink::Hist(h) => FoldOut::Hist(h),
        }
    }
}

/// Streams `source` through every sink in `chunk_len`-instruction
/// blocks and returns the folded results in sink order.
///
/// With more than one worker available ([`exec::worker_count`]), the
/// generator runs on the calling thread and each sink folds on its own
/// scoped thread behind a bounded channel (generate→fold pipelining
/// plus sink fan-out); otherwise everything runs serially on one
/// reused buffer. Both paths deliver the identical chunk sequence to
/// every sink, so the results are independent of the schedule.
///
/// # Panics
///
/// Propagates a panic from any sink, and panics if `chunk_len` is 0.
pub fn broadcast<I, S>(source: I, chunk_len: usize, sinks: Vec<S>) -> Vec<S::Out>
where
    I: Iterator<Item = Instr>,
    S: ChunkSink,
{
    let mut chunks = ChunkedTrace::new(source, chunk_len);
    if exec::worker_count(sinks.len()) <= 1 || sinks.len() <= 1 {
        let mut sinks = sinks;
        let mut buf = Vec::with_capacity(chunk_len);
        while chunks.next_chunk_into(&mut buf) {
            for sink in &mut sinks {
                sink.consume(&buf);
            }
        }
        return sinks.into_iter().map(ChunkSink::finish).collect();
    }

    // Consumers inherit the spawner's current-experiment so targeted
    // fault injection reaches folds that fan out over the pipeline.
    let exp = fault::current();
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(sinks.len());
        let handles: Vec<_> = sinks
            .into_iter()
            .map(|mut sink| {
                let (tx, rx) = mpsc::sync_channel::<Arc<Vec<Instr>>>(IN_FLIGHT_CHUNKS);
                senders.push(tx);
                let exp = exp.clone();
                scope.spawn(move || {
                    let _scope = fault::enter_shared(exp);
                    while let Ok(chunk) = rx.recv() {
                        sink.consume(&chunk);
                    }
                    sink.finish()
                })
            })
            .collect();
        let mut buf = Vec::with_capacity(chunk_len);
        while chunks.next_chunk_into(&mut buf) {
            let shared = Arc::new(std::mem::replace(&mut buf, Vec::with_capacity(chunk_len)));
            for tx in &senders {
                // A closed channel means that consumer panicked; keep
                // feeding the others, the join below re-raises it.
                let _ = tx.send(Arc::clone(&shared));
            }
        }
        drop(senders);
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

/// Folds an already-materialised trace through every sink in
/// `chunk_len` blocks — the warm-store fast path: no copy, no
/// generation, same chunk boundaries (hence bit-identical folds) as
/// [`broadcast`] over the equivalent generator.
pub fn fold_slice<S: ChunkSink>(data: &[Instr], chunk_len: usize, sinks: Vec<S>) -> Vec<S::Out> {
    assert!(chunk_len > 0, "chunk length must be at least 1");
    if exec::worker_count(sinks.len()) <= 1 || sinks.len() <= 1 {
        let mut sinks = sinks;
        for chunk in data.chunks(chunk_len) {
            for sink in &mut sinks {
                sink.consume(chunk);
            }
        }
        return sinks.into_iter().map(ChunkSink::finish).collect();
    }
    let exp = fault::current();
    std::thread::scope(|scope| {
        let handles: Vec<_> = sinks
            .into_iter()
            .map(|mut sink| {
                let exp = exp.clone();
                scope.spawn(move || {
                    let _scope = fault::enter_shared(exp);
                    for chunk in data.chunks(chunk_len) {
                        sink.consume(chunk);
                    }
                    sink.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

/// Timing comparison between the materialise-then-scan baseline and the
/// streaming chunked pipeline at a paper-scale trace length, as
/// recorded in `BENCH_stream.json` by the `stream` benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamBenchResult {
    /// Figure-6 grid points measured.
    pub grid_points: usize,
    /// Figure-1 φ timing points measured.
    pub phi_points: usize,
    /// Trace length in instructions.
    pub instructions: usize,
    /// Instructions per streamed chunk.
    pub chunk_instructions: usize,
    /// Wall-clock seconds for the materialise-then-scan baseline
    /// (collect the trace, replay it per grid config, full-simulate it
    /// per φ point).
    pub baseline_secs: f64,
    /// Wall-clock seconds for the streaming pipeline (chunked
    /// generation folded into sweeps + a timeline, then O(misses)
    /// replays).
    pub streaming_secs: f64,
    /// Trace length of the long streaming-only run (the baseline
    /// cannot materialise this many instructions in bounded memory).
    pub large_instructions: usize,
    /// Wall-clock seconds for the long streaming-only run.
    pub large_streaming_secs: f64,
}

impl StreamBenchResult {
    /// Total design points measured per pass.
    pub fn points(&self) -> usize {
        self.grid_points + self.phi_points
    }

    /// Baseline time over streaming time — equivalently the
    /// points-per-second ratio, since both paths answer the same
    /// points.
    pub fn speedup(&self) -> f64 {
        self.baseline_secs / self.streaming_secs
    }

    /// Design points per second through the streaming pipeline.
    pub fn points_per_sec(&self) -> f64 {
        self.points() as f64 / self.streaming_secs
    }

    /// Design points per second through the baseline.
    pub fn baseline_points_per_sec(&self) -> f64 {
        self.points() as f64 / self.baseline_secs
    }

    /// Instructions per second through the long streaming-only run.
    pub fn large_instr_per_sec(&self) -> f64 {
        self.large_instructions as f64 / self.large_streaming_secs
    }

    /// Serialises the record as a small JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"streaming_pipeline\",\n  \"grid_points\": {},\n  \"phi_points\": {},\n  \"instructions\": {},\n  \"chunk_instructions\": {},\n  \"baseline_secs\": {:.6},\n  \"streaming_secs\": {:.6},\n  \"baseline_points_per_sec\": {:.1},\n  \"points_per_sec\": {:.1},\n  \"speedup\": {:.2},\n  \"large_instructions\": {},\n  \"large_streaming_secs\": {:.6},\n  \"large_instr_per_sec\": {:.1}\n}}\n",
            self.grid_points,
            self.phi_points,
            self.instructions,
            self.chunk_instructions,
            self.baseline_secs,
            self.streaming_secs,
            self.baseline_points_per_sec(),
            self.points_per_sec(),
            self.speedup(),
            self.large_instructions,
            self.large_streaming_secs,
            self.large_instr_per_sec(),
        )
    }

    /// Writes the JSON record to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error on failure.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtrace::spec92::{spec92_trace, Spec92Program};

    const N: usize = 12_000;

    fn source() -> impl Iterator<Item = Instr> {
        spec92_trace(Spec92Program::Swm256, 7).take(N)
    }

    fn sweep_sink() -> StackDistSweep {
        StackDistSweep::new(32, 6, 2, 2_000).expect("valid sweep")
    }

    #[test]
    fn broadcast_folds_match_the_monolithic_path() {
        let mono = StackDistSweep::run(32, 6, 2, 2_000, source()).unwrap();
        for chunk in [257, 4_096, N] {
            let folded = broadcast(source(), chunk, vec![sweep_sink(), sweep_sink()]);
            assert_eq!(folded.len(), 2);
            for sweep in &folded {
                for k in 0..=6 {
                    assert_eq!(sweep.stats(k, 2), mono.stats(k, 2), "chunk={chunk} k={k}");
                }
            }
        }
    }

    #[test]
    fn mixed_sinks_fold_in_one_pass() {
        let cache = simcache::CacheConfig::new(8 * 1024, 32, 2).unwrap();
        let out = broadcast(
            source(),
            1_024,
            vec![
                FoldSink::Sweep(sweep_sink()),
                FoldSink::Timeline(MissTimelineBuilder::new(cache)),
            ],
        );
        let [sweep, timeline]: [FoldOut; 2] = out.try_into().expect("two folds");
        let sweep = sweep.into_sweep();
        let timeline = timeline.into_timeline();
        assert_eq!(sweep.instructions(), N as u64);
        assert_eq!(timeline.instructions(), N as u64);
        assert_eq!(timeline, MissTimeline::extract(cache, source()));
    }

    #[test]
    fn histogram_sink_folds_chunk_invariantly() {
        let mut whole = ReuseHistograms::new(8, 128, 4_096, 2_000);
        let data: Vec<Instr> = source().collect();
        whole.process_slice(&data);
        for chunk in [333, 8_192, N] {
            let out = broadcast(
                source(),
                chunk,
                vec![FoldSink::Hist(ReuseHistograms::new(8, 128, 4_096, 2_000))],
            );
            let [hist]: [FoldOut; 1] = out.try_into().expect("one fold");
            let hist = hist.into_histograms();
            for line in whole.line_sizes() {
                assert_eq!(
                    hist.profile(line),
                    whole.profile(line),
                    "chunk={chunk} line={line}"
                );
                assert_eq!(hist.set_mass(line), whole.set_mass(line));
            }
        }
    }

    #[test]
    fn fold_slice_matches_broadcast() {
        let data: Vec<Instr> = source().collect();
        let via_slice = fold_slice(&data, 999, vec![sweep_sink()]);
        let via_stream = broadcast(source(), 999, vec![sweep_sink()]);
        for k in 0..=6 {
            assert_eq!(via_slice[0].stats(k, 2), via_stream[0].stats(k, 2));
        }
    }

    #[test]
    fn bench_record_round_trips_the_numbers() {
        let r = StreamBenchResult {
            grid_points: 35,
            phi_points: 12,
            instructions: 5_000_000,
            chunk_instructions: 65_536,
            baseline_secs: 10.0,
            streaming_secs: 2.0,
            large_instructions: 50_000_000,
            large_streaming_secs: 25.0,
        };
        assert_eq!(r.points(), 47);
        assert!((r.speedup() - 5.0).abs() < 1e-12);
        assert!((r.points_per_sec() - 23.5).abs() < 1e-9);
        assert!((r.large_instr_per_sec() - 2_000_000.0).abs() < 1e-6);
        let json = r.to_json();
        for key in [
            "streaming_pipeline",
            "grid_points",
            "phi_points",
            "chunk_instructions",
            "baseline_secs",
            "streaming_secs",
            "points_per_sec",
            "speedup",
            "large_instructions",
            "large_streaming_secs",
            "large_instr_per_sec",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn chunk_instructions_defaults_sanely() {
        // Do not touch the env var (tests run in-process, in parallel);
        // whatever it is set to, the result is positive.
        assert!(chunk_instructions() > 0);
    }
}
