//! EXP-GRID — the closed-form miss-ratio backend on dense design grids.
//!
//! The sweep engine already answers Figure-6-style grids in one pass
//! per line size, but it still *simulates*: every additional set count
//! or associativity costs tree updates per reference. The analytic
//! backend ([`simcache::Analytic`]) inverts the cost structure — one
//! streaming reuse-distance fold per workload ([`tracestore`]
//! memoises it), after which any (size × line × assoc) point is a
//! histogram walk, independent of trace length. This experiment:
//!
//! 1. runs both backends over the Figure-6 comparison grid (7 cache
//!    sizes × 5 line sizes × associativity 1/2/4) and reports the
//!    per-workload divergence against the pinned
//!    [`simcache::hitratio::SET_CONFLICT_TOLERANCE`];
//! 2. answers a *dense* grid no simulator pass here could touch —
//!    every set count from 1 to [`DenseGrid::standard`]'s cap,
//!    including the non-power-of-two geometries replay cannot even
//!    express — and reports the cheapest geometry per workload
//!    reaching a target hit ratio.

use crate::registry::{ExpReport, Experiment, RunCtx};
use crate::sweep::SWEEP_SEED;
use crate::{stream, tracestore};
use report::{Artifact, Table};
use simcache::hitratio::SET_CONFLICT_TOLERANCE;
use simcache::stackdist::StackDistSweep;
use simcache::{Analytic, HitRatioBackend, Simulated};
use simtrace::spec92::Spec92Program;
use simtrace::workload::{builtin_spec, WorkloadSpec};

// The grid shapes (and the dense-grid search) are owned by the typed
// query API so the CLI, the query server and this experiment provably
// answer from one definition; this module re-exports them under their
// historical paths.
pub use tradeoff::api::{dense_best, DenseBest, DenseGrid, GridSpec, HIST_DISTANCE_CAP};

/// Builds the simulated backend for one workload: one
/// [`StackDistSweep`] per line size covering the grid's full set range,
/// fed by the chunked [`stream`] pipeline (resident traces fold in
/// place, cold ones stream without pinning).
pub fn build_simulated(workload: &WorkloadSpec, spec: &GridSpec, instructions: usize) -> Simulated {
    let chunk = stream::chunk_instructions();
    let amax = *spec.assocs.iter().max().expect("grid has assocs");
    let sinks: Vec<StackDistSweep> = spec
        .line_sizes
        .iter()
        .map(|&line_bytes| {
            StackDistSweep::new_range(
                line_bytes,
                spec.min_sets(line_bytes).trailing_zeros(),
                spec.max_sets(line_bytes).trailing_zeros(),
                amax,
                spec.warmup,
            )
            .expect("valid grid line size")
        })
        .collect();
    let folded = match tracestore::resident_workload_trace(workload, SWEEP_SEED, instructions) {
        Some(trace) => stream::fold_slice(trace.instrs(), chunk, sinks),
        None => stream::broadcast(
            workload.compile(SWEEP_SEED).take(instructions),
            chunk,
            sinks,
        ),
    };
    Simulated::from_sweeps(folded)
}

/// Builds the analytic backend for one workload from the memoised
/// reuse-distance fold: all power-of-two line sizes 8–128 B in one
/// pass, [`HIST_DISTANCE_CAP`] distance buckets, shared process-wide
/// through [`tracestore::workload_histograms`].
pub fn build_analytic(workload: &WorkloadSpec, instructions: usize, warmup: u64) -> Analytic {
    let hists = tracestore::workload_histograms(
        workload,
        SWEEP_SEED,
        instructions,
        8,
        128,
        HIST_DISTANCE_CAP,
        warmup,
    );
    Analytic::from_histograms(&hists)
}

/// One grid point answered by both backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub assoc: u32,
    /// Simulated hit ratio.
    pub sim: f64,
    /// Analytic hit ratio.
    pub analytic: f64,
}

impl GridPoint {
    /// Absolute backend divergence.
    pub fn delta(&self) -> f64 {
        (self.sim - self.analytic).abs()
    }
}

/// One workload's comparison grid, points in (cache, line, assoc)
/// order.
#[derive(Debug, Clone)]
pub struct WorkloadGrid {
    /// The workload.
    pub program: Spec92Program,
    /// Points answered by both backends.
    pub points: Vec<GridPoint>,
}

impl WorkloadGrid {
    /// Largest backend divergence across the grid.
    pub fn max_delta(&self) -> f64 {
        self.points.iter().map(GridPoint::delta).fold(0.0, f64::max)
    }

    /// Mean backend divergence across the grid.
    pub fn mean_delta(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(GridPoint::delta).sum::<f64>() / self.points.len() as f64
    }
}

/// Answers the comparison grid with both backends for every workload.
///
/// # Panics
///
/// Panics if a grid combination is outside either backend's coverage.
pub fn compare(
    programs: &[Spec92Program],
    spec: &GridSpec,
    instructions: usize,
) -> Vec<WorkloadGrid> {
    programs
        .iter()
        .map(|&program| {
            let workload = builtin_spec(program);
            let sim = build_simulated(workload, spec, instructions);
            let analytic = build_analytic(workload, instructions, spec.warmup);
            let mut points = Vec::with_capacity(spec.points());
            for &cache_bytes in &spec.cache_sizes {
                for &line_bytes in &spec.line_sizes {
                    for &assoc in &spec.assocs {
                        let s = sim
                            .hit_ratio(cache_bytes, line_bytes, assoc)
                            .expect("comparison grid covered by sweeps");
                        let a = analytic
                            .hit_ratio(cache_bytes, line_bytes, assoc)
                            .expect("comparison grid covered by histograms");
                        points.push(GridPoint {
                            cache_bytes,
                            line_bytes,
                            assoc,
                            sim: s,
                            analytic: a,
                        });
                    }
                }
            }
            WorkloadGrid { program, points }
        })
        .collect()
}

/// Renders the backend-agreement table: per-workload max and mean
/// divergence against the pinned tolerance.
pub fn render(results: &[WorkloadGrid], spec: &GridSpec) -> String {
    let mut t = Table::new(["program", "max |ΔHR|", "mean |ΔHR|", "within tolerance"]);
    for wg in results {
        t.row([
            wg.program.to_string(),
            format!("{:.4}", wg.max_delta()),
            format!("{:.4}", wg.mean_delta()),
            (wg.max_delta() <= SET_CONFLICT_TOLERANCE).to_string(),
        ]);
    }
    format!(
        "Simulated vs analytic backend over the comparison grid \
         ({} points/workload, tolerance {SET_CONFLICT_TOLERANCE}):\n{}",
        spec.points(),
        t.render()
    )
}

/// The full comparison grid as a typed `grid.csv` artifact.
pub fn artifact(results: &[WorkloadGrid]) -> Artifact {
    let mut rows = Vec::new();
    for wg in results {
        for p in &wg.points {
            rows.push(vec![
                wg.program.to_string(),
                p.cache_bytes.to_string(),
                p.line_bytes.to_string(),
                p.assoc.to_string(),
                format!("{:.6}", p.sim),
                format!("{:.6}", p.analytic),
                format!("{:.6}", p.delta()),
            ]);
        }
    }
    Artifact::csv(
        "grid.csv",
        &[
            "program",
            "cache_bytes",
            "line_bytes",
            "assoc",
            "sim_hit_ratio",
            "analytic_hit_ratio",
            "abs_delta",
        ],
        rows,
    )
}

/// Renders the dense-grid capacity-planning table: per workload, the
/// cheapest geometry reaching `target_hr`.
pub fn dense_render(
    programs: &[Spec92Program],
    grid: &DenseGrid,
    instructions: usize,
    warmup: u64,
    target_hr: f64,
) -> String {
    let mut t = Table::new(["program", "cache", "geometry", "hit ratio"]);
    for &program in programs {
        let analytic = build_analytic(builtin_spec(program), instructions, warmup);
        let row = match dense_best(&analytic, grid, target_hr) {
            Some(b) => [
                program.to_string(),
                format!("{} B", b.cache_bytes),
                format!("{} sets × {} B × {}-way", b.sets, b.line_bytes, b.assoc),
                format!("{:.4}", b.hit_ratio),
            ],
            None => [
                program.to_string(),
                "-".to_string(),
                "unreachable".to_string(),
                "-".to_string(),
            ],
        };
        t.row(row);
    }
    format!(
        "\nCheapest geometry reaching HR ≥ {target_hr} on the dense analytic grid \
         ({} points/workload, {} total — set counts 1..={}, closed form, no simulation):\n{}",
        grid.points(),
        grid.points() * programs.len(),
        grid.max_sets,
        t.render()
    )
}

/// Timing comparison between the sweep simulator and the closed-form
/// analytic backend, as recorded in `BENCH_analytic.json` by the
/// `analytic` benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticBenchResult {
    /// Trace length in instructions.
    pub instructions: usize,
    /// Workloads measured.
    pub workloads: usize,
    /// Figure-6 grid points answered by both backends (total across
    /// workloads).
    pub fig6_points: usize,
    /// Wall-clock seconds for the simulated backend to answer the
    /// Figure-6 grid (sweep folds plus point reads).
    pub sim_fig6_secs: f64,
    /// Wall-clock seconds for the analytic backend to answer the same
    /// grid from memoised histograms (closed form, no simulation).
    pub analytic_fig6_secs: f64,
    /// One-time cost of the streaming reuse-distance folds the
    /// analytic answers amortise (disclosed separately: the trace
    /// store memoises it across every grid the suite asks for).
    pub hist_pass_secs: f64,
    /// Largest |ΔHR| between the backends over the Figure-6 grid.
    pub max_delta_hr: f64,
    /// The pinned [`SET_CONFLICT_TOLERANCE`] the divergence is held to.
    pub tolerance: f64,
    /// Dense analytic-only grid points answered (total across
    /// workloads).
    pub dense_points: usize,
    /// Wall-clock seconds to answer the dense grid from warm
    /// histograms.
    pub dense_eval_secs: f64,
}

impl AnalyticBenchResult {
    /// Figure-6 points per second, simulated backend.
    pub fn sim_points_per_sec(&self) -> f64 {
        self.fig6_points as f64 / self.sim_fig6_secs
    }

    /// Figure-6 points per second, analytic backend.
    pub fn analytic_points_per_sec(&self) -> f64 {
        self.fig6_points as f64 / self.analytic_fig6_secs
    }

    /// Points-per-second ratio of the backends on the Figure-6 grid.
    pub fn fig6_speedup(&self) -> f64 {
        self.sim_fig6_secs / self.analytic_fig6_secs
    }

    /// Dense-grid points per second through the analytic backend.
    pub fn dense_points_per_sec(&self) -> f64 {
        self.dense_points as f64 / self.dense_eval_secs
    }

    /// Serialises the record as a small JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"analytic_backend\",\n  \"instructions\": {},\n  \"workloads\": {},\n  \"fig6_points\": {},\n  \"sim_fig6_secs\": {:.6},\n  \"analytic_fig6_secs\": {:.6},\n  \"fig6_speedup\": {:.1},\n  \"hist_pass_secs\": {:.6},\n  \"max_delta_hr\": {:.6},\n  \"tolerance\": {},\n  \"dense_points\": {},\n  \"dense_eval_secs\": {:.6},\n  \"dense_points_per_sec\": {:.1}\n}}\n",
            self.instructions,
            self.workloads,
            self.fig6_points,
            self.sim_fig6_secs,
            self.analytic_fig6_secs,
            self.fig6_speedup(),
            self.hist_pass_secs,
            self.max_delta_hr,
            self.tolerance,
            self.dense_points,
            self.dense_eval_secs,
            self.dense_points_per_sec(),
        )
    }

    /// Writes the JSON record to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error on failure.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "grid"
    }
    fn title(&self) -> &'static str {
        "Analytic miss-ratio grid"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured", "engine", "analytic"]
    }
    fn depends_on_traces(&self) -> &'static [&'static str] {
        &[crate::registry::traces::SWEEP7]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let instructions = ctx.instructions;
        let warmup = instructions as u64 / 5;
        let spec = GridSpec::comparison(warmup);
        let results = compare(&Spec92Program::ALL, &spec, instructions);
        let mut out = render(&results, &spec);
        // The dense sweep's cost is trace-length independent; what the
        // short (CI fault/registry) suites need to bound is the
        // comparison sweeps above, so only full-scale runs walk the
        // million-point grid.
        let dense = if instructions >= 100_000 {
            DenseGrid::standard()
        } else {
            DenseGrid::small()
        };
        out.push_str(&dense_render(
            &Spec92Program::ALL,
            &dense,
            instructions,
            warmup,
            0.9,
        ));
        ExpReport {
            section: out,
            artifacts: vec![artifact(&results)],
        }
    }
}

/// Entry point shared by the binary and the `run_all` driver.
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> GridSpec {
        GridSpec {
            cache_sizes: vec![1024, 4096],
            line_sizes: vec![16, 32],
            assocs: vec![1, 2],
            warmup: 500,
        }
    }

    #[test]
    fn comparison_grid_shape_and_coverage() {
        let spec = GridSpec::comparison(0);
        assert_eq!(spec.points(), 7 * 5 * 3);
        // Smallest geometry: 1 KB of 128 B lines 4-way = 2 sets;
        // largest: 64 KB of 8 B lines direct-mapped = 8192 sets.
        assert_eq!(spec.min_sets(128), 2);
        assert_eq!(spec.max_sets(8), 8192);
    }

    #[test]
    fn both_backends_answer_every_point_within_tolerance() {
        let spec = small_spec();
        let results = compare(&[Spec92Program::Ear], &spec, 6_000);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].points.len(), spec.points());
        for p in &results[0].points {
            assert!((0.0..=1.0).contains(&p.sim));
            assert!((0.0..=1.0).contains(&p.analytic));
        }
        assert!(
            results[0].max_delta() <= SET_CONFLICT_TOLERANCE,
            "max delta {} exceeds tolerance",
            results[0].max_delta()
        );
        assert!(results[0].mean_delta() <= results[0].max_delta());
    }

    #[test]
    fn render_and_artifact_cover_the_grid() {
        let spec = small_spec();
        let results = compare(&[Spec92Program::Ear], &spec, 4_000);
        let text = render(&results, &spec);
        assert!(text.contains("ear"));
        assert!(text.contains("tolerance"));
        let a = artifact(&results);
        assert_eq!(a.name, "grid.csv");
        match &a.kind {
            report::ArtifactKind::Csv { rows, .. } => assert_eq!(rows.len(), spec.points()),
            other => panic!("expected CSV artifact, got {other:?}"),
        }
    }

    #[test]
    fn dense_best_finds_a_minimal_geometry() {
        let analytic = build_analytic(builtin_spec(Spec92Program::Ear), 6_000, 1_000);
        let grid = DenseGrid::small();
        let best = dense_best(&analytic, &grid, 0.5).expect("ear reaches 50% somewhere");
        assert!(best.hit_ratio >= 0.5);
        assert_eq!(
            best.cache_bytes,
            best.sets * best.line_bytes * u64::from(best.assoc)
        );
        // An impossible target is reported as unreachable, not panicked.
        assert!(dense_best(&analytic, &grid, 1.1).is_none());
        let text = dense_render(&[Spec92Program::Ear], &grid, 6_000, 1_000, 0.5);
        assert!(text.contains("ear"));
        assert!(text.contains("sets ×"));
    }

    #[test]
    fn dense_grid_reaches_a_million_points() {
        let std = DenseGrid::standard();
        assert_eq!(std.points(), 166_720);
        assert!(std.points() * 6 >= 1_000_000, "six proxies cross 1M points");
    }

    #[test]
    fn analytic_bench_json_carries_the_claim_fields() {
        let r = AnalyticBenchResult {
            instructions: 5_000_000,
            workloads: 6,
            fig6_points: 210,
            sim_fig6_secs: 12.0,
            analytic_fig6_secs: 0.12,
            hist_pass_secs: 20.0,
            max_delta_hr: 0.17,
            tolerance: SET_CONFLICT_TOLERANCE,
            dense_points: 1_000_320,
            dense_eval_secs: 6.0,
        };
        assert!((r.fig6_speedup() - 100.0).abs() < 1e-9);
        assert!((r.dense_points_per_sec() - 166_720.0).abs() < 1e-6);
        assert!((r.sim_points_per_sec() - 17.5).abs() < 1e-9);
        assert!((r.analytic_points_per_sec() - 1750.0).abs() < 1e-9);
        let json = r.to_json();
        for key in [
            "\"benchmark\": \"analytic_backend\"",
            "\"fig6_speedup\": 100.0",
            "\"max_delta_hr\": 0.170000",
            "\"tolerance\": 0.2",
            "\"dense_points\": 1000320",
            "\"dense_points_per_sec\": 166720.0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
