//! EXP-X17 — reuse-distance fingerprints of the proxy workloads.
//!
//! The hit-ratio-versus-size curves every tradeoff in the paper leans on
//! are one integral away from the reuse-distance distribution (Mattson).
//! This experiment prints each proxy's distance profile, the
//! fully-associative capacity needed for 90 % / 95 % hit ratios, and the
//! Mattson-predicted hit ratio at the paper's 8 KB operating point.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{chart::sparkline, Table};
use simtrace::reuse::ReuseProfile;
use simtrace::spec92::{spec92_trace, Spec92Program};

/// Distances are bucketed logarithmically for display.
fn log_buckets(hist: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; 12];
    for (d, &count) in hist.iter().enumerate() {
        let bucket = (usize::BITS - d.max(1).leading_zeros()) as usize;
        out[bucket.min(11)] += count;
    }
    out
}

/// One proxy's fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseRow {
    /// Workload.
    pub program: Spec92Program,
    /// The profile (line granularity 32 B, distances capped at 4096).
    pub profile: ReuseProfile,
}

/// Profiles every proxy.
pub fn run(instructions: usize) -> Vec<ReuseRow> {
    Spec92Program::ALL
        .iter()
        .map(|&program| ReuseRow {
            program,
            profile: ReuseProfile::from_trace(
                spec92_trace(program, 0x2E05E).take(instructions),
                32,
                4096,
            ),
        })
        .collect()
}

/// Renders the fingerprint table.
pub fn render(rows: &[ReuseRow]) -> String {
    let mut t = Table::new([
        "program",
        "distance profile (log₂ buckets)",
        "lines for 90%",
        "lines for 95%",
        "Mattson HR @256 lines",
    ]);
    for r in rows {
        let fmt_cap = |target: f64| {
            r.profile
                .capacity_for(target)
                .map_or("—".to_string(), |k| k.to_string())
        };
        t.row([
            r.program.to_string(),
            format!("[{}]", sparkline(&log_buckets(r.profile.histogram()))),
            fmt_cap(0.90),
            fmt_cap(0.95),
            format!("{:.2}%", 100.0 * r.profile.lru_hit_ratio(256)),
        ]);
    }
    format!(
        "Reuse-distance fingerprints (32 B lines; 256 lines = the paper's 8 KB):\n{}\
         The 90%→95% capacity jump is the cache-size currency of Example 1, read\n\
         straight off the reuse distribution.\n",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "reuse"
    }
    fn title(&self) -> &'static str {
        "Reuse-distance fingerprints"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(ctx.instructions)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_references() {
        for r in run(10_000) {
            let total = r.profile.cold() + r.profile.histogram().iter().sum::<u64>();
            assert_eq!(total, r.profile.total(), "{}", r.program);
        }
    }

    #[test]
    fn reuse_heavy_ear_needs_fewer_lines_than_streaming_swm() {
        let rows = run(20_000);
        let cap = |p: Spec92Program| {
            rows.iter()
                .find(|r| r.program == p)
                .unwrap()
                .profile
                .capacity_for(0.90)
                .unwrap_or(usize::MAX)
        };
        assert!(cap(Spec92Program::Ear) < cap(Spec92Program::Swm256));
    }

    #[test]
    fn mattson_at_256_lines_tracks_measured_8k_hit_ratios() {
        // The FA Mattson number tracks the 2-way measured hit ratio at
        // the same capacity. It is NOT a strict upper bound across
        // mappings: on cyclic sweeps (ear) full associativity lets LRU
        // thrash the whole loop while set partitioning protects part of
        // it, so the 2-way cache can legitimately edge past the FA
        // number by a little.
        use simcache::{Cache, CacheConfig};
        for r in run(15_000) {
            let mut cache = Cache::new(CacheConfig::new(8 * 1024, 32, 2).unwrap());
            for i in spec92_trace(r.program, 0x2E05E).take(15_000) {
                if let Some(m) = i.mem {
                    cache.access(m.op, m.addr);
                }
            }
            let measured = cache.stats().hit_ratio();
            let mattson = r.profile.lru_hit_ratio(256);
            assert!(
                (measured - mattson).abs() < 0.12,
                "{}: Mattson {mattson} far from measured {measured}",
                r.program
            );
        }
    }

    #[test]
    fn render_shows_capacities() {
        let text = render(&run(8_000));
        assert!(text.contains("lines for 95%"));
    }
}
