//! Experiment harness: one module per table/figure of the paper.
//!
//! Every module exposes a `run(...)`-style function returning structured
//! data plus a `render(...)` producing the terminal report, and
//! registers itself in [`registry`] as an [`registry::Experiment`]
//! returning a typed [`registry::ExpReport`] (section text plus
//! artifacts). The generic `exp` binary and the `tradeoff experiments`
//! CLI subcommand run any selection of the registry through the
//! [`sched`] cross-experiment scheduler, which writes every artifact
//! and a content-hashed `results/manifest.json`. See `DESIGN.md` §4 for
//! the experiment index, §10 for the registry architecture, and
//! `EXPERIMENTS.md` for paper-vs-measured numbers.

//!
//! The pipeline is fault-isolated: experiments run under panic
//! containment with optional watchdog deadlines and bounded retries
//! ([`sched`]), every failure path is exercisable deterministically via
//! [`fault`] injection (`REPRO_FAULTS`), and degraded suites record
//! per-experiment statuses in the manifest. See `DESIGN.md` §11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use error::Error;

pub mod alpha;
pub mod assoc;
pub mod assumptions;
pub mod common;
pub mod context;
pub mod cost;
pub mod error;
pub mod example1;
pub mod exec;
pub mod fault;
pub mod fig1;
pub mod fig2;
pub mod fig6;
pub mod grid;
pub mod l2;
pub mod linesize;
pub mod mi;
pub mod missdist;
pub mod nb;
pub mod phases;
pub mod prefetch;
pub mod queryenv;
pub mod registry;
pub mod reuse;
pub mod sched;
pub mod sector;
pub mod stream;
pub mod sweep;
pub mod table23;
pub mod tracestore;
pub mod unified;
pub mod validate;
pub mod victim;
pub mod writemiss;
pub mod xover;
