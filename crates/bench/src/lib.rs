//! Experiment harness: one module per table/figure of the paper.
//!
//! Every module exposes a `run(...)`-style function returning structured
//! data plus a `render(...)` producing the terminal report; the
//! `exp_*` binaries in `src/bin/` are thin wrappers that also drop a CSV
//! per figure under `results/`. See `DESIGN.md` §4 for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod assoc;
pub mod assumptions;
pub mod common;
pub mod context;
pub mod cost;
pub mod example1;
pub mod exec;
pub mod fig1;
pub mod fig2;
pub mod fig6;
pub mod l2;
pub mod linesize;
pub mod mi;
pub mod missdist;
pub mod nb;
pub mod phases;
pub mod prefetch;
pub mod reuse;
pub mod sector;
pub mod sweep;
pub mod table23;
pub mod tracestore;
pub mod unified;
pub mod validate;
pub mod victim;
pub mod writemiss;
pub mod xover;
