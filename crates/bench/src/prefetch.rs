//! EXP-X4 — pricing next-line prefetching in the paper's currency.
//!
//! The paper's related work (Chen & Baer; Tullsen & Eggers) debates
//! whether prefetching caches beat non-blocking ones; the unified
//! methodology can settle such questions by converting *any* feature —
//! including ones the paper did not price — into an equivalent hit-ratio
//! gain. Since `dX/dHR = −refs·(G − 1)`, the cycles a feature saves
//! convert to
//!
//! ```text
//! ΔHR_equiv = (X_without − X_with) / (refs · (G − 1))
//! ```
//!
//! which lines up directly against the Figure 3–5 curves.

use crate::common::figure1_cache;
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcpu::{Cpu, CpuConfig, Prefetch, SimResult};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use tradeoff::equiv::traded_hit_ratio;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// The measured worth of prefetching on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchWorth {
    /// Workload.
    pub program: Spec92Program,
    /// Cycles without prefetching.
    pub cycles_plain: u64,
    /// Cycles with next-line prefetching.
    pub cycles_prefetch: u64,
    /// The equivalent hit-ratio gain (may be negative when prefetching
    /// hurts).
    pub hit_ratio_worth: f64,
    /// Memory-traffic inflation: (demand + prefetch fills) / demand fills
    /// of the plain run.
    pub traffic_factor: f64,
}

fn simulate(program: Spec92Program, prefetch: Prefetch, beta: u64, n: usize) -> SimResult {
    let cfg = CpuConfig::baseline(
        figure1_cache(32),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
    )
    .with_prefetch(prefetch);
    Cpu::new(cfg).run(spec92_trace(program, 0xFE7C).take(n))
}

/// Measures the worth of next-line prefetching per program.
///
/// # Errors
///
/// Propagates model-validation errors (degenerate measured α).
pub fn run(beta: u64, instructions: usize) -> Result<Vec<PrefetchWorth>, TradeoffError> {
    let mut out = Vec::new();
    for program in Spec92Program::ALL {
        let plain = simulate(program, Prefetch::None, beta, instructions);
        let pf = simulate(program, Prefetch::NextLine, beta, instructions);
        let machine = Machine::new(4.0, 32.0, beta as f64)?;
        let base = SystemConfig::full_stalling(plain.alpha().clamp(0.0, 1.0));
        let g = base.delay_per_missed_line(&machine)?;
        let refs = plain.dcache.accesses() as f64;
        let hit_ratio_worth = (plain.cycles as f64 - pf.cycles as f64) / (refs * (g - 1.0));
        let traffic_factor =
            (pf.dcache.fills + pf.dcache.prefetch_fills) as f64 / plain.dcache.fills.max(1) as f64;
        out.push(PrefetchWorth {
            program,
            cycles_plain: plain.cycles,
            cycles_prefetch: pf.cycles,
            hit_ratio_worth,
            traffic_factor,
        });
    }
    Ok(out)
}

/// Renders the comparison against the paper's priced features.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn report(beta: u64, instructions: usize) -> Result<String, TradeoffError> {
    let rows = run(beta, instructions)?;
    let machine = Machine::new(4.0, 32.0, beta as f64)?;
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.90)?;
    let bus = traded_hit_ratio(&machine, &base, &base.with_bus_factor(2.0), hr)?;
    let wb = traded_hit_ratio(&machine, &base, &base.with_write_buffers(), hr)?;

    let mut t = Table::new([
        "program",
        "cycles (no pf)",
        "cycles (pf)",
        "worth (ΔHR)",
        "traffic ×",
    ]);
    for r in &rows {
        t.row([
            r.program.to_string(),
            r.cycles_plain.to_string(),
            r.cycles_prefetch.to_string(),
            format!("{:+.2}%", 100.0 * r.hit_ratio_worth),
            format!("{:.2}", r.traffic_factor),
        ]);
    }
    Ok(format!(
        "Next-line prefetch priced in hit ratio (8K 2-way, L=32, D=4, β={beta}).\n\
         For scale at HR=90%: doubling bus is worth {:+.2}%, write buffers {:+.2}%.\n{}",
        100.0 * bus,
        100.0 * wb,
        t.render()
    ))
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "prefetch"
    }
    fn title(&self) -> &'static str {
        "Prefetch pricing"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(report(8, ctx.instructions).expect("canonical parameters valid"))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_helps_streaming_programs() {
        let rows = run(8, 40_000).unwrap();
        let by = |p: Spec92Program| rows.iter().find(|r| r.program == p).unwrap();
        // swm256/hydro2d are stride-dominated: prefetching must pay.
        assert!(
            by(Spec92Program::Swm256).hit_ratio_worth > 0.0,
            "{:?}",
            by(Spec92Program::Swm256)
        );
        assert!(by(Spec92Program::Hydro2d).hit_ratio_worth > 0.0);
    }

    #[test]
    fn prefetch_inflates_traffic() {
        for r in run(8, 30_000).unwrap() {
            assert!(r.traffic_factor > 1.0, "{:?}", r);
            assert!(r.traffic_factor < 3.0, "{:?}", r);
        }
    }

    #[test]
    fn report_renders_scale_anchors() {
        let text = report(8, 20_000).unwrap();
        assert!(text.contains("doubling bus"));
        assert!(text.contains("traffic ×"));
    }
}
