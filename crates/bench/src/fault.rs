//! Deterministic fault injection for the experiment pipeline.
//!
//! Every failure path the scheduler claims to survive — a panicking
//! experiment, a transient I/O error, a hung extraction, a poisoned
//! store lock — must itself be exercisable in CI, repeatably. This
//! module provides that: named injection *sites* threaded through the
//! pipeline call [`check`] (or [`check_or_unwind`]) with a thread-local
//! notion of the *current experiment*, and an armed [`FaultPlan`]
//! decides, deterministically, whether that call raises a panic,
//! returns an injected I/O error, or stalls.
//!
//! Plans are armed either programmatically ([`arm`], used by the test
//! suite) or from the `REPRO_FAULTS` environment variable (used by
//! `ci.sh faults`). Because specs are keyed by experiment id and carry
//! their own shot counters, which *attempts* fail is independent of
//! worker scheduling — a faulted suite degrades to the same document
//! and manifest serially and under `--jobs N`.
//!
//! Plan grammar (comma-separated specs):
//!
//! ```text
//! REPRO_FAULTS = spec[,spec]*
//! spec         = <site>:<exp>:<kind>[:<times>]
//! site         = extract | run | write | lock | accept | read | dispatch
//! kind         = panic | io | delay<millis>
//! ```
//!
//! e.g. `run:fig2:panic,run:nb:io:2,run:victim:delay60000`. `<exp>` is
//! an experiment id (or `*` for any); `<times>` bounds how often the
//! spec fires (default 1), after which it is inert — so `io:2` makes
//! the first two attempts fail and lets the bounded-retry policy
//! succeed on the third.
//!
//! The `accept`, `read` and `dispatch` sites thread the same harness
//! through `tradeoff-server`'s request path (scoped under the pseudo
//! experiment id `serve`): `accept:serve:io` forces the acceptor to
//! shed connections with `503`, `read:serve:delay…` simulates a slow
//! peer eating the request deadline, `dispatch:serve:panic` poisons a
//! handler to exercise per-request panic containment, and
//! `dispatch:serve:delay…` hangs one so the watchdog answers `504`.
//! `./ci.sh chaos` floods a server under such a plan.

use crate::error::lock_recovering;
use std::cell::RefCell;
use std::io;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Environment variable holding the fault plan.
pub const ENV_PLAN: &str = "REPRO_FAULTS";

/// A named injection point in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Trace / timeline extraction ([`crate::tracestore`]).
    Extract,
    /// The experiment `run` call itself ([`crate::sched`]).
    Run,
    /// Artifact and manifest writes ([`crate::sched::drive`]).
    Write,
    /// While *holding* a trace-store lock — a panic here poisons the
    /// mutex, exercising poison recovery.
    Lock,
    /// The server's accept loop (`tradeoff-server`): an `io` fault here
    /// forces the next connection to be shed with a `503`.
    Accept,
    /// Reading a request off a connection: `delay` simulates a slow
    /// peer (eats the request deadline), `io` a mid-body disconnect.
    Read,
    /// Request dispatch on a server worker: `panic` exercises
    /// per-request containment, `delay` the `504` watchdog.
    Dispatch,
}

impl Site {
    /// The grammar keyword of this site.
    pub fn name(self) -> &'static str {
        match self {
            Site::Extract => "extract",
            Site::Run => "run",
            Site::Write => "write",
            Site::Lock => "lock",
            Site::Accept => "accept",
            Site::Read => "read",
            Site::Dispatch => "dispatch",
        }
    }

    fn parse(text: &str) -> Option<Site> {
        Some(match text {
            "extract" => Site::Extract,
            "run" => Site::Run,
            "write" => Site::Write,
            "lock" => Site::Lock,
            "accept" => Site::Accept,
            "read" => Site::Read,
            "dispatch" => Site::Dispatch,
            _ => return None,
        })
    }
}

/// What an armed spec does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Raise a plain panic (a *fatal* failure: never retried).
    Panic,
    /// Raise an injected I/O error (a *transient* failure: retried
    /// under the scheduler's bounded-backoff policy).
    Io,
    /// Sleep for the given duration (combined with `REPRO_EXP_TIMEOUT`
    /// this exercises the watchdog).
    Delay(Duration),
}

/// One armed fault: fires `times` times at (site, experiment).
#[derive(Debug)]
pub struct FaultSpec {
    /// Where it fires.
    pub site: Site,
    /// Which experiment id it targets (`*` for any).
    pub exp: String,
    /// What happens.
    pub kind: FaultKind,
    remaining: AtomicU32,
}

impl FaultSpec {
    /// A spec firing `times` times.
    pub fn new(site: Site, exp: &str, kind: FaultKind, times: u32) -> FaultSpec {
        FaultSpec {
            site,
            exp: exp.to_string(),
            kind,
            remaining: AtomicU32::new(times),
        }
    }

    fn matches(&self, site: Site, exp: &str) -> bool {
        self.site == site && (self.exp == "*" || self.exp == exp)
    }

    /// Atomically claims one shot; false once exhausted.
    fn claim(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// A deterministic set of armed faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a spec (builder style).
    #[must_use]
    pub fn with(mut self, site: Site, exp: &str, kind: FaultKind, times: u32) -> FaultPlan {
        self.specs.push(FaultSpec::new(site, exp, kind, times));
        self
    }

    /// Parses the `REPRO_FAULTS` grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed spec.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for spec in text.split(',').filter(|s| !s.trim().is_empty()) {
            let parts: Vec<&str> = spec.trim().split(':').collect();
            let (site, exp, kind) = match parts.as_slice() {
                [site, exp, kind] | [site, exp, kind, _] => (site, exp, kind),
                _ => {
                    return Err(format!(
                        "bad fault spec {spec:?}: want site:exp:kind[:times]"
                    ))
                }
            };
            let site = Site::parse(site).ok_or(format!("bad fault site {site:?} in {spec:?}"))?;
            let kind = if let Some(ms) = kind.strip_prefix("delay") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad delay millis in {spec:?}"))?;
                FaultKind::Delay(Duration::from_millis(ms))
            } else {
                match *kind {
                    "panic" => FaultKind::Panic,
                    "io" => FaultKind::Io,
                    other => return Err(format!("bad fault kind {other:?} in {spec:?}")),
                }
            };
            let times = match parts.get(3) {
                Some(n) => n
                    .parse()
                    .map_err(|_| format!("bad fire count in {spec:?}"))?,
                None => 1,
            };
            plan.specs.push(FaultSpec::new(site, exp, kind, times));
        }
        Ok(plan)
    }

    /// True when the plan has no specs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    fn fire(&self, site: Site, exp: &str) -> io::Result<()> {
        for spec in &self.specs {
            if !spec.matches(site, exp) || !spec.claim() {
                continue;
            }
            match spec.kind {
                FaultKind::Panic => {
                    panic!("injected panic at site {} in experiment {exp}", site.name())
                }
                FaultKind::Io => {
                    return Err(io::Error::other(format!(
                        "injected i/o fault at site {} in experiment {exp}",
                        site.name()
                    )))
                }
                FaultKind::Delay(d) => std::thread::sleep(d),
            }
        }
        Ok(())
    }
}

/// Panic payload used to unwind an injected (or real) I/O error out of
/// an infallible call chain; the scheduler downcasts it back into a
/// *transient* failure eligible for retry, unlike a plain panic.
#[derive(Debug)]
pub struct TransientUnwind(pub String);

thread_local! {
    static CURRENT_EXP: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Scope guard restoring the previous current-experiment on drop.
#[derive(Debug)]
pub struct ExpScope {
    prev: Option<Arc<str>>,
}

impl Drop for ExpScope {
    fn drop(&mut self) {
        CURRENT_EXP.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Marks this thread as running experiment `id` until the guard drops.
pub fn enter(id: &str) -> ExpScope {
    enter_shared(Some(Arc::from(id)))
}

/// [`enter`] with an already-shared id (or `None` to clear) — how
/// [`crate::exec`] workers inherit their spawner's experiment.
pub fn enter_shared(id: Option<Arc<str>>) -> ExpScope {
    ExpScope {
        prev: CURRENT_EXP.with(|c| c.replace(id)),
    }
}

/// The experiment this thread is currently running for, if any.
pub fn current() -> Option<Arc<str>> {
    CURRENT_EXP.with(|c| c.borrow().clone())
}

fn armed() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static ARMED: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    ARMED.get_or_init(Mutex::default)
}

/// Fast path for the unfaulted case: checked before touching the
/// arming mutex, so hot extraction paths stay lock-free when no plan
/// was ever armed via the API.
static API_ARMED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn env_plan() -> Option<Arc<FaultPlan>> {
    static ENV: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    ENV.get_or_init(|| {
        let text = std::env::var(ENV_PLAN).ok()?;
        match FaultPlan::parse(&text) {
            Ok(plan) if plan.is_empty() => None,
            Ok(plan) => Some(Arc::new(plan)),
            // A typo'd plan must not silently run the suite unfaulted.
            Err(e) => panic!("{ENV_PLAN}: {e}"),
        }
    })
    .clone()
}

fn active() -> Option<Arc<FaultPlan>> {
    if API_ARMED.load(Ordering::Acquire) {
        let (guard, _) = lock_recovering(armed());
        if let Some(plan) = guard.clone() {
            return Some(plan);
        }
    }
    env_plan()
}

/// True when any plan (API- or env-armed) is active. The scheduler uses
/// this to keep the no-fault path allocation-free.
pub fn any_armed() -> bool {
    active().is_some()
}

/// Evaluates site `site` for the current experiment: returns the
/// injected I/O error, panics, or delays per the armed plan; a no-op
/// when nothing is armed or no spec matches.
///
/// # Errors
///
/// The injected I/O error of a matching `io` spec.
pub fn check(site: Site) -> io::Result<()> {
    let Some(plan) = active() else { return Ok(()) };
    let Some(exp) = current() else { return Ok(()) };
    plan.fire(site, &exp)
}

/// [`check`] for infallible call chains (trace extraction, lock
/// acquisition): an injected I/O error unwinds as [`TransientUnwind`],
/// which the scheduler catches and treats as retryable.
pub fn check_or_unwind(site: Site) {
    if let Err(e) = check(site) {
        std::panic::panic_any(TransientUnwind(e.to_string()));
    }
}

/// An armed plan; dropping it disarms. Holding it also serialises
/// fault-using tests (the arming gate is process-wide).
#[derive(Debug)]
pub struct Armed {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for Armed {
    fn drop(&mut self) {
        let (mut guard, _) = lock_recovering(armed());
        *guard = None;
        API_ARMED.store(false, Ordering::Release);
    }
}

/// Arms `plan` process-wide until the returned guard drops. Intended
/// for tests: the guard serialises concurrent armers so two tests
/// cannot see each other's faults.
pub fn arm(plan: FaultPlan) -> Armed {
    static GATE: Mutex<()> = Mutex::new(());
    let (gate, _) = lock_recovering(&GATE);
    let (mut guard, _) = lock_recovering(armed());
    *guard = Some(Arc::new(plan));
    drop(guard);
    API_ARMED.store(true, Ordering::Release);
    Armed { _gate: gate }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan =
            FaultPlan::parse("run:fig2:panic, run:nb:io:2 ,extract:sweep:delay250,lock:*:io")
                .unwrap();
        assert_eq!(plan.specs.len(), 4);
        let serve = FaultPlan::parse("accept:serve:io:2,read:serve:delay1500,dispatch:serve:panic")
            .unwrap();
        assert_eq!(serve.specs[0].site, Site::Accept);
        assert_eq!(serve.specs[1].site, Site::Read);
        assert_eq!(serve.specs[2].site, Site::Dispatch);
        assert_eq!(plan.specs[0].site, Site::Run);
        assert_eq!(plan.specs[0].kind, FaultKind::Panic);
        assert_eq!(plan.specs[1].remaining.load(Ordering::SeqCst), 2);
        assert_eq!(
            plan.specs[2].kind,
            FaultKind::Delay(Duration::from_millis(250))
        );
        assert_eq!(plan.specs[3].exp, "*");
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "run:fig2",
            "orbit:fig2:panic",
            "run:fig2:explode",
            "run:fig2:delayxx",
            "run:fig2:io:many",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn specs_fire_exactly_times_then_go_inert() {
        let plan = FaultPlan::new().with(Site::Run, "nb", FaultKind::Io, 2);
        assert!(plan.fire(Site::Run, "nb").is_err());
        assert!(plan.fire(Site::Run, "nb").is_err());
        assert!(
            plan.fire(Site::Run, "nb").is_ok(),
            "exhausted spec is inert"
        );
        assert!(plan.fire(Site::Run, "fig1").is_ok(), "other ids unaffected");
        assert!(
            plan.fire(Site::Write, "nb").is_ok(),
            "other sites unaffected"
        );
    }

    #[test]
    fn check_uses_the_thread_local_experiment() {
        let _armed = arm(FaultPlan::new().with(Site::Run, "fig9", FaultKind::Io, 1));
        assert!(check(Site::Run).is_ok(), "no current experiment, no fire");
        {
            let _scope = enter("fig9");
            let err = check(Site::Run).unwrap_err();
            assert!(err.to_string().contains("injected i/o fault"));
            assert!(check(Site::Run).is_ok(), "single shot spent");
        }
        assert!(current().is_none(), "scope restored on drop");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = enter("outer");
        {
            let _inner = enter("inner");
            assert_eq!(current().as_deref(), Some("inner"));
        }
        assert_eq!(current().as_deref(), Some("outer"));
        drop(outer);
        assert!(current().is_none());
    }

    #[test]
    fn check_or_unwind_raises_a_transient_payload() {
        let _armed = arm(FaultPlan::new().with(Site::Extract, "x", FaultKind::Io, 1));
        let _scope = enter("x");
        let payload = std::panic::catch_unwind(|| check_or_unwind(Site::Extract)).unwrap_err();
        let transient = payload
            .downcast_ref::<TransientUnwind>()
            .expect("typed payload");
        assert!(transient.0.contains("injected i/o fault"));
    }
}
