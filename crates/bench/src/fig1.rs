//! EXP-F1 — Figure 1: stalling factors of BL/BNL1/BNL2/BNL3 versus
//! memory cycle time, averaged over the six SPEC92 proxies.
//!
//! Paper setting: 8 KB two-way write-allocate data cache, L = 32 B,
//! D = 4 B, stalling factor reported as a percentage of `L/D`.

use crate::common::{average_phi, instructions_per_run};
use report::{write_csv, Chart};
use simcpu::StallFeature;

/// The β_m sweep of the figure.
pub const BETAS: [u64; 7] = [4, 8, 15, 22, 30, 40, 50];

/// One measured curve.
#[derive(Debug, Clone)]
pub struct PhiCurve {
    /// The stalling feature measured.
    pub feature: StallFeature,
    /// `(β_m, φ as % of L/D)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs the sweep for the four measured features.
pub fn run(line_bytes: u64, bus_bytes: u64, instructions: usize) -> Vec<PhiCurve> {
    let chunks = (line_bytes / bus_bytes) as f64;
    StallFeature::MEASURED
        .iter()
        .map(|&feature| {
            let points = BETAS
                .iter()
                .map(|&beta| {
                    let phi = average_phi(feature, line_bytes, bus_bytes, beta, instructions);
                    (beta as f64, 100.0 * phi / chunks)
                })
                .collect();
            PhiCurve { feature, points }
        })
        .collect()
}

/// Renders the figure and writes `fig1.csv` under `results_dir`.
pub fn render(curves: &[PhiCurve], results_dir: &std::path::Path) -> String {
    let mut chart = Chart::new(
        "Figure 1 — stalling factor (% of L/D) vs memory cycle time",
        "beta_m (cycles per 4 bytes)",
        "phi %",
        60,
        16,
    );
    let mut rows = Vec::new();
    for c in curves {
        chart.series(c.feature.to_string(), c.points.clone());
        for &(beta, pct) in &c.points {
            rows.push(vec![c.feature.to_string(), format!("{beta}"), format!("{pct:.2}")]);
        }
    }
    let csv_path = results_dir.join("fig1.csv");
    if let Err(e) = write_csv(&csv_path, &["feature", "beta_m", "phi_pct_of_LD"], &rows) {
        eprintln!("warning: could not write {}: {e}", csv_path.display());
    }
    chart.render()
}

/// Entry point shared by the binary and the `run_all` driver.
pub fn main_report() -> String {
    let curves = run(32, 4, instructions_per_run());
    render(&curves, &crate::common::results_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_reproduce_figure1_shape() {
        let curves = run(32, 4, 20_000);
        let by_name = |n: &str| {
            curves
                .iter()
                .find(|c| c.feature.to_string() == n)
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        let bl = by_name("BL");
        let bnl1 = by_name("BNL1");
        let bnl3 = by_name("BNL3");

        // Ordering at every β: BL ≥ BNL1 ≥ BNL3.
        for i in 0..BETAS.len() {
            assert!(bl.points[i].1 + 1e-9 >= bnl1.points[i].1, "β index {i}");
            assert!(bnl1.points[i].1 + 1e-9 >= bnl3.points[i].1, "β index {i}");
        }
        // Rising trend with β_m (compare first and last point).
        assert!(bl.points.last().unwrap().1 > bl.points[0].1);
        // The paper's headline: BNL3 gives ~20–30 % reduction at small
        // β_m, i.e. its φ stays well below 100 % of L/D at β_m ≤ 15.
        assert!(bnl3.points[1].1 < 90.0, "BNL3 at β=8: {}", bnl3.points[1].1);
        // All percentages in [12.5, 100] (φ ∈ [1, L/D]).
        for c in &curves {
            for &(_, pct) in &c.points {
                assert!((12.5 - 1e-6..=100.0 + 1e-6).contains(&pct), "{}: {pct}", c.feature);
            }
        }
    }

    #[test]
    fn render_contains_legend_and_writes_csv() {
        let tmp = std::env::temp_dir().join("fig1_test_results");
        let curves = run(32, 4, 5_000);
        let text = render(&curves, &tmp);
        assert!(text.contains("BNL2"));
        assert!(tmp.join("fig1.csv").exists());
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
