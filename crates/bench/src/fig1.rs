//! EXP-F1 — Figure 1: stalling factors of BL/BNL1/BNL2/BNL3 versus
//! memory cycle time, averaged over the six SPEC92 proxies.
//!
//! Paper setting: 8 KB two-way write-allocate data cache, L = 32 B,
//! D = 4 B, stalling factor reported as a percentage of `L/D`.

use crate::common::{phi_matrix, PhiPoint};
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{Artifact, Chart};
use simcpu::StallFeature;

/// The β_m sweep of the figure.
pub const BETAS: [u64; 7] = [4, 8, 15, 22, 30, 40, 50];

/// One measured curve.
#[derive(Debug, Clone)]
pub struct PhiCurve {
    /// The stalling feature measured.
    pub feature: StallFeature,
    /// `(β_m, φ as % of L/D)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs the sweep for the four measured features.
///
/// All `features × β_m` points are batched through one
/// [`phi_matrix`] call: the per-program trace and cache work is shared
/// by every curve (the timelines are extracted once) and the per-point
/// replays fan out over the worker pool together.
pub fn run(line_bytes: u64, bus_bytes: u64, instructions: usize) -> Vec<PhiCurve> {
    let chunks = (line_bytes / bus_bytes) as f64;
    let points: Vec<PhiPoint> = StallFeature::MEASURED
        .iter()
        .flat_map(|&feature| BETAS.iter().map(move |&beta| (feature, beta)))
        .collect();
    let phis = phi_matrix(&points, line_bytes, bus_bytes, instructions);
    StallFeature::MEASURED
        .iter()
        .enumerate()
        .map(|(f, &feature)| {
            let points = BETAS
                .iter()
                .enumerate()
                .map(|(b, &beta)| {
                    let phi = phis[f * BETAS.len() + b];
                    (beta as f64, 100.0 * phi / chunks)
                })
                .collect();
            PhiCurve { feature, points }
        })
        .collect()
}

/// Renders the figure's chart.
pub fn render(curves: &[PhiCurve]) -> String {
    let mut chart = Chart::new(
        "Figure 1 — stalling factor (% of L/D) vs memory cycle time",
        "beta_m (cycles per 4 bytes)",
        "phi %",
        60,
        16,
    );
    for c in curves {
        chart.series(c.feature.to_string(), c.points.clone());
    }
    chart.render()
}

/// The figure's series as a typed `fig1.csv` artifact.
pub fn artifact(curves: &[PhiCurve]) -> Artifact {
    let mut rows = Vec::new();
    for c in curves {
        for &(beta, pct) in &c.points {
            rows.push(vec![
                c.feature.to_string(),
                format!("{beta}"),
                format!("{pct:.2}"),
            ]);
        }
    }
    Artifact::csv("fig1.csv", &["feature", "beta_m", "phi_pct_of_LD"], rows)
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "fig1"
    }
    fn title(&self) -> &'static str {
        "Figure 1"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "figure", "measured"]
    }
    fn depends_on_traces(&self) -> &'static [&'static str] {
        &[crate::registry::traces::SPEC_L32]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let curves = run(32, 4, ctx.instructions);
        ExpReport {
            section: render(&curves),
            artifacts: vec![artifact(&curves)],
        }
    }
}

/// Entry point shared by the binary and the suite driver.
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

/// Wall-clock record of the Figure-1 sweep through the miss-event
/// timeline engine versus per-point full simulation, written to
/// `BENCH_phi.json` by `cargo bench -p bench --bench phi`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiBenchResult {
    /// (feature × β_m × program) points measured.
    pub points: usize,
    /// Trace length in instructions.
    pub instructions: usize,
    /// Wall-clock seconds for per-point full simulation.
    pub full_secs: f64,
    /// Wall-clock seconds for extract-once + replay-per-point.
    pub timeline_secs: f64,
}

impl PhiBenchResult {
    /// Full-simulation time over timeline time.
    pub fn speedup(&self) -> f64 {
        self.full_secs / self.timeline_secs
    }

    /// Timing points per second through the timeline engine.
    pub fn points_per_sec(&self) -> f64 {
        self.points as f64 / self.timeline_secs
    }

    /// Serialises the record as a small JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"figure1_phi\",\n  \"points\": {},\n  \"instructions\": {},\n  \"full_secs\": {:.6},\n  \"timeline_secs\": {:.6},\n  \"speedup\": {:.2},\n  \"points_per_sec\": {:.1}\n}}\n",
            self.points,
            self.instructions,
            self.full_secs,
            self.timeline_secs,
            self.speedup(),
            self.points_per_sec(),
        )
    }

    /// Writes the JSON record to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error on failure.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_reproduce_figure1_shape() {
        let curves = run(32, 4, 20_000);
        let by_name = |n: &str| {
            curves
                .iter()
                .find(|c| c.feature.to_string() == n)
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        let bl = by_name("BL");
        let bnl1 = by_name("BNL1");
        let bnl3 = by_name("BNL3");

        // Ordering at every β: BL ≥ BNL1 ≥ BNL3.
        for i in 0..BETAS.len() {
            assert!(bl.points[i].1 + 1e-9 >= bnl1.points[i].1, "β index {i}");
            assert!(bnl1.points[i].1 + 1e-9 >= bnl3.points[i].1, "β index {i}");
        }
        // Rising trend with β_m (compare first and last point).
        assert!(bl.points.last().unwrap().1 > bl.points[0].1);
        // The paper's headline: BNL3 gives ~20–30 % reduction at small
        // β_m, i.e. its φ stays well below 100 % of L/D at β_m ≤ 15.
        assert!(bnl3.points[1].1 < 90.0, "BNL3 at β=8: {}", bnl3.points[1].1);
        // All percentages in [12.5, 100] (φ ∈ [1, L/D]).
        for c in &curves {
            for &(_, pct) in &c.points {
                assert!(
                    (12.5 - 1e-6..=100.0 + 1e-6).contains(&pct),
                    "{}: {pct}",
                    c.feature
                );
            }
        }
    }

    #[test]
    fn render_contains_legend_and_artifact_carries_rows() {
        let curves = run(32, 4, 5_000);
        let text = render(&curves);
        assert!(text.contains("BNL2"));
        let a = artifact(&curves);
        assert_eq!(a.name, "fig1.csv");
        match &a.kind {
            report::ArtifactKind::Csv { header, rows } => {
                assert_eq!(header, &["feature", "beta_m", "phi_pct_of_LD"]);
                assert_eq!(rows.len(), 4 * BETAS.len());
            }
            other => panic!("expected CSV artifact, got {other:?}"),
        }
    }

    #[test]
    fn registry_run_matches_legacy_composition() {
        use crate::registry::Experiment as _;
        let ctx = RunCtx::with_instructions(5_000);
        let report = Exp.run(&ctx);
        let curves = run(32, 4, 5_000);
        assert_eq!(report.section, render(&curves));
        assert_eq!(report.artifacts, vec![artifact(&curves)]);
    }
}
