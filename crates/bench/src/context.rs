//! EXP-X14 — multiprogramming: Section 3.4's caveat, measured.
//!
//! The paper assumes a near-perfect instruction cache "without process
//! switching" and warns that multiprogramming raises the miss portion.
//! This experiment quantifies the data-cache side of that caveat: the
//! caches are invalidated every `switch_interval` instructions (a
//! process switch with no address-space tags), the hit ratio degrades,
//! and the degradation converts — through the equivalence law — into the
//! extra bus width / cache size a multiprogrammed workload effectively
//! needs.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcache::{Cache, CacheConfig};
use simtrace::spec92::{spec92_trace, Spec92Program};
use tradeoff::equiv::hit_gain_equivalent;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// Hit ratio with caches flushed every `switch_interval` instructions
/// (`None` = no switching).
pub fn hit_ratio_with_switches(
    program: Spec92Program,
    switch_interval: Option<u64>,
    instructions: usize,
) -> f64 {
    let mut cache = Cache::new(CacheConfig::new(8 * 1024, 32, 2).expect("valid cache"));
    let mut since_switch = 0u64;
    for instr in spec92_trace(program, 0xC0DE).take(instructions) {
        since_switch += 1;
        if let Some(interval) = switch_interval {
            if since_switch >= interval {
                since_switch = 0;
                cache.invalidate_all();
            }
        }
        if let Some(m) = instr.mem {
            cache.access(m.op, m.addr);
        }
    }
    cache.stats().hit_ratio()
}

/// One row of the study.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchRow {
    /// Workload.
    pub program: Spec92Program,
    /// Hit ratio without switching.
    pub base_hr: f64,
    /// Hit ratios at each switch interval.
    pub switched_hr: Vec<(u64, f64)>,
}

/// The switch-interval grid (instructions between process switches).
pub const INTERVALS: [u64; 3] = [100_000, 20_000, 5_000];

/// Runs the study over all proxies.
pub fn run(instructions: usize) -> Vec<SwitchRow> {
    Spec92Program::ALL
        .iter()
        .map(|&program| SwitchRow {
            program,
            base_hr: hit_ratio_with_switches(program, None, instructions),
            switched_hr: INTERVALS
                .iter()
                .map(|&i| (i, hit_ratio_with_switches(program, Some(i), instructions)))
                .collect(),
        })
        .collect()
}

/// Renders the table plus the equivalence-law reading of the worst case.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn report(instructions: usize) -> Result<String, TradeoffError> {
    let rows = run(instructions);
    let mut t = Table::new([
        "program",
        "no switches",
        "every 100K",
        "every 20K",
        "every 5K",
        "ΔHR lost @5K",
    ]);
    let mut worst_loss: f64 = 0.0;
    for r in &rows {
        let lost = r.base_hr - r.switched_hr.last().expect("intervals non-empty").1;
        worst_loss = worst_loss.max(lost);
        let mut row = vec![r.program.to_string(), format!("{:.2}%", 100.0 * r.base_hr)];
        row.extend(
            r.switched_hr
                .iter()
                .map(|(_, h)| format!("{:.2}%", 100.0 * h)),
        );
        row.push(format!("{:.2}%", 100.0 * lost));
        t.row(row);
    }
    // The equivalence reading: how does the worst-case loss compare with
    // what doubling the bus can give back?
    let machine = Machine::new(4.0, 32.0, 8.0)?;
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.90)?;
    let bus_gain = hit_gain_equivalent(&machine, &base, &base.with_bus_factor(2.0), hr)?;
    let verdict = if worst_loss <= bus_gain {
        "doubling the bus fully covers the multiprogramming loss"
    } else {
        "the multiprogramming loss exceeds what doubling the bus buys back"
    };
    Ok(format!(
        "Multiprogramming degradation (8K 2-way, L=32, caches flushed per switch):\n{}\
         Worst ΔHR lost at 5K-instruction switching: {:.2}%; doubling the bus at\n\
         HR 90% is worth {:.2}% — {verdict}.\n",
        t.render(),
        100.0 * worst_loss,
        100.0 * bus_gain
    ))
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "context"
    }
    fn title(&self) -> &'static str {
        "Multiprogramming"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(report(ctx.instructions).expect("canonical parameters valid"))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switching_degrades_hit_ratio_monotonically() {
        for r in run(40_000) {
            let mut prev = r.base_hr + 1e-9;
            for &(interval, hr) in &r.switched_hr {
                assert!(
                    hr <= prev + 0.005,
                    "{}: interval {interval} raised HR",
                    r.program
                );
                prev = hr;
            }
        }
    }

    #[test]
    fn frequent_switching_hurts_reuse_heavy_code_most() {
        let rows = run(40_000);
        let loss = |p: Spec92Program| {
            let r = rows.iter().find(|r| r.program == p).unwrap();
            r.base_hr - r.switched_hr.last().unwrap().1
        };
        // ear lives on temporal reuse; the streaming sweeps barely care.
        assert!(
            loss(Spec92Program::Ear) > loss(Spec92Program::Swm256),
            "{rows:?}"
        );
    }

    #[test]
    fn report_has_verdict() {
        let text = report(20_000).unwrap();
        assert!(text.contains("doubling the bus"));
        assert!(text.contains("every 5K"));
    }
}
