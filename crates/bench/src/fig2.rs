//! EXP-F2 — Figure 2: hit ratio traded by doubling a 32-bit bus, versus
//! memory cycle time, for L ∈ {8, 16, 32} at base hit ratios 98 % and
//! 90 % (α = α′ = 0.5, full-stalling).

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{Artifact, Chart};
use tradeoff::equiv::traded_hit_ratio;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// The line sizes of the figure.
pub const LINES: [f64; 3] = [32.0, 16.0, 8.0];

/// One curve: `(β_m, ΔHR %)` for a line size at a base hit ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeCurve {
    /// Base hit ratio of the 32-bit system.
    pub base_hr: f64,
    /// Line size in bytes.
    pub line_bytes: f64,
    /// `(β_m, ΔHR %)` points.
    pub points: Vec<(f64, f64)>,
}

/// Computes the figure's six curves over `beta_range`.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn run(base_hrs: &[f64], betas: &[f64]) -> Result<Vec<TradeCurve>, TradeoffError> {
    let base = SystemConfig::full_stalling(0.5);
    let doubled = base.with_bus_factor(2.0);
    let mut out = Vec::new();
    for &hr in base_hrs {
        let hr_t = HitRatio::new(hr)?;
        for &l in &LINES {
            let mut points = Vec::with_capacity(betas.len());
            for &beta in betas {
                let machine = Machine::new(4.0, l, beta)?;
                let dhr = traded_hit_ratio(&machine, &base, &doubled, hr_t)?;
                points.push((beta, 100.0 * dhr));
            }
            out.push(TradeCurve {
                base_hr: hr,
                line_bytes: l,
                points,
            });
        }
    }
    Ok(out)
}

/// The figure's canonical β_m sweep (2..=20 per 4 bytes).
pub fn default_betas() -> Vec<f64> {
    (2..=20).map(f64::from).collect()
}

/// Renders both panels.
pub fn render(curves: &[TradeCurve]) -> String {
    let mut out = String::new();
    let mut hrs: Vec<f64> = curves.iter().map(|c| c.base_hr).collect();
    hrs.dedup();
    for hr in hrs {
        let mut chart = Chart::new(
            format!(
                "Figure 2 — hit ratio traded by doubling the bus (base HR {:.0}%)",
                hr * 100.0
            ),
            "beta_m (cycles per 4 bytes)",
            "traded HR %",
            60,
            12,
        );
        for c in curves.iter().filter(|c| c.base_hr == hr) {
            chart.series(format!("L={}", c.line_bytes), c.points.clone());
        }
        out.push_str(&chart.render());
        out.push('\n');
    }
    out
}

/// The figure's series as a typed `fig2.csv` artifact.
pub fn artifact(curves: &[TradeCurve]) -> Artifact {
    let mut rows = Vec::new();
    for c in curves {
        for &(beta, dhr) in &c.points {
            rows.push(vec![
                format!("{}", c.base_hr),
                format!("{}", c.line_bytes),
                format!("{beta}"),
                format!("{dhr:.4}"),
            ]);
        }
    }
    Artifact::csv(
        "fig2.csv",
        &["base_hr", "line_bytes", "beta_m", "traded_hr_pct"],
        rows,
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "fig2"
    }
    fn title(&self) -> &'static str {
        "Figure 2"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "figure", "analytic"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        let curves = run(&[0.98, 0.90], &default_betas()).expect("canonical parameters are valid");
        ExpReport {
            section: render(&curves),
            artifacts: vec![artifact(&curves)],
        }
    }
}

/// Entry point shared by the binary and the suite driver.
///
/// # Panics
///
/// Panics if the canonical parameters were invalid (they are not).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_quoted_points() {
        let curves = run(&[0.98], &default_betas()).unwrap();
        // L = 32, long memory cycle: traded HR ≈ 2 % (98 → 96).
        let l32 = curves.iter().find(|c| c.line_bytes == 32.0).unwrap();
        let at_20 = l32.points.last().unwrap().1;
        assert!((at_20 - 2.0).abs() < 0.15, "L=32 at β=20: {at_20}");
        // L = 8, β_m = 2: traded HR ≈ 3 % (95 → 98 in reverse).
        let l8 = curves.iter().find(|c| c.line_bytes == 8.0).unwrap();
        let at_2 = l8.points[0].1;
        assert!((at_2 - 3.0).abs() < 0.01, "L=8 at β=2: {at_2}");
    }

    #[test]
    fn curves_decrease_with_beta_and_line_size() {
        let curves = run(&[0.90], &default_betas()).unwrap();
        for c in &curves {
            for w in c.points.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-12,
                    "not decreasing for L={}",
                    c.line_bytes
                );
            }
        }
        // Smaller lines trade more at every β.
        let by_line = |l: f64| curves.iter().find(|c| c.line_bytes == l).unwrap();
        for i in 0..default_betas().len() {
            assert!(by_line(8.0).points[i].1 >= by_line(16.0).points[i].1);
            assert!(by_line(16.0).points[i].1 >= by_line(32.0).points[i].1);
        }
    }

    #[test]
    fn lower_base_hr_trades_proportionally_more() {
        let curves = run(&[0.98, 0.90], &default_betas()).unwrap();
        let at = |hr: f64, l: f64| {
            curves
                .iter()
                .find(|c| c.base_hr == hr && c.line_bytes == l)
                .unwrap()
                .points[0]
                .1
        };
        // ΔHR ∝ (1 − HR): ratio 5×.
        assert!((at(0.90, 8.0) / at(0.98, 8.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn render_emits_two_panels_and_artifact_covers_all_points() {
        let curves = run(&[0.98, 0.90], &[2.0, 10.0, 20.0]).unwrap();
        let text = render(&curves);
        assert_eq!(text.matches("Figure 2").count(), 2);
        let a = artifact(&curves);
        assert_eq!(a.name, "fig2.csv");
        match &a.kind {
            report::ArtifactKind::Csv { rows, .. } => {
                assert_eq!(rows.len(), 2 * LINES.len() * 3);
            }
            other => panic!("expected CSV artifact, got {other:?}"),
        }
    }
}
