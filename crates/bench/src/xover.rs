//! EXP-X1 — Section 5.3's crossover points: where pipelined memory
//! overtakes the other features.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use tradeoff::crossover::{find_crossover, pipelined_vs_double_bus, pipelined_vs_write_buffers};
use tradeoff::{Machine, SystemConfig, TradeoffError};

/// One crossover record.
#[derive(Debug, Clone, PartialEq)]
pub struct Crossover {
    /// Line-to-bus ratio `L/D`.
    pub chunks: f64,
    /// Pipeline issue interval `q`.
    pub q: f64,
    /// β_m beyond which pipelining beats doubling the bus, if ever.
    pub vs_bus: Option<f64>,
    /// β_m beyond which pipelining beats write buffers, if ever.
    pub vs_wbuf: Option<f64>,
}

/// Computes the crossover table for the given `L/D` and `q` grids
/// (α = 0.5), cross-checking each closed form against bisection.
///
/// # Errors
///
/// Propagates model-validation errors from the bisection check.
pub fn run(chunk_grid: &[f64], q_grid: &[f64]) -> Result<Vec<Crossover>, TradeoffError> {
    let mut out = Vec::new();
    for &chunks in chunk_grid {
        for &q in q_grid {
            let vs_bus = pipelined_vs_double_bus(chunks, q);
            let vs_wbuf = pipelined_vs_write_buffers(chunks, q, 0.5);
            // Cross-check against the generic bisection solver.
            let machine = Machine::new(4.0, 4.0 * chunks, 8.0)?;
            let base = SystemConfig::full_stalling(0.5);
            let numeric = find_crossover(
                &machine,
                &base.with_pipelined_memory(q),
                &base.with_bus_factor(2.0),
                1.0,
                10_000.0,
            )?;
            match (vs_bus, numeric) {
                (Some(a), Some(b)) => debug_assert!((a - b).abs() < 1e-6),
                (None, None) => {}
                // Closed form at exactly X = 2 meets the bisection's edge.
                (a, b) => debug_assert!(chunks <= 2.0, "mismatch: {a:?} vs {b:?}"),
            }
            out.push(Crossover {
                chunks,
                q,
                vs_bus,
                vs_wbuf,
            });
        }
    }
    Ok(out)
}

/// Renders the crossover table.
pub fn render(rows: &[Crossover]) -> String {
    let fmt = |v: Option<f64>| v.map_or("never".to_string(), |x| format!("{x:.2}"));
    let mut t = Table::new(["L/D", "q", "β* vs doubling bus", "β* vs write buffers"]);
    for r in rows {
        t.row([
            format!("{}", r.chunks),
            format!("{}", r.q),
            fmt(r.vs_bus),
            fmt(r.vs_wbuf),
        ]);
    }
    format!("Crossover memory cycle times (α = 0.5):\n{}", t.render())
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "xover"
    }
    fn title(&self) -> &'static str {
        "Crossover points"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "analytic"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        let rows =
            run(&[2.0, 4.0, 8.0, 16.0], &[1.0, 2.0, 4.0]).expect("canonical parameters valid");
        ExpReport::text_only(render(&rows))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_crossover_for_l32_q2() {
        let rows = run(&[8.0], &[2.0]).unwrap();
        let b = rows[0].vs_bus.unwrap();
        assert!(
            b > 4.0 && b < 6.0,
            "paper: less than about five or six cycles; got {b}"
        );
    }

    #[test]
    fn no_bus_crossover_at_l_2d() {
        let rows = run(&[2.0], &[2.0]).unwrap();
        assert_eq!(rows[0].vs_bus, None);
    }

    #[test]
    fn crossovers_grow_with_q() {
        let rows = run(&[8.0], &[1.0, 2.0, 4.0]).unwrap();
        let bs: Vec<f64> = rows.iter().map(|r| r.vs_bus.unwrap()).collect();
        assert!(bs[0] < bs[1] && bs[1] < bs[2]);
    }

    #[test]
    fn wbuf_crossover_earlier_than_bus_crossover() {
        // Write buffers are a weaker feature, so pipelining overtakes
        // them sooner.
        let rows = run(&[8.0, 16.0], &[2.0]).unwrap();
        for r in &rows {
            assert!(r.vs_wbuf.unwrap() < r.vs_bus.unwrap(), "{r:?}");
        }
    }

    #[test]
    fn render_lists_grid() {
        let text = main_report();
        assert!(text.contains("never"), "L/D=2 row shows no crossover");
        assert!(text.contains("β* vs doubling bus"));
    }
}
