//! EXP-X7 — second-level cache extension: does an L2 change the paper's
//! conclusions?
//!
//! A 1994-vintage system saw raw memory on every miss; adding an L2
//! shrinks the *effective* memory cycle time the L1 misses observe. The
//! unified methodology predicts exactly what should happen: features
//! whose value grows with β_m (pipelining past its crossover) lose
//! appeal, and the bus-doubling/write-buffer curves move toward their
//! small-β_m ends. The experiment measures the effective per-miss
//! service with and without an L2 and re-evaluates the feature ranking
//! at the effective point.

use crate::common::figure1_cache;
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcache::CacheConfig;
use simcpu::{Cpu, CpuConfig, L2Config, SimResult};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use tradeoff::crossover::pipelined_vs_double_bus;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// Measurements for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct L2Worth {
    /// Workload.
    pub program: Spec92Program,
    /// Cycles without an L2.
    pub cycles_flat: u64,
    /// Cycles with the L2.
    pub cycles_l2: u64,
    /// Effective memory cycle time seen by L1 misses, without L2
    /// (`miss_stall / (fills · L/D)`).
    pub beta_eff_flat: f64,
    /// Effective memory cycle time with the L2.
    pub beta_eff_l2: f64,
    /// L2 local hit ratio.
    pub l2_hit_ratio: f64,
}

fn simulate(program: Spec92Program, l2: Option<L2Config>, beta: u64, n: usize) -> SimResult {
    let mut cfg = CpuConfig::baseline(
        figure1_cache(32),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
    );
    if let Some(l2) = l2 {
        cfg = cfg.with_l2(l2);
    }
    Cpu::new(cfg).run(spec92_trace(program, 0x12E2).take(n))
}

/// The canonical L2 of the experiment: 128 KB 4-way at β = 2.
///
/// # Panics
///
/// Panics only if the constant geometry were invalid (it is not).
pub fn canonical_l2() -> L2Config {
    L2Config::new(CacheConfig::new(128 * 1024, 32, 4).expect("valid L2"), 2)
}

fn beta_eff(r: &SimResult) -> f64 {
    let chunks = (r.line_bytes / 4) as f64;
    if r.dcache.fills == 0 {
        0.0
    } else {
        r.miss_stall_cycles as f64 / (r.dcache.fills as f64 * chunks)
    }
}

/// Runs the comparison for all proxies.
pub fn run(beta: u64, instructions: usize) -> Vec<L2Worth> {
    Spec92Program::ALL
        .iter()
        .map(|&program| {
            let flat = simulate(program, None, beta, instructions);
            let l2 = simulate(program, Some(canonical_l2()), beta, instructions);
            L2Worth {
                program,
                cycles_flat: flat.cycles,
                cycles_l2: l2.cycles,
                beta_eff_flat: beta_eff(&flat),
                beta_eff_l2: beta_eff(&l2),
                l2_hit_ratio: l2.l2.map_or(0.0, |s| s.hit_ratio()),
            }
        })
        .collect()
}

/// Renders the table plus the crossover implication.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn report(beta: u64, instructions: usize) -> Result<String, TradeoffError> {
    let rows = run(beta, instructions);
    let mut t = Table::new([
        "program",
        "cycles (flat)",
        "cycles (+L2)",
        "β_eff flat",
        "β_eff +L2",
        "L2 HR",
    ]);
    let mut avg_eff = 0.0;
    for r in &rows {
        avg_eff += r.beta_eff_l2;
        t.row([
            r.program.to_string(),
            r.cycles_flat.to_string(),
            r.cycles_l2.to_string(),
            format!("{:.2}", r.beta_eff_flat),
            format!("{:.2}", r.beta_eff_l2),
            format!("{:.1}%", 100.0 * r.l2_hit_ratio),
        ]);
    }
    avg_eff /= rows.len() as f64;

    // The ranking implication: re-evaluate the pipelining-vs-bus
    // comparison at the effective memory cycle time.
    let crossover = pipelined_vs_double_bus(8.0, 2.0).expect("L/D = 8 has a crossover");
    let machine = Machine::new(4.0, 32.0, avg_eff.max(1.1))?;
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.95)?;
    let pipe =
        tradeoff::equiv::traded_hit_ratio(&machine, &base, &base.with_pipelined_memory(2.0), hr)?;
    let bus = tradeoff::equiv::traded_hit_ratio(&machine, &base, &base.with_bus_factor(2.0), hr)?;
    let verdict = if avg_eff < crossover {
        format!(
            "below the pipelining crossover ({crossover:.2}): doubling the bus \
             ({:.2}%) again beats pipelined memory ({:.2}%)",
            100.0 * bus,
            100.0 * pipe
        )
    } else {
        format!("still above the pipelining crossover ({crossover:.2}): pipelining keeps winning")
    };
    Ok(format!(
        "Second-level cache extension (8K L1 + 128K L2 @ β=2, memory β={beta}):\n{}\n\
         Average effective memory cycle seen by L1 misses drops to {avg_eff:.2} — {verdict}.\n",
        t.render()
    ))
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "l2"
    }
    fn title(&self) -> &'static str {
        "L2 extension"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(report(8, ctx.instructions).expect("canonical parameters valid"))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_always_helps_and_shrinks_beta_eff() {
        for r in run(8, 30_000) {
            assert!(r.cycles_l2 <= r.cycles_flat, "{:?}", r);
            assert!(r.beta_eff_l2 < r.beta_eff_flat, "{:?}", r);
            assert!(r.l2_hit_ratio > 0.0, "{:?}", r);
        }
    }

    #[test]
    fn flat_beta_eff_matches_fs_definition() {
        // Without an L2, FS makes every miss cost exactly (L/D)·β_m, so
        // the effective β is β_m (up to queueing from flushes).
        for r in run(8, 20_000) {
            assert!(r.beta_eff_flat >= 8.0 - 1e-9, "{:?}", r);
            assert!(r.beta_eff_flat < 10.0, "{:?}", r);
        }
    }

    #[test]
    fn report_states_the_crossover_verdict() {
        let text = report(8, 15_000).unwrap();
        assert!(text.contains("crossover"));
        assert!(text.contains("β_eff"));
    }
}
