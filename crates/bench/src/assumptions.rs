//! EXP-X15 — auditing the paper's Section 3.1 assumptions.
//!
//! The model rests on five hardware assumptions; two are directly
//! testable by relaxing them in the simulator:
//!
//! * **Assumption 1** (separate instruction and data buses): we give the
//!   I-cache misses the *data* bus instead and measure the contention.
//! * **Assumption 5** (equal read and write memory cycles): we make
//!   writes 2× slower and measure the flush-term inflation.
//!
//! The punchline is quantitative: how much each dated assumption is
//! worth, in CPI, on the SPEC92 proxies — and therefore how much caution
//! the analytic numbers deserve on machines that violate them.

use crate::registry::{ExpReport, Experiment, RunCtx};
use crate::tracestore;
use report::Table;
use simcache::CacheConfig;
use simcpu::{Cpu, CpuConfig, SimResult};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::Spec92Program;

/// The three variants per workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AssumptionRow {
    /// Workload.
    pub program: Spec92Program,
    /// The paper's assumptions hold.
    pub baseline: SimResult,
    /// Assumption 1 relaxed: one shared external bus.
    pub shared_bus: SimResult,
    /// Assumption 5 relaxed: writes at 2×β_m.
    pub slow_writes: SimResult,
}

fn simulate(program: Spec92Program, shared: bool, slow_writes: bool, n: usize) -> SimResult {
    let mut timing = MemoryTiming::new(BusWidth::new(4).expect("valid bus"), 8);
    if slow_writes {
        timing = timing.with_write_beta(16);
    }
    let mut cfg = CpuConfig::baseline(
        CacheConfig::new(8 * 1024, 32, 2).expect("valid dcache"),
        timing,
    )
    .with_icache(CacheConfig::new(8 * 1024, 32, 1).expect("valid icache"));
    if shared {
        cfg = cfg.with_shared_bus();
    }
    // The I-cache makes timing cache-history-dependent, so this
    // experiment keeps the full simulator — but the trace itself is
    // materialised once per program and shared by the three variants.
    let trace = tracestore::spec_trace(program, 0xA55E, n);
    Cpu::new(cfg).run(trace.iter().copied())
}

/// Runs the audit for every proxy: the 18 (program × variant) full
/// simulations fan out over the [`crate::exec`] pool.
pub fn run(instructions: usize) -> Vec<AssumptionRow> {
    let jobs: Vec<(Spec92Program, bool, bool)> = Spec92Program::ALL
        .into_iter()
        .flat_map(|p| [(p, false, false), (p, true, false), (p, false, true)])
        .collect();
    let results = crate::exec::parallel_map(&jobs, |&(program, shared, slow)| {
        simulate(program, shared, slow, instructions)
    });
    Spec92Program::ALL
        .into_iter()
        .zip(results.chunks(3))
        .map(|(program, chunk)| AssumptionRow {
            program,
            baseline: chunk[0],
            shared_bus: chunk[1],
            slow_writes: chunk[2],
        })
        .collect()
}

/// Renders the audit table.
pub fn render(rows: &[AssumptionRow]) -> String {
    let mut t = Table::new([
        "program",
        "CPI (assumptions hold)",
        "CPI shared bus (Δ%)",
        "CPI writes 2× (Δ%)",
    ]);
    for r in rows {
        let base = r.baseline.cpi();
        let pct = |x: f64| 100.0 * (x - base) / base;
        t.row([
            r.program.to_string(),
            format!("{base:.3}"),
            format!(
                "{:.3} ({:+.1}%)",
                r.shared_bus.cpi(),
                pct(r.shared_bus.cpi())
            ),
            format!(
                "{:.3} ({:+.1}%)",
                r.slow_writes.cpi(),
                pct(r.slow_writes.cpi())
            ),
        ]);
    }
    format!(
        "Auditing Section 3.1's assumptions (8K I + 8K D, L=32, D=4, β=8):\n{}\
         Assumption 1 (split buses) costs little when the I-cache runs hot;\n\
         assumption 5 (symmetric cycles) matters in proportion to the flush ratio α —\n\
         both are quantified here rather than taken on faith.\n",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "assumptions"
    }
    fn title(&self) -> &'static str {
        "Assumption audit"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured", "validation"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(ctx.instructions)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxing_assumptions_never_speeds_things_up() {
        for r in run(25_000) {
            assert!(r.shared_bus.cycles >= r.baseline.cycles, "{}", r.program);
            assert!(r.slow_writes.cycles >= r.baseline.cycles, "{}", r.program);
        }
    }

    #[test]
    fn slow_writes_cost_scales_with_flush_ratio() {
        let rows = run(30_000);
        let inflation = |p: Spec92Program| {
            let r = rows.iter().find(|r| r.program == p).unwrap();
            r.slow_writes.cycles as f64 / r.baseline.cycles as f64
        };
        // ear flushes nearly every fill (α ≈ 0.9); doduc barely (α ≈ 0.3).
        assert!(
            inflation(Spec92Program::Ear) > inflation(Spec92Program::Doduc),
            "ear {} vs doduc {}",
            inflation(Spec92Program::Ear),
            inflation(Spec92Program::Doduc)
        );
    }

    #[test]
    fn identity_survives_relaxed_assumptions() {
        for r in run(15_000) {
            for v in [&r.baseline, &r.shared_bus, &r.slow_writes] {
                assert!(simcpu::validation_error(v) < 1e-9, "{}", r.program);
            }
        }
    }

    #[test]
    fn render_quantifies_both_assumptions() {
        let text = render(&run(10_000));
        assert!(text.contains("shared bus"));
        assert!(text.contains("writes 2×"));
    }
}
