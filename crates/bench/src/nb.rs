//! EXP-X16 — the non-blocking cache the paper did not simulate.
//!
//! Section 5.3: "The stalling factor for the non-blocking cache was not
//! evaluated from the simulation." Our simulator supports NB with
//! configurable MSHRs, so this experiment completes the measurement: NB's
//! φ versus memory cycle time and MSHR count, and where NB would slot
//! into the Figures 3–5 ranking.

use crate::common::{phi_matrix, PhiPoint};
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{Chart, Table};
use simcpu::StallFeature;
use tradeoff::equiv::traded_hit_ratio;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// The β_m grid of the measurement.
pub const BETAS: [u64; 5] = [4, 8, 15, 25, 40];

/// The MSHR counts of the measurement.
pub const MSHR_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Measured NB φ per (MSHR count, β_m).
///
/// One [`phi_matrix`] batch covers the whole grid: a single timeline
/// per program serves every MSHR count and β, so the 20 points cost six
/// cache passes plus 120 `O(misses)` replays.
pub fn phi_grid(instructions: usize) -> Vec<(u32, Vec<(f64, f64)>)> {
    let points: Vec<PhiPoint> = MSHR_COUNTS
        .into_iter()
        .flat_map(|mshrs| {
            BETAS
                .iter()
                .map(move |&beta| (StallFeature::NonBlocking { mshrs }, beta))
        })
        .collect();
    let phis = phi_matrix(&points, 32, 4, instructions);
    MSHR_COUNTS
        .into_iter()
        .enumerate()
        .map(|(m, mshrs)| {
            let pts = BETAS
                .iter()
                .enumerate()
                .map(|(b, &beta)| (beta as f64, phis[m * BETAS.len() + b]))
                .collect();
            (mshrs, pts)
        })
        .collect()
}

/// Renders the φ chart plus the ranking insertion at β = 8.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn report(instructions: usize) -> Result<String, TradeoffError> {
    let grid = phi_grid(instructions);
    let mut chart = Chart::new(
        "NB stalling factor vs memory cycle time (SPEC92 proxies, 8K 2-way, L=32, D=4)",
        "beta_m",
        "phi",
        56,
        12,
    );
    for (mshrs, pts) in &grid {
        chart.series(format!("{mshrs} MSHR"), pts.clone());
    }

    // Insert NB into the β = 8 ranking with the paper's standard features.
    let machine = Machine::new(4.0, 32.0, 8.0)?;
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.95)?;
    let nb_phi = grid
        .iter()
        .find(|(m, _)| *m == 4)
        .and_then(|(_, pts)| pts.iter().find(|(b, _)| *b == 8.0))
        .map(|&(_, phi)| phi)
        .expect("grid covers 4 MSHRs at β = 8");
    let mut t = Table::new(["feature", "ΔHR at β=8, HR=95%"]);
    let mut entries = vec![
        (
            "doubling bus".to_string(),
            traded_hit_ratio(&machine, &base, &base.with_bus_factor(2.0), hr)?,
        ),
        (
            "write buffers".to_string(),
            traded_hit_ratio(&machine, &base, &base.with_write_buffers(), hr)?,
        ),
        (
            format!("NB cache, 4 MSHRs (measured φ = {nb_phi:.2})"),
            traded_hit_ratio(
                &machine,
                &base,
                &base.with_partial_stall(nb_phi.clamp(0.0, 8.0)),
                hr,
            )?,
        ),
    ];
    entries.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, dhr) in entries {
        t.row([name, format!("{:+.2}%", 100.0 * dhr)]);
    }
    Ok(format!(
        "{}\nWhere NB lands in the paper's ranking:\n{}\
         The paper predicted NB's benefit is limited unless multiple outstanding\n\
         misses are supported — the MSHR series above measures exactly that.\n",
        chart.render(),
        t.render()
    ))
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "nb"
    }
    fn title(&self) -> &'static str {
        "Non-blocking cache"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn depends_on_traces(&self) -> &'static [&'static str] {
        &[crate::registry::traces::SPEC_L32]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(report(ctx.instructions).expect("canonical parameters valid"))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_mshrs_never_raise_phi() {
        let grid = phi_grid(15_000);
        for i in 0..BETAS.len() {
            let phis: Vec<f64> = grid.iter().map(|(_, pts)| pts[i].1).collect();
            for w in phis.windows(2) {
                assert!(w[1] <= w[0] + 0.05, "β index {i}: {phis:?}");
            }
        }
    }

    #[test]
    fn nb_phi_stays_in_table2_band() {
        for (mshrs, pts) in phi_grid(10_000) {
            for (beta, phi) in pts {
                assert!(
                    (0.0..=8.0 + 1e-9).contains(&phi),
                    "{mshrs} MSHRs at β={beta}: φ={phi}"
                );
            }
        }
    }

    #[test]
    fn report_ranks_nb() {
        let text = report(10_000).unwrap();
        assert!(text.contains("NB cache"));
        assert!(text.contains("doubling bus"));
    }
}
