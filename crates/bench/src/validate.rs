//! EXP-V1 — Section 4.5 end-to-end validation: Eq. 2 with measured
//! parameters versus cycle-accurate simulation, plus the equivalence law
//! verified *in the simulator*.

use crate::common::run_spec;
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcpu::{predict_cycles, validation_error, StallFeature};
use simtrace::spec92::Spec92Program;

/// One validation row.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Workload.
    pub program: Spec92Program,
    /// Stalling feature simulated.
    pub stall: StallFeature,
    /// Simulated cycles.
    pub simulated: u64,
    /// Eq. 2's prediction from the measured profile.
    pub predicted: f64,
    /// Relative error.
    pub rel_error: f64,
}

/// Runs the validation grid: all 24 (program × feature) rows fan out
/// over the [`crate::exec`] pool, with each program's timeline shared by
/// its four feature replays via the trace store.
pub fn run(instructions: usize) -> Vec<ValidationRow> {
    let grid: Vec<(Spec92Program, StallFeature)> = Spec92Program::ALL
        .into_iter()
        .flat_map(|p| {
            [
                StallFeature::FullStall,
                StallFeature::BusLocked,
                StallFeature::BusNotLocked3,
                StallFeature::NonBlocking { mshrs: 4 },
            ]
            .into_iter()
            .map(move |stall| (p, stall))
        })
        .collect();
    crate::exec::parallel_map(&grid, |&(program, stall)| {
        let r = run_spec(program, stall, 32, 4, 8, instructions);
        ValidationRow {
            program,
            stall,
            simulated: r.cycles,
            predicted: predict_cycles(&r),
            rel_error: validation_error(&r),
        }
    })
}

/// Renders the validation table.
pub fn render(rows: &[ValidationRow]) -> String {
    let mut t = Table::new([
        "program",
        "feature",
        "simulated cycles",
        "Eq.2 predicted",
        "rel err",
    ]);
    for r in rows {
        t.row([
            r.program.to_string(),
            r.stall.to_string(),
            r.simulated.to_string(),
            format!("{:.0}", r.predicted),
            format!("{:.2e}", r.rel_error),
        ]);
    }
    format!(
        "Eq. 2 vs cycle-accurate simulation (8K 2-way, L=32, D=4, β=8):\n{}",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "validate"
    }
    fn title(&self) -> &'static str {
        "Model validation"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "measured", "validation"]
    }
    fn depends_on_traces(&self) -> &'static [&'static str] {
        &[crate::registry::traces::SPEC_L32]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(ctx.instructions)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_error_is_zero_for_all_rows() {
        for r in run(15_000) {
            assert!(
                r.rel_error < 1e-9,
                "{} {}: err {}",
                r.program,
                r.stall,
                r.rel_error
            );
        }
    }

    #[test]
    fn grid_covers_programs_and_features() {
        let rows = run(2_000);
        assert_eq!(rows.len(), 6 * 4);
    }

    #[test]
    fn render_shows_errors() {
        let text = render(&run(2_000));
        assert!(text.contains("rel err"));
        assert!(text.contains("nasa7"));
    }
}
