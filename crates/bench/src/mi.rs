//! EXP-X3 — the Section 6 extension: multiple instruction issue.
//!
//! The paper closes by asking how its results change when throughput
//! exceeds one instruction per cycle. Two views:
//!
//! 1. Analytic: the hit ratio each feature trades versus issue width
//!    (`r_w = (G_b − 1/w)/(G_e − 1/w)`), showing hit ratio growing more
//!    precious as width grows.
//! 2. Simulated: the issue-width-capable CPU simulator versus the
//!    generalised Eq. 2, closing the loop for `w ∈ {1, 2, 4, 8}`.

use crate::common::figure1_cache;
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcpu::{predict_cycles_multiissue, Cpu, CpuConfig};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use tradeoff::multiissue::{miss_traffic_ratio_limit, traded_hit_ratio_w};
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// The analytic table: ΔHR per feature across issue widths.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn analytic_table(beta_m: f64) -> Result<String, TradeoffError> {
    let machine = Machine::new(4.0, 32.0, beta_m)?;
    let base = SystemConfig::full_stalling(0.5);
    let hr = HitRatio::new(0.95)?;
    let features = [
        ("doubling bus", base.with_bus_factor(2.0)),
        ("write buffers", base.with_write_buffers()),
        ("pipelined memory (q=2)", base.with_pipelined_memory(2.0)),
    ];
    let mut t = Table::new(["feature", "w=1", "w=2", "w=4", "w=8", "w→∞ limit"]);
    for (name, enh) in features {
        let mut row = vec![name.to_string()];
        for w in [1u32, 2, 4, 8] {
            row.push(format!(
                "{:.3}%",
                100.0 * traded_hit_ratio_w(&machine, &base, &enh, hr, w)?
            ));
        }
        let limit = (miss_traffic_ratio_limit(&machine, &base, &enh)? - 1.0) * hr.miss_ratio();
        row.push(format!("{:.3}%", 100.0 * limit));
        t.row(row);
    }
    Ok(t.render())
}

/// One simulated validation row.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthValidation {
    /// Issue width simulated.
    pub width: u32,
    /// Simulated cycles.
    pub simulated: u64,
    /// Generalised Eq. 2 prediction (analytic base term).
    pub predicted: f64,
    /// Relative error.
    pub rel_error: f64,
}

/// Simulates one proxy across issue widths and checks the generalised
/// model.
pub fn simulate_widths(program: Spec92Program, instructions: usize) -> Vec<WidthValidation> {
    [1u32, 2, 4, 8]
        .into_iter()
        .map(|width| {
            let cfg = CpuConfig::baseline(
                figure1_cache(32),
                MemoryTiming::new(BusWidth::new(4).expect("valid bus"), 8),
            )
            .with_issue_width(width);
            let r = Cpu::new(cfg).run(spec92_trace(program, 0xD0D0).take(instructions));
            let predicted = predict_cycles_multiissue(&r, width);
            WidthValidation {
                width,
                simulated: r.cycles,
                predicted,
                rel_error: (predicted - r.cycles as f64).abs() / r.cycles as f64,
            }
        })
        .collect()
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "mi"
    }
    fn title(&self) -> &'static str {
        "Multi-issue extension"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let mut out = String::new();
        out.push_str("Hit ratio traded per feature vs issue width (L=32, D=4, β=8, HR=95%):\n");
        out.push_str(&analytic_table(8.0).expect("canonical parameters valid"));
        out.push('\n');

        let mut t = Table::new(["program", "w", "simulated", "Eq.2(w) predicted", "rel err"]);
        for p in [Spec92Program::Ear, Spec92Program::Swm256] {
            // The width ladder replays the trace once per w; the clamp
            // keeps the suite's wall-clock in check.
            for v in simulate_widths(p, ctx.instructions.min(60_000)) {
                t.row([
                    p.to_string(),
                    v.width.to_string(),
                    v.simulated.to_string(),
                    format!("{:.0}", v.predicted),
                    format!("{:.2e}", v.rel_error),
                ]);
            }
        }
        out.push_str("Generalised Eq. 2 vs issue-width simulation:\n");
        out.push_str(&t.render());
        ExpReport::text_only(out)
    }
}

/// Entry point shared by the binary and the `run_all` driver.
///
/// # Panics
///
/// Panics if the canonical parameters were invalid (they are not).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_table_renders_limits() {
        let text = analytic_table(8.0).unwrap();
        assert!(text.contains("w→∞ limit"));
        assert!(text.contains("doubling bus"));
    }

    #[test]
    fn generalized_model_tracks_simulation_within_issue_rounding() {
        for v in simulate_widths(Spec92Program::Ear, 20_000) {
            assert!(v.rel_error < 0.05, "w={}: err {}", v.width, v.rel_error);
        }
    }

    #[test]
    fn wider_issue_means_fewer_cycles_and_higher_memory_share() {
        let vs = simulate_widths(Spec92Program::Swm256, 20_000);
        for pair in vs.windows(2) {
            assert!(pair[1].simulated <= pair[0].simulated);
        }
        // Width-8 cycles are dominated by the (width-independent) memory
        // stalls, so speedup saturates well below 8×.
        let speedup = vs[0].simulated as f64 / vs[3].simulated as f64;
        assert!(speedup < 4.0, "speedup {speedup} should be memory-bound");
    }
}
