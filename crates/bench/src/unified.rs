//! EXP-F3/F4/F5 — Figures 3–5: the unified comparison.
//!
//! For a full-blocking, non-pipelined baseline at base HR 95 % and
//! α = 0.5, plot the hit ratio traded by each feature against the
//! non-pipelined memory cycle time:
//!
//! * Figure 3: L = 8, D = 4, q = 2, with the BNL1 stalling factor
//!   measured from the SPEC92 proxies;
//! * Figure 4: the same with L = 32;
//! * Figure 5: L = 32 with BNL3 instead of BNL1.
//!
//! The BNL φ is *measured* per β_m by trace-driven simulation, exactly as
//! the paper does, then fed to the analytic equivalence.

use crate::common::average_phi;
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::{Artifact, Chart};
use simcpu::StallFeature;
use tradeoff::equiv::traded_hit_ratio;
use tradeoff::{HitRatio, Machine, SystemConfig, TradeoffError};

/// Which unified figure to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifiedConfig {
    /// Figure number (3, 4 or 5) — controls the title and CSV name.
    pub figure: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// The BNL variant whose measured φ is plotted.
    pub bnl: StallFeature,
}

/// Figure 3's configuration.
pub const FIG3: UnifiedConfig = UnifiedConfig {
    figure: 3,
    line_bytes: 8,
    bnl: StallFeature::BusNotLocked1,
};
/// Figure 4's configuration.
pub const FIG4: UnifiedConfig = UnifiedConfig {
    figure: 4,
    line_bytes: 32,
    bnl: StallFeature::BusNotLocked1,
};
/// Figure 5's configuration.
pub const FIG5: UnifiedConfig = UnifiedConfig {
    figure: 5,
    line_bytes: 32,
    bnl: StallFeature::BusNotLocked3,
};

/// One feature curve of a unified figure.
#[derive(Debug, Clone)]
pub struct FeatureCurve {
    /// Legend label.
    pub name: String,
    /// `(β_m, ΔHR %)` points.
    pub points: Vec<(f64, f64)>,
}

/// Computes the four curves of a unified figure.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn run(
    cfg: UnifiedConfig,
    betas: &[u64],
    instructions: usize,
) -> Result<Vec<FeatureCurve>, TradeoffError> {
    let hr = HitRatio::new(0.95)?;
    let base = SystemConfig::full_stalling(0.5);
    let chunks = (cfg.line_bytes / 4) as f64;

    let mut pipelined = Vec::new();
    let mut bus = Vec::new();
    let mut wbuf = Vec::new();
    let mut bnl = Vec::new();
    for &beta in betas {
        let machine = Machine::new(4.0, cfg.line_bytes as f64, beta as f64)?;
        let dhr = |enh: &SystemConfig| -> Result<f64, TradeoffError> {
            Ok(100.0 * traded_hit_ratio(&machine, &base, enh, hr)?)
        };
        pipelined.push((beta as f64, dhr(&base.with_pipelined_memory(2.0))?));
        bus.push((beta as f64, dhr(&base.with_bus_factor(2.0))?));
        wbuf.push((beta as f64, dhr(&base.with_write_buffers())?));
        // Measure the BNL stalling factor at this β_m, clamped into the
        // admissible band in case of sampling noise.
        let phi = average_phi(cfg.bnl, cfg.line_bytes, 4, beta, instructions).clamp(1.0, chunks);
        bnl.push((beta as f64, dhr(&base.with_partial_stall(phi))?));
    }
    Ok(vec![
        FeatureCurve {
            name: "pipelined mem".into(),
            points: pipelined,
        },
        FeatureCurve {
            name: "doubling bus".into(),
            points: bus,
        },
        FeatureCurve {
            name: "write buffers".into(),
            points: wbuf,
        },
        FeatureCurve {
            name: format!("{}", cfg.bnl),
            points: bnl,
        },
    ])
}

/// The figures' β_m sweep.
pub fn default_betas() -> Vec<u64> {
    vec![2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20]
}

/// Renders a unified figure's chart.
pub fn render(cfg: UnifiedConfig, curves: &[FeatureCurve]) -> String {
    let mut chart = Chart::new(
        format!(
            "Figure {} — unified tradeoff (L={}, D=4, q=2, base HR 95%, α=0.5)",
            cfg.figure, cfg.line_bytes
        ),
        "non-pipelined beta_m (cycles per 4 bytes)",
        "traded HR %",
        60,
        16,
    );
    for c in curves {
        chart.series(c.name.clone(), c.points.clone());
    }
    chart.render()
}

/// A figure's series as its typed `fig{N}.csv` artifact.
pub fn artifact(cfg: UnifiedConfig, curves: &[FeatureCurve]) -> Artifact {
    let mut rows = Vec::new();
    for c in curves {
        for &(beta, dhr) in &c.points {
            rows.push(vec![c.name.clone(), format!("{beta}"), format!("{dhr:.4}")]);
        }
    }
    Artifact::csv(
        format!("fig{}.csv", cfg.figure),
        &["feature", "beta_m", "traded_hr_pct"],
        rows,
    )
}

/// Registry entry for one unified figure.
pub struct Exp(pub UnifiedConfig);

/// Figure 3's registry entry.
pub static EXP3: Exp = Exp(FIG3);
/// Figure 4's registry entry.
pub static EXP4: Exp = Exp(FIG4);
/// Figure 5's registry entry.
pub static EXP5: Exp = Exp(FIG5);

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        match self.0.figure {
            3 => "fig3",
            4 => "fig4",
            _ => "fig5",
        }
    }
    fn title(&self) -> &'static str {
        match self.0.figure {
            3 => "Figure 3",
            4 => "Figure 4",
            _ => "Figure 5",
        }
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "figure", "measured"]
    }
    fn depends_on_traces(&self) -> &'static [&'static str] {
        if self.0.line_bytes == 8 {
            &[crate::registry::traces::SPEC_L8]
        } else {
            &[crate::registry::traces::SPEC_L32]
        }
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        let curves =
            run(self.0, &default_betas(), ctx.instructions).expect("canonical parameters valid");
        ExpReport {
            section: render(self.0, &curves),
            artifacts: vec![artifact(self.0, &curves)],
        }
    }
}

/// Produces the full report for one figure, writing its CSV to the
/// results directory (the historical entry point).
pub fn main_report(cfg: UnifiedConfig) -> String {
    crate::registry::main_report(&Exp(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name<'a>(curves: &'a [FeatureCurve], n: &str) -> &'a FeatureCurve {
        curves
            .iter()
            .find(|c| c.name == n)
            .unwrap_or_else(|| panic!("missing {n}"))
    }

    #[test]
    fn figure3_orderings_hold() {
        let curves = run(FIG3, &[2, 4, 8, 16, 20], 15_000).unwrap();
        let pipe = by_name(&curves, "pipelined mem");
        let bus = by_name(&curves, "doubling bus");
        let wb = by_name(&curves, "write buffers");
        let bnl1 = by_name(&curves, "BNL1");
        // Pipelined meets the x-axis at β = q = 2.
        assert!(pipe.points[0].1.abs() < 1e-9);
        for i in 0..pipe.points.len() {
            // For L/D = 2 pipelining never beats doubling the bus.
            assert!(pipe.points[i].1 <= bus.points[i].1 + 1e-9, "β index {i}");
            // Ranking: bus > write buffers > BNL1.
            assert!(bus.points[i].1 > wb.points[i].1, "β index {i}");
            assert!(wb.points[i].1 >= bnl1.points[i].1 - 1e-9, "β index {i}");
        }
    }

    #[test]
    fn figure4_pipelining_crosses_bus() {
        let curves = run(FIG4, &[2, 3, 4, 6, 8, 12], 15_000).unwrap();
        let pipe = by_name(&curves, "pipelined mem");
        let bus = by_name(&curves, "doubling bus");
        // Below the crossover (β = 3) the bus wins; at β = 6 pipelining
        // wins (crossover ≈ 4.67 for L/D = 8, q = 2).
        let idx = |b: f64| pipe.points.iter().position(|p| p.0 == b).unwrap();
        assert!(pipe.points[idx(3.0)].1 < bus.points[idx(3.0)].1);
        assert!(pipe.points[idx(6.0)].1 > bus.points[idx(6.0)].1);
        assert!(pipe.points[idx(12.0)].1 > bus.points[idx(12.0)].1);
    }

    #[test]
    fn figure5_bnl3_beats_bnl1_at_small_beta() {
        let b1 = run(FIG4, &[4], 20_000).unwrap();
        let b3 = run(FIG5, &[4], 20_000).unwrap();
        let bnl1 = by_name(&b1, "BNL1").points[0].1;
        let bnl3 = by_name(&b3, "BNL3").points[0].1;
        assert!(
            bnl3 >= bnl1,
            "BNL3 {bnl3} should trade at least as much as BNL1 {bnl1}"
        );
    }

    #[test]
    fn render_and_artifact_name_track_the_figure() {
        let curves = run(FIG3, &[2, 8], 5_000).unwrap();
        let text = render(FIG3, &curves);
        assert!(text.contains("Figure 3"));
        assert_eq!(artifact(FIG3, &curves).name, "fig3.csv");
        assert_eq!(artifact(FIG5, &curves).name, "fig5.csv");
    }

    #[test]
    fn registry_entries_cover_three_figures() {
        use crate::registry::Experiment as _;
        assert_eq!(EXP3.id(), "fig3");
        assert_eq!(EXP4.id(), "fig4");
        assert_eq!(EXP5.id(), "fig5");
        assert_eq!(
            EXP3.depends_on_traces(),
            &[crate::registry::traces::SPEC_L8]
        );
        assert_eq!(
            EXP5.depends_on_traces(),
            &[crate::registry::traces::SPEC_L32]
        );
    }
}
