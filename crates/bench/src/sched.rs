//! Cross-experiment scheduler.
//!
//! PR 1/2 made individual experiments parallel *inside* (the
//! [`crate::exec`] pool fans points over cores) and cheap to re-point
//! (the [`crate::tracestore`] memoises traces and timelines). This
//! module adds the layer above: whole experiments run concurrently over
//! a worker pool, subject to one ordering constraint — experiments that
//! declare the same shared trace-store working set
//! ([`Experiment::depends_on_traces`]) do not *extract* it
//! concurrently. The first holder of a key runs to completion (warming
//! the store); every later holder then hits the memoised entries. Keys
//! nobody shares impose no ordering at all.
//!
//! The suite document is assembled in registry order regardless of
//! completion order, so serial and `--jobs N` runs are byte-identical
//! (asserted by `tests/manifest.rs`).

use crate::registry::{self, Experiment, RunCtx};
use crate::tracestore::{self, StoreCounts};
use report::manifest::{self, Manifest};
use report::Artifact;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a suite run should execute.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Concurrent experiments; `0` or `1` means serial.
    pub jobs: usize,
    /// The per-experiment run context.
    pub ctx: RunCtx,
}

impl SuiteOptions {
    /// Serial execution at the standard context.
    pub fn serial() -> SuiteOptions {
        SuiteOptions {
            jobs: 1,
            ctx: RunCtx::standard(),
        }
    }
}

/// One experiment's result plus its observability record.
#[derive(Debug, Clone)]
pub struct ExpOutcome {
    /// Experiment id.
    pub id: &'static str,
    /// Section title.
    pub title: &'static str,
    /// Rendered terminal section.
    pub section: String,
    /// Typed artifacts the experiment produced.
    pub artifacts: Vec<Artifact>,
    /// Wall-clock time of the `run` call.
    pub wall: Duration,
    /// Trace-store activity during the run (exact when serial; under
    /// `--jobs N` concurrent experiments share the global counters, so
    /// per-experiment deltas are attributions, not isolates).
    pub store: StoreCounts,
}

/// A completed suite run, outcomes in registry order.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Per-experiment outcomes, in the order the selection was given.
    pub outcomes: Vec<ExpOutcome>,
    /// Wall-clock time of the whole suite.
    pub wall: Duration,
    /// Total trace-store activity across the suite.
    pub store: StoreCounts,
}

impl SuiteRun {
    /// The suite report: every section under its banner, byte-identical
    /// to the historical serial `run_all` output.
    pub fn document(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&format!(
                "================ {} ================\n{}\n",
                o.title, o.section
            ));
        }
        out
    }

    /// All artifacts produced by the suite, in outcome order.
    pub fn artifacts(&self) -> Vec<Artifact> {
        self.outcomes
            .iter()
            .flat_map(|o| o.artifacts.iter().cloned())
            .collect()
    }

    /// The observability footer: per-experiment wall clock and
    /// trace-store activity, plus suite totals. Printed to stderr by
    /// the drivers so stdout stays deterministic.
    pub fn footer(&self) -> String {
        let mut t = report::Table::new(["experiment", "wall", "traces h/m", "timelines h/m"]);
        for o in &self.outcomes {
            t.row([
                o.id.to_string(),
                format!("{:.3}s", o.wall.as_secs_f64()),
                format!("{}/{}", o.store.trace_hits, o.store.trace_misses),
                format!("{}/{}", o.store.timeline_hits, o.store.timeline_misses),
            ]);
        }
        format!(
            "suite: {} experiments in {:.3}s; trace store: {}\n{}",
            self.outcomes.len(),
            self.wall.as_secs_f64(),
            self.store.summary(),
            t.render()
        )
    }
}

fn run_one(exp: &dyn Experiment, ctx: &RunCtx) -> ExpOutcome {
    let before = tracestore::counters();
    let start = Instant::now();
    let report = exp.run(ctx);
    let wall = start.elapsed();
    ExpOutcome {
        id: exp.id(),
        title: exp.title(),
        section: report.section,
        artifacts: report.artifacts,
        wall,
        store: tracestore::counters().since(&before),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum KeyState {
    Warming,
    Warm,
}

struct SchedState {
    started: Vec<bool>,
    keys: HashMap<&'static str, KeyState>,
}

/// True when every shared trace key of `exp` is either warm or free to
/// be claimed (no other in-flight experiment is extracting it).
fn eligible(state: &SchedState, exp: &dyn Experiment) -> bool {
    exp.depends_on_traces()
        .iter()
        .all(|k| state.keys.get(k) != Some(&KeyState::Warming))
}

/// Runs `exps` and returns their outcomes in input order.
///
/// # Panics
///
/// Propagates a panic from any experiment.
pub fn run_suite(exps: &[&'static dyn Experiment], opts: &SuiteOptions) -> SuiteRun {
    let suite_before = tracestore::counters();
    let suite_start = Instant::now();
    let outcomes: Vec<ExpOutcome> = if opts.jobs <= 1 || exps.len() <= 1 {
        exps.iter().map(|e| run_one(*e, &opts.ctx)).collect()
    } else {
        run_parallel(exps, opts)
    };
    SuiteRun {
        outcomes,
        wall: suite_start.elapsed(),
        store: tracestore::counters().since(&suite_before),
    }
}

fn run_parallel(exps: &[&'static dyn Experiment], opts: &SuiteOptions) -> Vec<ExpOutcome> {
    let workers = opts.jobs.min(exps.len());
    let state = Mutex::new(SchedState {
        started: vec![false; exps.len()],
        keys: HashMap::new(),
    });
    let wake = Condvar::new();
    let slots: Mutex<Vec<Option<ExpOutcome>>> = Mutex::new((0..exps.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let state = &state;
                let wake = &wake;
                let slots = &slots;
                let ctx = &opts.ctx;
                scope.spawn(move || loop {
                    let claimed = {
                        let mut st = state.lock().expect("scheduler state poisoned");
                        loop {
                            if st.started.iter().all(|&s| s) {
                                break None;
                            }
                            let next =
                                (0..exps.len()).find(|&i| !st.started[i] && eligible(&st, exps[i]));
                            match next {
                                Some(i) => {
                                    st.started[i] = true;
                                    for key in exps[i].depends_on_traces() {
                                        st.keys.entry(key).or_insert(KeyState::Warming);
                                    }
                                    break Some(i);
                                }
                                // Everything unstarted is blocked on a
                                // warming key; a completion will wake us.
                                None => {
                                    st = wake.wait(st).expect("scheduler state poisoned");
                                }
                            }
                        }
                    };
                    let Some(i) = claimed else { break };
                    let outcome = run_one(exps[i], ctx);
                    slots.lock().expect("slots poisoned")[i] = Some(outcome);
                    let mut st = state.lock().expect("scheduler state poisoned");
                    for key in exps[i].depends_on_traces() {
                        st.keys.insert(key, KeyState::Warm);
                    }
                    drop(st);
                    wake.notify_all();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("scheduler worker panicked");
        }
    });

    slots
        .into_inner()
        .expect("slots poisoned")
        .into_iter()
        .map(|o| o.expect("every experiment ran exactly once"))
        .collect()
}

/// The outcome of a [`drive`] call.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// The run itself.
    pub run: SuiteRun,
    /// Manifest written alongside the artifacts (full-suite runs only).
    pub manifest: Option<Manifest>,
}

/// The driver shared by the `exp` / `run_all` binaries and the
/// `tradeoff experiments run` subcommand: select by filter, run with
/// `jobs`-way parallelism, write artifacts under `results_dir`.
///
/// A full-registry selection also writes `run_all_report.txt` (the
/// suite document) and `manifest.json` with per-artifact content
/// hashes; filtered selections write only their own artifacts, leaving
/// the committed manifest authoritative.
///
/// # Errors
///
/// Returns a message when the filter matches nothing or a write fails.
pub fn drive(
    filter: &str,
    opts: &SuiteOptions,
    results_dir: &Path,
) -> Result<DriveOutcome, String> {
    let selection = registry::matching(filter);
    if selection.is_empty() {
        return Err(format!("no experiment matches {filter:?} (try `list`)"));
    }
    let full = selection.len() == registry::all().len();
    let run = run_suite(&selection, opts);
    let mut artifacts = run.artifacts();
    let manifest = if full {
        artifacts.push(Artifact::text("run_all_report.txt", run.document()));
        Some(
            manifest::write_all(results_dir, &artifacts)
                .map_err(|e| format!("writing {}: {e}", results_dir.display()))?,
        )
    } else {
        for a in &artifacts {
            let path = results_dir.join(&a.name);
            report::write_artifact(&path, &a.render())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        None
    };
    Ok(DriveOutcome { run, manifest })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ExpReport;

    struct Fake {
        id: &'static str,
        deps: &'static [&'static str],
    }

    impl Experiment for Fake {
        fn id(&self) -> &'static str {
            self.id
        }
        fn title(&self) -> &'static str {
            self.id
        }
        fn tags(&self) -> &'static [&'static str] {
            &["fake"]
        }
        fn depends_on_traces(&self) -> &'static [&'static str] {
            self.deps
        }
        fn module(&self) -> &'static str {
            module_path!()
        }
        fn run(&self, _ctx: &RunCtx) -> ExpReport {
            // A tiny sleep widens the race window the warm-key
            // constraint must close.
            std::thread::sleep(Duration::from_millis(2));
            ExpReport::text_only(format!("section {}\n", self.id))
        }
    }

    static A: Fake = Fake {
        id: "a",
        deps: &["k"],
    };
    static B: Fake = Fake {
        id: "b",
        deps: &["k"],
    };
    static C: Fake = Fake { id: "c", deps: &[] };
    static D: Fake = Fake {
        id: "d",
        deps: &["k"],
    };

    fn fakes() -> Vec<&'static dyn Experiment> {
        vec![&A, &B, &C, &D]
    }

    #[test]
    fn parallel_outcomes_keep_input_order() {
        let opts = SuiteOptions {
            jobs: 4,
            ctx: RunCtx::with_instructions(100),
        };
        let run = run_suite(&fakes(), &opts);
        let ids: Vec<_> = run.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, ["a", "b", "c", "d"]);
        assert!(run
            .document()
            .contains("================ a ================"));
    }

    #[test]
    fn serial_and_parallel_documents_match() {
        let serial = run_suite(
            &fakes(),
            &SuiteOptions {
                jobs: 1,
                ctx: RunCtx::with_instructions(100),
            },
        );
        let parallel = run_suite(
            &fakes(),
            &SuiteOptions {
                jobs: 3,
                ctx: RunCtx::with_instructions(100),
            },
        );
        assert_eq!(serial.document(), parallel.document());
    }

    #[test]
    fn footer_lists_every_experiment() {
        let run = run_suite(
            &fakes(),
            &SuiteOptions {
                jobs: 1,
                ctx: RunCtx::with_instructions(100),
            },
        );
        let footer = run.footer();
        for id in ["a", "b", "c", "d"] {
            assert!(footer.contains(id), "footer missing {id}:\n{footer}");
        }
        assert!(footer.contains("trace store:"));
    }
}
