//! Cross-experiment scheduler with fault isolation.
//!
//! PR 1/2 made individual experiments parallel *inside* (the
//! [`crate::exec`] pool fans points over cores) and cheap to re-point
//! (the [`crate::tracestore`] memoises traces and timelines). This
//! module adds the layer above: whole experiments run concurrently over
//! a worker pool, subject to one ordering constraint — experiments that
//! declare the same shared trace-store working set
//! ([`Experiment::depends_on_traces`]) do not *extract* it
//! concurrently. The first holder of a key runs to completion (warming
//! the store); every later holder then hits the memoised entries. Keys
//! nobody shares impose no ordering at all.
//!
//! Every experiment executes *contained*: a panic is caught and becomes
//! a typed [`ExpFailure`] outcome instead of tearing down the pool, an
//! optional per-experiment watchdog (`REPRO_EXP_TIMEOUT` seconds, off
//! by default) turns hangs into `timed-out` outcomes, and transient
//! (injected or I/O) errors are retried under a bounded backoff policy.
//! A strict run stops scheduling at the first failure; `keep_going`
//! completes every runnable experiment and records per-experiment
//! statuses in the manifest. With no faults armed and no experiment
//! failing, output is byte-identical to an uncontained run.
//!
//! The suite document is assembled in registry order regardless of
//! completion order, so serial and `--jobs N` runs are byte-identical
//! (asserted by `tests/manifest.rs`, and under an armed fault plan by
//! `tests/faults.rs`).

use crate::error::{lock_recovering, Error, ExpFailure, FailureKind};
use crate::fault::{self, Site};
use crate::registry::{self, ExpReport, Experiment, RunCtx};
use crate::tracestore::{self, StoreCounts};
use report::manifest::{Manifest, StatusEntry, MANIFEST_NAME};
use report::Artifact;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable holding the per-experiment watchdog deadline in
/// (possibly fractional) seconds. Unset or non-positive disables it.
pub const ENV_TIMEOUT: &str = "REPRO_EXP_TIMEOUT";

/// Bounded retry-with-backoff for transient failures (injected I/O
/// faults, artifact write errors). Attempt `n`'s pause is `n × backoff`
/// — linear, bounded, and long enough for the transient cause (a busy
/// file, a mid-flight recovery) to clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Base pause between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    fn pause(&self, attempt: u32) {
        let d = self.backoff * attempt;
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// How a suite run should execute.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Concurrent experiments; `0` or `1` means serial.
    pub jobs: usize,
    /// The per-experiment run context.
    pub ctx: RunCtx,
    /// Complete all runnable experiments instead of stopping the suite
    /// at the first failure (`--keep-going`).
    pub keep_going: bool,
    /// Per-experiment watchdog deadline (default: [`ENV_TIMEOUT`]).
    pub timeout: Option<Duration>,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
}

impl SuiteOptions {
    /// `jobs`-way execution at context `ctx`, strict (not keep-going),
    /// watchdog from [`ENV_TIMEOUT`], default retry policy.
    pub fn new(jobs: usize, ctx: RunCtx) -> SuiteOptions {
        SuiteOptions {
            jobs,
            ctx,
            keep_going: false,
            timeout: timeout_from_env(),
            retry: RetryPolicy::default(),
        }
    }

    /// Serial execution at the standard context.
    pub fn serial() -> SuiteOptions {
        SuiteOptions::new(1, RunCtx::standard())
    }

    /// Sets keep-going mode (builder style).
    #[must_use]
    pub fn keep_going(mut self, yes: bool) -> SuiteOptions {
        self.keep_going = yes;
        self
    }

    /// Sets the watchdog deadline (builder style).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> SuiteOptions {
        self.timeout = timeout;
        self
    }
}

fn timeout_from_env() -> Option<Duration> {
    std::env::var(ENV_TIMEOUT)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&secs| secs > 0.0)
        .map(Duration::from_secs_f64)
}

/// A contained experiment's successful product.
#[derive(Debug, Clone)]
pub struct ExpOutput {
    /// Rendered terminal section.
    pub section: String,
    /// Typed artifacts the experiment produced.
    pub artifacts: Vec<Artifact>,
    /// Transient-failure retries spent before succeeding.
    pub retries: u32,
}

/// One experiment's result plus its observability record.
#[derive(Debug, Clone)]
pub struct ExpOutcome {
    /// Experiment id.
    pub id: &'static str,
    /// Section title.
    pub title: &'static str,
    /// The contained result: output, or a typed failure.
    pub result: Result<ExpOutput, ExpFailure>,
    /// Wall-clock time of the `run` call (including retries).
    pub wall: Duration,
    /// Trace-store activity during the run (exact when serial; under
    /// `--jobs N` concurrent experiments share the global counters, so
    /// per-experiment deltas are attributions, not isolates).
    pub store: StoreCounts,
}

impl ExpOutcome {
    /// The manifest status keyword: `ok`, `retried(n)`, `failed` or
    /// `timed-out`.
    pub fn status(&self) -> String {
        match &self.result {
            Ok(out) if out.retries == 0 => "ok".to_string(),
            Ok(out) => format!("retried({})", out.retries),
            Err(f) => f.status().to_string(),
        }
    }
}

/// A completed suite run, outcomes in registry order. A strict
/// (non-keep-going) run that hit a failure holds only the outcomes
/// attempted before it stopped.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Per-experiment outcomes, in the order the selection was given.
    pub outcomes: Vec<ExpOutcome>,
    /// Wall-clock time of the whole suite.
    pub wall: Duration,
    /// Total trace-store activity across the suite.
    pub store: StoreCounts,
}

impl SuiteRun {
    /// The suite report: every successful section under its banner,
    /// byte-identical to the historical serial `run_all` output when
    /// nothing failed; a degraded run appends a deterministic failure
    /// section (failed experiments excluded, in selection order).
    pub fn document(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            if let Ok(output) = &o.result {
                out.push_str(&format!(
                    "================ {} ================\n{}\n",
                    o.title, output.section
                ));
            }
        }
        if self.has_failures() {
            out.push_str("================ Suite failures ================\n");
            for o in self.failures() {
                let f = o.result.as_ref().expect_err("failures() yields failures");
                out.push_str(&format!("{}: {} — {f}\n", o.id, f.status()));
            }
            out.push('\n');
        }
        out
    }

    /// All artifacts produced by successful experiments, outcome order.
    pub fn artifacts(&self) -> Vec<Artifact> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .flat_map(|out| out.artifacts.iter().cloned())
            .collect()
    }

    /// Outcomes that ended in a typed failure, in selection order.
    pub fn failures(&self) -> impl Iterator<Item = &ExpOutcome> {
        self.outcomes.iter().filter(|o| o.result.is_err())
    }

    /// True when any experiment failed or timed out.
    pub fn has_failures(&self) -> bool {
        self.failures().next().is_some()
    }

    /// True when any experiment's status is not plain `ok` (failures
    /// *and* retried successes) — the trigger for recording statuses in
    /// the manifest.
    pub fn degraded(&self) -> bool {
        self.outcomes.iter().any(|o| o.status() != "ok")
    }

    /// Per-experiment manifest status entries, in outcome order.
    pub fn statuses(&self) -> Vec<StatusEntry> {
        self.outcomes
            .iter()
            .map(|o| StatusEntry {
                id: o.id.to_string(),
                status: o.status(),
            })
            .collect()
    }

    /// A deterministic multi-line failure summary for stderr (and exit
    /// messages): one line per failed experiment.
    pub fn failure_summary(&self) -> String {
        let mut out = format!(
            "suite: {} of {} attempted experiments failed\n",
            self.failures().count(),
            self.outcomes.len()
        );
        for o in self.failures() {
            let f = o.result.as_ref().expect_err("failures() yields failures");
            out.push_str(&format!("  {}: {} — {f}\n", o.id, f.status()));
        }
        out
    }

    /// The observability footer: per-experiment status, wall clock and
    /// trace-store activity, plus suite totals. Printed to stderr by
    /// the drivers so stdout stays deterministic.
    pub fn footer(&self) -> String {
        let mut t = report::Table::new([
            "experiment",
            "status",
            "wall",
            "traces h/m",
            "timelines h/m",
            "hists h/m",
        ]);
        for o in &self.outcomes {
            t.row([
                o.id.to_string(),
                o.status(),
                format!("{:.3}s", o.wall.as_secs_f64()),
                format!("{}/{}", o.store.trace_hits, o.store.trace_misses),
                format!("{}/{}", o.store.timeline_hits, o.store.timeline_misses),
                format!("{}/{}", o.store.hist_hits, o.store.hist_misses),
            ]);
        }
        let mut out = format!(
            "suite: {} experiments in {:.3}s; trace store: {}\n{}",
            self.outcomes.len(),
            self.wall.as_secs_f64(),
            self.store.summary(),
            t.render()
        );
        // Byte accounting of what is still materialised: per-entry
        // sizes plus the total the REPRO_TRACE_BUDGET cap acts on.
        let entries = tracestore::resident_entries();
        out.push_str(&format!(
            "trace store resident: {} bytes in {} traces",
            tracestore::bytes_resident(),
            entries.len()
        ));
        for (name, seed, bytes) in entries {
            out.push_str(&format!("\n  {name}@{seed:#x}: {bytes} bytes"));
        }
        // The process-wide store snapshot — the same accessor the query
        // server's /stats endpoint reports.
        out.push_str(&format!(
            "\nstore stats: {}\n",
            tracestore::stats().summary()
        ));
        out
    }
}

/// One attempt's failure, before the retry policy decides its fate.
enum AttemptError {
    /// Retryable: injected I/O fault or an I/O-like unwind.
    Transient(String),
    /// Fatal: the experiment (or an extraction it ran) panicked.
    Panicked(String),
    /// Fatal: the watchdog deadline passed.
    TimedOut(Duration),
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// One contained attempt on the current thread: marks the experiment
/// for fault targeting, fires the `run` injection site, and catches any
/// unwind — a [`fault::TransientUnwind`] (injected I/O raised inside an
/// infallible call chain) stays retryable, anything else is a panic.
fn attempt_contained(
    exp: &'static dyn Experiment,
    ctx: &RunCtx,
) -> Result<ExpReport, AttemptError> {
    let _scope = fault::enter(exp.id());
    catch_unwind(AssertUnwindSafe(|| {
        // Inside the containment boundary: a panic-kind fault at the
        // run site must be caught like any experiment panic, and an
        // I/O-kind one unwinds as a retryable TransientUnwind.
        fault::check_or_unwind(Site::Run);
        exp.run(ctx)
    }))
    .map_err(
        |payload| match payload.downcast_ref::<fault::TransientUnwind>() {
            Some(transient) => AttemptError::Transient(transient.0.clone()),
            None => AttemptError::Panicked(panic_text(payload.as_ref())),
        },
    )
}

/// One attempt, under the watchdog when a deadline is configured: the
/// experiment runs on a dedicated thread and the scheduler waits at
/// most `limit`; on expiry the runaway thread is abandoned (it parks no
/// pool worker and its late result is dropped with the channel).
fn attempt(exp: &'static dyn Experiment, opts: &SuiteOptions) -> Result<ExpReport, AttemptError> {
    let Some(limit) = opts.timeout else {
        return attempt_contained(exp, &opts.ctx);
    };
    let (tx, rx) = mpsc::channel();
    let ctx = opts.ctx.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("exp-{}", exp.id()))
        .spawn(move || {
            let _ = tx.send(attempt_contained(exp, &ctx));
        });
    if let Err(e) = spawned {
        return Err(AttemptError::Transient(format!(
            "could not spawn watchdogged worker: {e}"
        )));
    }
    rx.recv_timeout(limit)
        .unwrap_or(Err(AttemptError::TimedOut(limit)))
}

fn run_one(exp: &'static dyn Experiment, opts: &SuiteOptions) -> ExpOutcome {
    let before = tracestore::counters();
    let start = Instant::now();
    let mut retries = 0u32;
    let result = loop {
        match attempt(exp, opts) {
            Ok(report) => {
                break Ok(ExpOutput {
                    section: report.section,
                    artifacts: report.artifacts,
                    retries,
                })
            }
            Err(AttemptError::Transient(message)) => {
                if retries < opts.retry.max_retries {
                    retries += 1;
                    opts.retry.pause(retries);
                } else {
                    break Err(ExpFailure {
                        kind: FailureKind::Transient,
                        message,
                        retries,
                    });
                }
            }
            Err(AttemptError::Panicked(message)) => {
                break Err(ExpFailure {
                    kind: FailureKind::Panicked,
                    message,
                    retries,
                })
            }
            Err(AttemptError::TimedOut(limit)) => {
                break Err(ExpFailure {
                    kind: FailureKind::TimedOut { limit },
                    message: String::new(),
                    retries,
                })
            }
        }
    };
    ExpOutcome {
        id: exp.id(),
        title: exp.title(),
        result,
        wall: start.elapsed(),
        store: tracestore::counters().since(&before),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum KeyState {
    Warming,
    Warm,
}

struct SchedState {
    started: Vec<bool>,
    keys: HashMap<&'static str, KeyState>,
}

/// True when every shared trace key of `exp` is either warm or free to
/// be claimed (no other in-flight experiment is extracting it).
fn eligible(state: &SchedState, exp: &dyn Experiment) -> bool {
    exp.depends_on_traces()
        .iter()
        .all(|k| state.keys.get(k) != Some(&KeyState::Warming))
}

/// Runs `exps` contained and returns their outcomes in input order; a
/// strict (non-keep-going) run stops claiming new experiments after the
/// first failure, so its outcome list may be a prefix of the selection.
pub fn run_suite(exps: &[&'static dyn Experiment], opts: &SuiteOptions) -> SuiteRun {
    let suite_before = tracestore::counters();
    let suite_start = Instant::now();
    let outcomes: Vec<ExpOutcome> = if opts.jobs <= 1 || exps.len() <= 1 {
        let mut outcomes = Vec::with_capacity(exps.len());
        for e in exps {
            let outcome = run_one(*e, opts);
            let failed = outcome.result.is_err();
            outcomes.push(outcome);
            if failed && !opts.keep_going {
                break;
            }
        }
        outcomes
    } else {
        run_parallel(exps, opts)
    };
    SuiteRun {
        outcomes,
        wall: suite_start.elapsed(),
        store: tracestore::counters().since(&suite_before),
    }
}

fn run_parallel(exps: &[&'static dyn Experiment], opts: &SuiteOptions) -> Vec<ExpOutcome> {
    let workers = opts.jobs.min(exps.len());
    let state = Mutex::new(SchedState {
        started: vec![false; exps.len()],
        keys: HashMap::new(),
    });
    let wake = Condvar::new();
    let abort = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<ExpOutcome>>> = Mutex::new((0..exps.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let state = &state;
                let wake = &wake;
                let slots = &slots;
                let abort = &abort;
                scope.spawn(move || loop {
                    let claimed = {
                        let (mut st, _) = lock_recovering(state);
                        loop {
                            if abort.load(Ordering::SeqCst) || st.started.iter().all(|&s| s) {
                                break None;
                            }
                            let next =
                                (0..exps.len()).find(|&i| !st.started[i] && eligible(&st, exps[i]));
                            match next {
                                Some(i) => {
                                    st.started[i] = true;
                                    for key in exps[i].depends_on_traces() {
                                        st.keys.entry(key).or_insert(KeyState::Warming);
                                    }
                                    break Some(i);
                                }
                                // Everything unstarted is blocked on a
                                // warming key; a completion will wake us.
                                None => {
                                    st = match wake.wait(st) {
                                        Ok(guard) => guard,
                                        Err(poisoned) => {
                                            state.clear_poison();
                                            poisoned.into_inner()
                                        }
                                    };
                                }
                            }
                        }
                    };
                    let Some(i) = claimed else { break };
                    let outcome = run_one(exps[i], opts);
                    if outcome.result.is_err() && !opts.keep_going {
                        abort.store(true, Ordering::SeqCst);
                    }
                    lock_recovering(slots).0[i] = Some(outcome);
                    let (mut st, _) = lock_recovering(state);
                    // Even a failed holder marks its keys warm: a
                    // wedged key would deadlock every later sharer,
                    // and the store re-extracts on demand anyway.
                    for key in exps[i].depends_on_traces() {
                        st.keys.insert(key, KeyState::Warm);
                    }
                    drop(st);
                    wake.notify_all();
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                // Scheduler-code panics (never experiment panics —
                // those are contained) are real bugs: propagate.
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .flatten()
        .collect()
}

/// The outcome of a [`drive`] call.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// The run itself.
    pub run: SuiteRun,
    /// Manifest written alongside the artifacts (full-suite runs only).
    pub manifest: Option<Manifest>,
}

/// Writes one rendered payload with transient-failure retries, firing
/// the `write` injection site under `exp`'s identity.
fn write_with_retry(
    path: &Path,
    payload: &str,
    exp: &str,
    retry: &RetryPolicy,
) -> Result<(), Error> {
    let _scope = fault::enter(exp);
    let mut retries = 0u32;
    loop {
        let outcome =
            fault::check(Site::Write).and_then(|()| report::write_artifact(path, payload));
        match outcome {
            Ok(()) => return Ok(()),
            Err(_) if retries < retry.max_retries => {
                retries += 1;
                retry.pause(retries);
            }
            Err(source) => {
                return Err(Error::Write {
                    path: path.to_path_buf(),
                    source,
                })
            }
        }
    }
}

/// The driver shared by the `exp` / `run_all` binaries and the
/// `tradeoff experiments run` subcommand: select by filter, run with
/// `jobs`-way parallelism, write artifacts under `results_dir`.
///
/// A full-registry selection also writes `run_all_report.txt` (the
/// suite document) and `manifest.json` with per-artifact content
/// hashes — plus per-experiment statuses whenever the run degraded;
/// filtered selections write only their own artifacts, leaving the
/// committed manifest authoritative.
///
/// # Errors
///
/// [`Error::NoMatch`] when the filter matches nothing,
/// [`Error::Experiment`] when a strict run stopped at a failure, and
/// [`Error::Write`] when an artifact could not be written even after
/// retries. A keep-going run with failures returns `Ok` — callers
/// inspect [`SuiteRun::has_failures`] for the exit status.
pub fn drive(filter: &str, opts: &SuiteOptions, results_dir: &Path) -> Result<DriveOutcome, Error> {
    let selection = registry::matching_or_err(filter)?;
    let full = selection.len() == registry::all().len();
    let run = run_suite(&selection, opts);
    if !opts.keep_going {
        if let Some(o) = run.failures().next() {
            return Err(Error::Experiment {
                id: o.id.to_string(),
                failure: o.result.as_ref().expect_err("failure outcome").clone(),
            });
        }
    }
    for o in &run.outcomes {
        if let Ok(output) = &o.result {
            for a in &output.artifacts {
                write_with_retry(&results_dir.join(&a.name), &a.render(), o.id, &opts.retry)?;
            }
        }
    }
    let manifest = if full {
        let mut artifacts = run.artifacts();
        artifacts.push(Artifact::text("run_all_report.txt", run.document()));
        let statuses = if run.degraded() {
            run.statuses()
        } else {
            Vec::new()
        };
        let manifest = Manifest::from_artifacts(&artifacts).with_statuses(statuses);
        write_with_retry(
            &results_dir.join("run_all_report.txt"),
            &run.document(),
            "suite",
            &opts.retry,
        )?;
        write_with_retry(
            &results_dir.join(MANIFEST_NAME),
            &manifest.to_json(),
            "suite",
            &opts.retry,
        )?;
        Some(manifest)
    } else {
        None
    };
    Ok(DriveOutcome { run, manifest })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};

    struct Fake {
        id: &'static str,
        deps: &'static [&'static str],
    }

    impl Experiment for Fake {
        fn id(&self) -> &'static str {
            self.id
        }
        fn title(&self) -> &'static str {
            self.id
        }
        fn tags(&self) -> &'static [&'static str] {
            &["fake"]
        }
        fn depends_on_traces(&self) -> &'static [&'static str] {
            self.deps
        }
        fn module(&self) -> &'static str {
            module_path!()
        }
        fn run(&self, _ctx: &RunCtx) -> ExpReport {
            // A tiny sleep widens the race window the warm-key
            // constraint must close.
            std::thread::sleep(Duration::from_millis(2));
            fault::check_or_unwind(Site::Extract);
            ExpReport::text_only(format!("section {}\n", self.id))
        }
    }

    static A: Fake = Fake {
        id: "a",
        deps: &["k"],
    };
    static B: Fake = Fake {
        id: "b",
        deps: &["k"],
    };
    static C: Fake = Fake { id: "c", deps: &[] };
    static D: Fake = Fake {
        id: "d",
        deps: &["k"],
    };

    fn fakes() -> Vec<&'static dyn Experiment> {
        vec![&A, &B, &C, &D]
    }

    fn opts(jobs: usize) -> SuiteOptions {
        SuiteOptions {
            jobs,
            ctx: RunCtx::with_instructions(100),
            keep_going: false,
            timeout: None,
            retry: RetryPolicy {
                max_retries: 3,
                backoff: Duration::ZERO,
            },
        }
    }

    #[test]
    fn parallel_outcomes_keep_input_order() {
        // Empty plan: injects nothing, but holds the arm gate so a
        // concurrently running fault test cannot reach these fakes.
        let _armed = fault::arm(FaultPlan::new());
        let run = run_suite(&fakes(), &opts(4));
        let ids: Vec<_> = run.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, ["a", "b", "c", "d"]);
        assert!(run
            .document()
            .contains("================ a ================"));
        assert!(!run.has_failures());
        assert!(!run.degraded());
    }

    #[test]
    fn serial_and_parallel_documents_match() {
        let _armed = fault::arm(FaultPlan::new());
        let serial = run_suite(&fakes(), &opts(1));
        let parallel = run_suite(&fakes(), &opts(3));
        assert_eq!(serial.document(), parallel.document());
    }

    #[test]
    fn footer_lists_every_experiment() {
        let _armed = fault::arm(FaultPlan::new());
        let run = run_suite(&fakes(), &opts(1));
        let footer = run.footer();
        for id in ["a", "b", "c", "d"] {
            assert!(footer.contains(id), "footer missing {id}:\n{footer}");
        }
        assert!(footer.contains("trace store:"));
        assert!(footer.contains("ok"));
        assert!(
            footer.contains("trace store resident:") && footer.contains("bytes in"),
            "footer must report resident trace bytes:\n{footer}"
        );
        assert!(
            footer.contains("store stats:")
                && footer.contains("evictions")
                && footer.contains("coalesced waits")
                && footer.contains("poison recoveries"),
            "footer must include the full store stats line:\n{footer}"
        );
    }

    #[test]
    fn a_panicking_experiment_is_contained_not_fatal() {
        let _armed = fault::arm(FaultPlan::new().with(Site::Run, "b", FaultKind::Panic, 1));
        let run = run_suite(&fakes(), &opts(4).keep_going(true));
        assert_eq!(run.outcomes.len(), 4, "pool survived the panic");
        let statuses: Vec<String> = run.outcomes.iter().map(|o| o.status()).collect();
        assert_eq!(statuses, ["ok", "failed", "ok", "ok"]);
        let doc = run.document();
        assert!(!doc.contains("section b\n"), "failed section excluded");
        assert!(doc.contains("Suite failures"));
        assert!(doc.contains("b: failed — panicked: injected panic"));
    }

    #[test]
    fn strict_mode_stops_scheduling_after_a_failure() {
        let _armed = fault::arm(FaultPlan::new().with(Site::Run, "b", FaultKind::Panic, 1));
        let run = run_suite(&fakes(), &opts(1));
        assert_eq!(run.outcomes.len(), 2, "a ran, b failed, c/d never started");
        assert_eq!(run.outcomes[1].status(), "failed");
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let _armed = fault::arm(FaultPlan::new().with(Site::Run, "c", FaultKind::Io, 2));
        let run = run_suite(&fakes(), &opts(1));
        assert_eq!(run.outcomes[2].status(), "retried(2)");
        assert!(!run.has_failures());
        assert!(run.degraded(), "retried successes count as degraded");
        // The document is byte-identical to an unfaulted run: the
        // experiment *succeeded*.
        let clean = run_suite(&fakes(), &opts(1));
        assert_eq!(run.document(), clean.document());
    }

    #[test]
    fn exhausted_retries_become_a_transient_failure() {
        let _armed = fault::arm(FaultPlan::new().with(Site::Run, "c", FaultKind::Io, 99));
        let run = run_suite(&fakes(), &opts(1).keep_going(true));
        assert_eq!(run.outcomes[2].status(), "failed");
        let f = run.outcomes[2].result.as_ref().unwrap_err();
        assert_eq!(f.retries, 3);
        assert!(f.message.contains("injected i/o fault"));
    }

    #[test]
    fn transient_unwinds_from_inner_code_are_retryable() {
        // The Extract-site fault raised *inside* Fake::run unwinds as
        // TransientUnwind, which containment must classify as
        // retryable rather than a panic.
        let _armed = fault::arm(FaultPlan::new().with(Site::Extract, "d", FaultKind::Io, 1));
        let run = run_suite(&fakes(), &opts(1));
        assert_eq!(run.outcomes[3].status(), "retried(1)");
    }

    #[test]
    fn the_watchdog_times_a_hung_experiment_out() {
        let _armed = fault::arm(FaultPlan::new().with(
            Site::Run,
            "c",
            FaultKind::Delay(Duration::from_secs(60)),
            1,
        ));
        let run = run_suite(
            &fakes(),
            &SuiteOptions {
                timeout: Some(Duration::from_millis(100)),
                ..opts(2).keep_going(true)
            },
        );
        assert_eq!(run.outcomes[2].status(), "timed-out");
        assert_eq!(
            run.outcomes.iter().filter(|o| o.result.is_ok()).count(),
            3,
            "the hang cost one experiment, not the suite"
        );
        assert!(run.document().contains("c: timed-out"));
    }
}
