//! Shared experiment plumbing.

use simcache::CacheConfig;
use simcpu::{Cpu, CpuConfig, MissTimeline, SimResult, StallFeature, TimelineCpu};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::Spec92Program;
use std::path::PathBuf;

use crate::tracestore::{self, SPEC_SEED};

/// Where experiment CSVs land (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("REPRO_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()))
}

/// Instructions per SPEC92 proxy run. The paper used 50 M per program;
/// the proxies converge much faster, and the `REPRO_INSTRUCTIONS`
/// environment variable can raise this for high-fidelity runs.
pub fn instructions_per_run() -> usize {
    std::env::var("REPRO_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000)
}

/// The paper's Figure 1 cache: 8 KB, two-way, write-allocate.
///
/// # Panics
///
/// Panics only if the constant geometry were invalid (it is not).
pub fn figure1_cache(line_bytes: u64) -> CacheConfig {
    CacheConfig::new(8 * 1024, line_bytes, 2).expect("valid 8KB cache")
}

fn spec_config(stall: StallFeature, line_bytes: u64, bus_bytes: u64, beta_m: u64) -> CpuConfig {
    CpuConfig::baseline(
        figure1_cache(line_bytes),
        MemoryTiming::new(BusWidth::new(bus_bytes).expect("valid bus"), beta_m),
    )
    .with_stall(stall)
}

/// Runs one SPEC92 proxy point through the miss-event timeline engine:
/// the memoised trace is generated once, the cache is simulated once per
/// (program, line size), and each timing point is an `O(misses)` replay
/// bit-identical to the full simulation (`tests/timeline_oracle.rs`).
/// Falls back to [`run_spec_oracle`] for configurations the timeline
/// cannot replay exactly.
pub fn run_spec(
    program: Spec92Program,
    stall: StallFeature,
    line_bytes: u64,
    bus_bytes: u64,
    beta_m: u64,
    instructions: usize,
) -> SimResult {
    let cfg = spec_config(stall, line_bytes, bus_bytes, beta_m);
    let timeline = tracestore::spec_timeline(program, SPEC_SEED, instructions, &cfg.dcache);
    match TimelineCpu::new(&timeline, cfg) {
        Ok(replay) => replay.run(),
        Err(_) => run_spec_oracle(program, stall, line_bytes, bus_bytes, beta_m, instructions),
    }
}

/// Runs one SPEC92 proxy point through the full CPU simulation — the
/// oracle path [`run_spec`] is asserted against, kept public for the
/// `phi` criterion bench and any configuration the timeline rejects.
pub fn run_spec_oracle(
    program: Spec92Program,
    stall: StallFeature,
    line_bytes: u64,
    bus_bytes: u64,
    beta_m: u64,
    instructions: usize,
) -> SimResult {
    let cfg = spec_config(stall, line_bytes, bus_bytes, beta_m);
    let trace = tracestore::spec_trace(program, SPEC_SEED, instructions);
    Cpu::new(cfg).run(trace.iter().copied())
}

/// One (stall feature, β_m) point of a φ sweep.
pub type PhiPoint = (StallFeature, u64);

/// Measures SPEC92-average stalling factors for a whole batch of
/// (feature, β_m) points sharing one (line size, bus width): the six
/// timelines are extracted once and every `points × programs` replay
/// fans out over the [`crate::exec`] pool. This is the engine behind
/// Figure 1 / EXP-NB class sweeps — adding a point costs `O(misses)`,
/// not a fresh trace + cache + CPU simulation.
pub fn phi_matrix(
    points: &[PhiPoint],
    line_bytes: u64,
    bus_bytes: u64,
    instructions: usize,
) -> Vec<f64> {
    let cache = figure1_cache(line_bytes);
    // One cache pass per program (memoised across calls), in parallel.
    let timelines = crate::exec::parallel_map(&Spec92Program::ALL, |&p| {
        tracestore::spec_timeline(p, SPEC_SEED, instructions, &cache)
    });
    let jobs: Vec<(usize, Spec92Program, std::sync::Arc<MissTimeline>)> = points
        .iter()
        .enumerate()
        .flat_map(|(i, _)| {
            Spec92Program::ALL
                .iter()
                .zip(&timelines)
                .map(move |(&p, tl)| (i, p, std::sync::Arc::clone(tl)))
        })
        .collect();
    let phis = crate::exec::parallel_map(&jobs, |(i, program, timeline)| {
        let (stall, beta_m) = points[*i];
        let cfg = spec_config(stall, line_bytes, bus_bytes, beta_m);
        match TimelineCpu::new(timeline, cfg) {
            Ok(replay) => replay.run().phi(),
            Err(_) => {
                run_spec_oracle(*program, stall, line_bytes, bus_bytes, beta_m, instructions).phi()
            }
        }
    });
    let per_point = Spec92Program::ALL.len();
    phis.chunks(per_point)
        .map(|chunk| chunk.iter().sum::<f64>() / per_point as f64)
        .collect()
}

/// Measures the SPEC92-average stalling factor `φ` for a feature, the
/// quantity Figure 1 plots (as a percentage of `L/D`).
///
/// One point of [`phi_matrix`]; batch callers should use that directly.
pub fn average_phi(
    stall: StallFeature,
    line_bytes: u64,
    bus_bytes: u64,
    beta_m: u64,
    instructions: usize,
) -> f64 {
    phi_matrix(&[(stall, beta_m)], line_bytes, bus_bytes, instructions)[0]
}

/// Measures the SPEC92-average flush ratio `α` at the Figure 1 cache.
///
/// `α = writebacks / fills` is a property of the cache's event sequence
/// alone, so it reads straight off the memoised timelines — the timing
/// parameters only select which (identical) event stream would have been
/// simulated.
pub fn average_alpha(line_bytes: u64, _bus_bytes: u64, _beta_m: u64, instructions: usize) -> f64 {
    let cache = figure1_cache(line_bytes);
    let alphas = crate::exec::parallel_map(&Spec92Program::ALL, |&p| {
        let stats = *tracestore::spec_timeline(p, SPEC_SEED, instructions, &cache).stats();
        stats.flush_ratio()
    });
    alphas.iter().sum::<f64>() / alphas.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_produces_activity() {
        let r = run_spec(
            Spec92Program::Ear,
            StallFeature::FullStall,
            32,
            4,
            8,
            10_000,
        );
        assert_eq!(r.instructions, 10_000);
        assert!(r.dcache.fills > 0);
        assert!(r.cycles > r.instructions);
    }

    #[test]
    fn run_spec_is_bit_identical_to_the_oracle() {
        for stall in [
            StallFeature::BusLocked,
            StallFeature::NonBlocking { mshrs: 4 },
        ] {
            let fast = run_spec(Spec92Program::Doduc, stall, 32, 4, 15, 8_000);
            let slow = run_spec_oracle(Spec92Program::Doduc, stall, 32, 4, 15, 8_000);
            assert_eq!(fast, slow, "{stall}");
        }
    }

    #[test]
    fn average_phi_fs_equals_chunks() {
        let phi = average_phi(StallFeature::FullStall, 32, 4, 8, 5_000);
        assert!((phi - 8.0).abs() < 1e-9, "FS φ must be L/D: {phi}");
    }

    #[test]
    fn average_phi_ordering() {
        let bl = average_phi(StallFeature::BusLocked, 32, 4, 8, 20_000);
        let bnl3 = average_phi(StallFeature::BusNotLocked3, 32, 4, 8, 20_000);
        assert!(bl >= bnl3, "BL {bl} < BNL3 {bnl3}");
        assert!((1.0..=8.0).contains(&bl));
    }

    #[test]
    fn phi_matrix_matches_pointwise_average_phi() {
        let points = [
            (StallFeature::BusLocked, 8),
            (StallFeature::BusNotLocked3, 8),
            (StallFeature::BusLocked, 22),
        ];
        let batch = phi_matrix(&points, 32, 4, 10_000);
        for (point, batched) in points.iter().zip(&batch) {
            let single = average_phi(point.0, 32, 4, point.1, 10_000);
            assert_eq!(*batched, single, "{point:?}");
        }
    }

    #[test]
    fn average_alpha_is_a_fraction() {
        let a = average_alpha(32, 4, 8, 10_000);
        assert!((0.0..=1.0).contains(&a), "α = {a}");
    }

    #[test]
    fn average_alpha_matches_full_simulation() {
        let direct = run_spec_oracle(
            Spec92Program::Swm256,
            StallFeature::FullStall,
            32,
            4,
            8,
            10_000,
        )
        .alpha();
        let cache = figure1_cache(32);
        let timeline = tracestore::spec_timeline(Spec92Program::Swm256, SPEC_SEED, 10_000, &cache);
        assert_eq!(timeline.stats().flush_ratio(), direct);
    }
}
