//! Shared experiment plumbing.

use simcache::CacheConfig;
use simcpu::{Cpu, CpuConfig, SimResult, StallFeature};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};
use std::path::PathBuf;

/// Where experiment CSVs land (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("REPRO_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()))
}

/// Instructions per SPEC92 proxy run. The paper used 50 M per program;
/// the proxies converge much faster, and the `REPRO_INSTRUCTIONS`
/// environment variable can raise this for high-fidelity runs.
pub fn instructions_per_run() -> usize {
    std::env::var("REPRO_INSTRUCTIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(120_000)
}

/// The paper's Figure 1 cache: 8 KB, two-way, write-allocate.
///
/// # Panics
///
/// Panics only if the constant geometry were invalid (it is not).
pub fn figure1_cache(line_bytes: u64) -> CacheConfig {
    CacheConfig::new(8 * 1024, line_bytes, 2).expect("valid 8KB cache")
}

/// Runs one SPEC92 proxy through a full CPU simulation.
pub fn run_spec(
    program: Spec92Program,
    stall: StallFeature,
    line_bytes: u64,
    bus_bytes: u64,
    beta_m: u64,
    instructions: usize,
) -> SimResult {
    let cfg = CpuConfig::baseline(
        figure1_cache(line_bytes),
        MemoryTiming::new(BusWidth::new(bus_bytes).expect("valid bus"), beta_m),
    )
    .with_stall(stall);
    Cpu::new(cfg).run(spec92_trace(program, 0xDEAD_BEEF).take(instructions))
}

/// Measures the SPEC92-average stalling factor `φ` for a feature, the
/// quantity Figure 1 plots (as a percentage of `L/D`).
///
/// Runs the six programs on the [`crate::exec`] pool.
pub fn average_phi(
    stall: StallFeature,
    line_bytes: u64,
    bus_bytes: u64,
    beta_m: u64,
    instructions: usize,
) -> f64 {
    let phis = crate::exec::parallel_map(&Spec92Program::ALL, |&p| {
        run_spec(p, stall, line_bytes, bus_bytes, beta_m, instructions).phi()
    });
    phis.iter().sum::<f64>() / phis.len() as f64
}

/// Measures the SPEC92-average flush ratio `α` at the Figure 1 cache.
///
/// Runs the six programs on the [`crate::exec`] pool.
pub fn average_alpha(line_bytes: u64, bus_bytes: u64, beta_m: u64, instructions: usize) -> f64 {
    let alphas = crate::exec::parallel_map(&Spec92Program::ALL, |&p| {
        run_spec(p, StallFeature::FullStall, line_bytes, bus_bytes, beta_m, instructions).alpha()
    });
    alphas.iter().sum::<f64>() / alphas.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_produces_activity() {
        let r = run_spec(Spec92Program::Ear, StallFeature::FullStall, 32, 4, 8, 10_000);
        assert_eq!(r.instructions, 10_000);
        assert!(r.dcache.fills > 0);
        assert!(r.cycles > r.instructions);
    }

    #[test]
    fn average_phi_fs_equals_chunks() {
        let phi = average_phi(StallFeature::FullStall, 32, 4, 8, 5_000);
        assert!((phi - 8.0).abs() < 1e-9, "FS φ must be L/D: {phi}");
    }

    #[test]
    fn average_phi_ordering() {
        let bl = average_phi(StallFeature::BusLocked, 32, 4, 8, 20_000);
        let bnl3 = average_phi(StallFeature::BusNotLocked3, 32, 4, 8, 20_000);
        assert!(bl >= bnl3, "BL {bl} < BNL3 {bnl3}");
        assert!((1.0..=8.0).contains(&bl));
    }

    #[test]
    fn average_alpha_is_a_fraction() {
        let a = average_alpha(32, 4, 8, 10_000);
        assert!((0.0..=1.0).contains(&a), "α = {a}");
    }
}
