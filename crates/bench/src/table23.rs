//! EXP-T2 / EXP-T3 — Tables 2 and 3: stalling-factor bounds and the
//! per-feature miss-traffic ratios of the write-allocate model.

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use tradeoff::equiv::miss_traffic_ratio;
use tradeoff::stall::StallKind;
use tradeoff::{Machine, SystemConfig, TradeoffError};

/// Renders Table 2 (stalling features and φ bounds) for a given `L/D`.
pub fn table2(chunks: f64) -> String {
    let mut t = Table::new(["feature", "description", "stalling factor φ"]);
    for kind in StallKind::ALL {
        let (lo, hi) = kind.phi_bounds(chunks);
        let desc = match kind {
            StallKind::Fs => "full stalling",
            StallKind::Bl => "bus-locked",
            StallKind::Bnl1 => "bus-not-locked (line conflict → completion)",
            StallKind::Bnl2 => "bus-not-locked (chunk miss → completion)",
            StallKind::Bnl3 => "bus-not-locked (wait for chunk only)",
            StallKind::Nb => "non-blocking",
        };
        let range = if (lo - hi).abs() < f64::EPSILON {
            format!("φ = {lo}")
        } else {
            format!("{lo} ≤ φ ≤ {hi}")
        };
        t.row([kind.to_string(), desc.to_string(), range]);
    }
    t.render()
}

/// One row of Table 3: a feature and its miss-traffic ratio `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Feature name.
    pub feature: String,
    /// The closed-form expression (for the report).
    pub expression: String,
    /// `r` evaluated at the given machine.
    pub r: f64,
}

/// Computes Table 3's ratios at a concrete machine point (`α = α′`).
///
/// `phi_ps` is the partially-stalling feature's measured φ.
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn table3_rows(
    machine: &Machine,
    alpha: f64,
    phi_ps: f64,
    q: f64,
) -> Result<Vec<Table3Row>, TradeoffError> {
    let base = SystemConfig::full_stalling(alpha);
    let rows = vec![
        Table3Row {
            feature: "doubling bus".into(),
            expression: "((L/D)(1+α)β − 1) / ((L/2D)(1+α)β − 1)".into(),
            r: miss_traffic_ratio(machine, &base, &base.with_bus_factor(2.0))?,
        },
        Table3Row {
            feature: "partially stalling (BL, BNL)".into(),
            expression: "((L/D)(1+α)β − 1) / ((φ + (L/D)α)β − 1)".into(),
            r: miss_traffic_ratio(machine, &base, &base.with_partial_stall(phi_ps))?,
        },
        Table3Row {
            feature: "write buffers".into(),
            expression: "((L/D)(1+α)β − 1) / ((L/D)β − 1)".into(),
            r: miss_traffic_ratio(machine, &base, &base.with_write_buffers())?,
        },
        Table3Row {
            feature: "pipelined memory".into(),
            expression: "((L/D)(1+α)β − 1) / ((1+α)β_p − 1),  β_p = β + q(L/D − 1)".into(),
            r: miss_traffic_ratio(machine, &base, &base.with_pipelined_memory(q))?,
        },
    ];
    Ok(rows)
}

/// Renders Table 3 at the canonical point (L = 32, D = 4, β_m = 8,
/// α = 0.5, φ = 0.85·L/D, q = 2).
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn table3() -> Result<String, TradeoffError> {
    let machine = Machine::new(4.0, 32.0, 8.0)?;
    let rows = table3_rows(&machine, 0.5, 0.85 * 8.0, 2.0)?;
    let mut t = Table::new([
        "feature",
        "ratio of cache misses r",
        "r @ (L=32,D=4,β=8,α=.5)",
    ]);
    for row in &rows {
        t.row([
            row.feature.clone(),
            row.expression.clone(),
            format!("{:.3}", row.r),
        ]);
    }
    Ok(t.render())
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "table23"
    }
    fn title(&self) -> &'static str {
        "Tables 2 and 3"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["paper", "table", "analytic"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(format!(
            "Table 2 (L/D = 8):\n{}\nTable 3 (write allocate):\n{}",
            table2(8.0),
            table3().expect("canonical parameters valid")
        ))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_features() {
        let text = table2(8.0);
        for name in ["FS", "BL", "BNL1", "BNL2", "BNL3", "NB"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.contains("φ = 8"));
        assert!(text.contains("0 ≤ φ ≤ 8"));
    }

    #[test]
    fn table3_values_hand_checked() {
        let machine = Machine::new(4.0, 32.0, 8.0).unwrap();
        let rows = table3_rows(&machine, 0.5, 6.8, 2.0).unwrap();
        let by = |n: &str| rows.iter().find(|r| r.feature.starts_with(n)).unwrap().r;
        // bus: (96−1)/(48−1) = 95/47.
        assert!((by("doubling bus") - 95.0 / 47.0).abs() < 1e-12);
        // write buffers: 95/63.
        assert!((by("write buffers") - 95.0 / 63.0).abs() < 1e-12);
        // pipelined: β_p = 22, (96−1)/(33−1).
        assert!((by("pipelined") - 95.0 / 32.0).abs() < 1e-12);
        // partial: (95)/((6.8·8 + 4·8) − 1) = 95/(86.4 − 1).
        assert!((by("partially") - 95.0 / 85.4).abs() < 1e-12);
    }

    #[test]
    fn all_ratios_at_least_one() {
        let machine = Machine::new(4.0, 32.0, 8.0).unwrap();
        for row in table3_rows(&machine, 0.5, 7.0, 2.0).unwrap() {
            assert!(row.r >= 1.0, "{}: r = {}", row.feature, row.r);
        }
    }

    #[test]
    fn main_report_renders_both_tables() {
        let text = main_report();
        assert!(text.contains("Table 2"));
        assert!(text.contains("Table 3"));
        assert!(text.contains("β_p = β + q(L/D − 1)"));
    }
}
