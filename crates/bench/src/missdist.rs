//! EXP-X9 — inter-miss distance profiles: why Figure 1 looks the way it
//! does.
//!
//! Eq. 8 computes the BNL1 stalling factor from `ΔC`, the instruction
//! distance between a miss and the next access that collides with the
//! in-flight line. The stalling factors of Figure 1 are therefore a
//! direct function of each program's inter-miss distance distribution:
//! short distances (vectorizable sweeps missing once per line) keep the
//! partially-stalling features near full stalling; long distances
//! (irregular codes) let them recover the fill latency. This experiment
//! prints the measured distributions and correlates their medians with
//! the measured `φ(BL)`.

use crate::common::figure1_cache;
use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcpu::{Cpu, CpuConfig, SimResult, StallFeature};
use simmem::{BusWidth, MemoryTiming};
use simtrace::spec92::{spec92_trace, Spec92Program};

/// Per-program distance profile and stalling factor.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceProfile {
    /// Workload.
    pub program: Spec92Program,
    /// The power-of-two histogram (see `SimResult::miss_distance_hist`).
    pub hist: [u64; 20],
    /// Median inter-miss distance in instructions.
    pub median: Option<f64>,
    /// Measured φ under bus-locked stalling.
    pub phi_bl: f64,
}

fn simulate(program: Spec92Program, stall: StallFeature, beta: u64, n: usize) -> SimResult {
    let cfg = CpuConfig::baseline(
        figure1_cache(32),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
    )
    .with_stall(stall);
    Cpu::new(cfg).run(spec92_trace(program, 0x0D15).take(n))
}

/// Weighted mean of the histogram's bucket midpoints — a tie-free
/// summary for comparisons (the median is bucket-quantised).
pub fn mean_distance(hist: &[u64; 20]) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    hist.iter()
        .enumerate()
        .map(|(i, &c)| c as f64 * 1.5 * (1u64 << i) as f64)
        .sum::<f64>()
        / total as f64
}

/// Measures the profile for every proxy.
pub fn run(beta: u64, instructions: usize) -> Vec<DistanceProfile> {
    Spec92Program::ALL
        .iter()
        .map(|&program| {
            let fs = simulate(program, StallFeature::FullStall, beta, instructions);
            let bl = simulate(program, StallFeature::BusLocked, beta, instructions);
            DistanceProfile {
                program,
                hist: fs.miss_distance_hist,
                median: fs.median_miss_distance(),
                phi_bl: bl.phi(),
            }
        })
        .collect()
}

/// Renders the table plus a compact per-program sparkline.
pub fn render(rows: &[DistanceProfile]) -> String {
    let mut t = Table::new([
        "program",
        "distance histogram (1→512K instr)",
        "median ΔC",
        "φ(BL)",
    ]);
    for r in rows {
        let spark = report::chart::sparkline(&r.hist);
        t.row([
            r.program.to_string(),
            format!("[{spark}]"),
            r.median.map_or("—".to_string(), |m| format!("{m:.0}")),
            format!("{:.2}", r.phi_bl),
        ]);
    }
    format!(
        "Inter-miss distance profiles (8K 2-way, L=32, D=4, β=8):\n{}\
         Short distances → the fill is still in flight when the next access lands →\n\
         high φ; Figure 1's high BL/BNL1 percentages come from the left-heavy rows.\n",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "missdist"
    }
    fn title(&self) -> &'static str {
        "Miss-distance profiles"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(8, ctx.instructions)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_fills_minus_one() {
        let fs = simulate(Spec92Program::Ear, StallFeature::FullStall, 8, 20_000);
        let total: u64 = fs.miss_distance_hist.iter().sum();
        assert_eq!(total, fs.dcache.fills - 1);
    }

    #[test]
    fn streaming_programs_have_short_distances() {
        let rows = run(8, 30_000);
        let mean =
            |p: Spec92Program| mean_distance(&rows.iter().find(|r| r.program == p).unwrap().hist);
        // Stencil sweeps miss every line → shorter distances than the
        // loop-nest code.
        assert!(mean(Spec92Program::Swm256) < mean(Spec92Program::Ear));
    }

    #[test]
    fn short_distances_mean_high_phi() {
        // The extremes of the mean-distance ranking must order φ(BL)
        // correctly: the shortest-distance program stalls at least as
        // much as the longest-distance one.
        let rows = run(8, 30_000);
        let key = |r: &DistanceProfile| mean_distance(&r.hist);
        let shortest = rows
            .iter()
            .min_by(|a, b| key(a).total_cmp(&key(b)))
            .unwrap();
        let longest = rows
            .iter()
            .max_by(|a, b| key(a).total_cmp(&key(b)))
            .unwrap();
        assert!(
            shortest.phi_bl >= longest.phi_bl,
            "{}(ΔC={:.1}, φ={}) vs {}(ΔC={:.1}, φ={})",
            shortest.program,
            key(shortest),
            shortest.phi_bl,
            longest.program,
            key(longest),
            longest.phi_bl
        );
    }

    #[test]
    fn render_has_sparklines() {
        let text = render(&run(8, 10_000));
        assert!(text.contains('['));
        assert!(text.contains("φ(BL)"));
    }
}
