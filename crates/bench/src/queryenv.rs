//! The trace-store-backed [`Workloads`] provider behind the query API.
//!
//! `tradeoff::api::dispatch` is pure: every workload fold it needs
//! comes through a [`Workloads`] provider. This module supplies the
//! production implementation — lookups go through [`tracestore`], so a
//! long-running process (the `tradeoff-server` binary, or repeated CLI
//! queries inside one suite run) pays each trace generation, timeline
//! extraction and reuse-distance fold once, with concurrent same-key
//! requests coalesced onto a single extraction by the store's key
//! gates.
//!
//! Seed discipline: the API's [`GRID_SEED`] equals the sweep
//! experiments' [`SWEEP_SEED`] (asserted below), so grid queries and
//! suite runs share memo entries rather than folding parallel worlds.

use crate::{grid, registry, tracestore};
use simcache::{CacheConfig, Simulated};
use simcpu::MissTimeline;
use simtrace::{ReuseHistograms, WorkloadSpec};
use std::sync::Arc;
use tradeoff::api::{ExperimentInfo, GridSpec, Workloads};

/// The production query environment: every lookup is memoised in (and
/// coalesced by) the process-wide trace store, and the experiment
/// listing reflects the full registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreWorkloads;

impl Workloads for StoreWorkloads {
    fn histograms(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        len: usize,
        min_line: u64,
        max_line: u64,
        max_distance: usize,
        warmup: u64,
    ) -> Arc<ReuseHistograms> {
        tracestore::workload_histograms(spec, seed, len, min_line, max_line, max_distance, warmup)
    }

    fn simulated_grid(
        &self,
        workload: &WorkloadSpec,
        spec: &GridSpec,
        instructions: usize,
    ) -> Simulated {
        // `build_simulated` folds under SWEEP_SEED — the provider's
        // canonical grid seed (== GRID_SEED, pinned by the test below).
        grid::build_simulated(workload, spec, instructions)
    }

    fn timeline(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        len: usize,
        cache: &CacheConfig,
    ) -> Arc<MissTimeline> {
        tracestore::workload_timeline(spec, seed, len, cache)
    }

    fn experiments(&self) -> Vec<ExperimentInfo> {
        registry::all()
            .iter()
            .map(|e| ExperimentInfo {
                id: e.id().to_string(),
                title: e.title().to_string(),
                tags: e.tags().iter().map(|t| t.to_string()).collect(),
                traces: e
                    .depends_on_traces()
                    .iter()
                    .map(|t| t.to_string())
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SWEEP_SEED;
    use simtrace::spec92::Spec92Program;
    use simtrace::workload::builtin_spec;
    use tradeoff::api::{self, GRID_SEED, HIST_DISTANCE_CAP, HIST_LINE_RANGE};

    #[test]
    fn grid_seed_is_the_sweep_seed() {
        // Server grid queries must share memo entries with suite runs.
        assert_eq!(GRID_SEED, SWEEP_SEED);
    }

    #[test]
    fn analytic_grid_queries_share_the_suite_memo() {
        // An api-shaped histogram lookup and the grid experiment's own
        // build must resolve to the SAME memo entry: identical key,
        // shared allocation.
        let instructions = 5_000;
        let warmup = instructions as u64 / 5;
        let via_api = StoreWorkloads.histograms(
            builtin_spec(Spec92Program::Doduc),
            GRID_SEED,
            instructions,
            HIST_LINE_RANGE.0,
            HIST_LINE_RANGE.1,
            HIST_DISTANCE_CAP,
            warmup,
        );
        let via_suite = tracestore::spec_histograms(
            Spec92Program::Doduc,
            SWEEP_SEED,
            instructions,
            8,
            128,
            grid::HIST_DISTANCE_CAP,
            warmup,
        );
        assert!(
            Arc::ptr_eq(&via_api, &via_suite),
            "api and suite lookups must share one memo entry"
        );
    }

    #[test]
    fn experiments_listing_matches_the_registry() {
        let infos = StoreWorkloads.experiments();
        let reg = registry::all();
        assert_eq!(infos.len(), reg.len());
        for (info, exp) in infos.iter().zip(reg.iter()) {
            assert_eq!(info.id, exp.id());
            assert_eq!(info.title, exp.title());
        }
    }

    #[test]
    fn store_backed_dispatch_matches_uncached() {
        // The memoising provider must be answer-identical to the
        // reference Uncached provider (same folds, same seeds).
        let req = api::QueryRequest::Grid(api::GridQuery {
            backend: api::GridBackend::Analytic,
            instructions: 4_000,
            target: 0.5,
            max_sets: 16,
            max_assoc: 2,
            programs: vec!["wave5".to_string()],
            workloads: Vec::new(),
        });
        let stored = api::dispatch(&req, &StoreWorkloads).unwrap();
        let uncached = api::dispatch_uncached(&req).unwrap();
        assert_eq!(stored, uncached);
        assert_eq!(
            stored.to_json_string(),
            uncached.to_json_string(),
            "wire forms must match byte for byte"
        );
    }
}
