//! The unified experiment registry.
//!
//! Every table, figure and extension of the reproduction is one
//! [`Experiment`]: a typed entry with a stable id, the title the suite
//! report prints, filter tags, the trace-store working sets it touches,
//! and a `run` that returns a *structured* [`ExpReport`] — the rendered
//! terminal section plus typed artifacts (CSV rows, JSON metrics) —
//! instead of writing files as a side effect.
//!
//! [`all`] lists the registry in the canonical suite order (the order
//! the original `run_all` driver printed); [`crate::sched`] executes a
//! selection of it with cross-experiment parallelism. One generic `exp`
//! binary plus the `tradeoff experiments` CLI subcommand replace the
//! historical per-figure `exp_*` binaries.

use report::Artifact;
use std::path::Path;

/// Shared inputs for one experiment run.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Instruction budget per SPEC92 proxy run. Modules with heavier
    /// inner loops may clamp it (they document the clamp).
    pub instructions: usize,
}

impl RunCtx {
    /// The canonical context: `REPRO_INSTRUCTIONS` or the 120 000
    /// default, exactly what the committed `results/` artifacts use.
    pub fn standard() -> RunCtx {
        RunCtx {
            instructions: crate::common::instructions_per_run(),
        }
    }

    /// A context with an explicit instruction budget (tests, quick runs).
    pub fn with_instructions(instructions: usize) -> RunCtx {
        RunCtx { instructions }
    }
}

/// The structured outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// The rendered terminal section (byte-identical to the historical
    /// per-binary output).
    pub section: String,
    /// Typed artifacts destined for the results directory.
    pub artifacts: Vec<Artifact>,
}

impl ExpReport {
    /// A report with no artifacts.
    pub fn text_only(section: String) -> ExpReport {
        ExpReport {
            section,
            artifacts: Vec::new(),
        }
    }
}

/// One registered experiment.
pub trait Experiment: Sync {
    /// Stable identifier (`fig1`, `sweep`, …) used by the CLI and the
    /// generic `exp` binary.
    fn id(&self) -> &'static str;

    /// Section title, exactly as the suite report prints it.
    fn title(&self) -> &'static str;

    /// Filter tags (`paper`, `figure`, `extension`, `measured`, …).
    fn tags(&self) -> &'static [&'static str];

    /// Keys of the shared [`crate::tracestore`] working sets this
    /// experiment reads. The scheduler runs one holder of a key to
    /// completion before starting the others, so they hit the store
    /// warm instead of extracting the same traces concurrently.
    fn depends_on_traces(&self) -> &'static [&'static str] {
        &[]
    }

    /// The `bench` module implementing this experiment (for the
    /// registry-completeness audit); implementations return
    /// `module_path!()`.
    fn module(&self) -> &'static str;

    /// Runs the experiment, returning the rendered section and its
    /// typed artifacts. Must be deterministic for a given `ctx`.
    fn run(&self, ctx: &RunCtx) -> ExpReport;
}

/// Shared trace-store working-set keys (see
/// [`Experiment::depends_on_traces`]).
///
/// Each key names a working set of the six built-in proxy specs
/// ([`simtrace::workload::builtins`]) at one seed and geometry. The
/// store itself memoises on [`simtrace::workload::WorkloadSpec::id`] —
/// the content hash of the declarative spec — so these constants are
/// scheduling hints, not identities: experiments that share a key are
/// serialised so the first run populates the spec-keyed memos warm for
/// the rest.
pub mod traces {
    /// Timelines of the six builtin specs at the Figure-1 geometry
    /// (8 KB two-way, 32-byte lines, seed
    /// [`crate::tracestore::SPEC_SEED`]).
    pub const SPEC_L32: &str = "spec@l32";
    /// Timelines of the six builtin specs at the 8-byte-line variant of
    /// the Figure-1 cache.
    pub const SPEC_L8: &str = "spec@l8";
    /// Raw compiled traces of the six builtin specs at the sweep seed
    /// ([`crate::sweep::SWEEP_SEED`]), shared by the design-space sweep
    /// and the line-size experiment.
    pub const SWEEP7: &str = "sweep@7";
}

/// Every experiment, in the canonical suite (report) order.
pub fn all() -> Vec<&'static dyn Experiment> {
    vec![
        &crate::table23::Exp,
        &crate::fig1::Exp,
        &crate::fig2::Exp,
        &crate::unified::EXP3,
        &crate::unified::EXP4,
        &crate::unified::EXP5,
        &crate::fig6::Exp,
        &crate::example1::Exp,
        &crate::xover::Exp,
        &crate::linesize::Exp,
        &crate::validate::Exp,
        &crate::mi::Exp,
        &crate::prefetch::Exp,
        &crate::writemiss::Exp,
        &crate::alpha::Exp,
        &crate::l2::Exp,
        &crate::cost::Exp,
        &crate::missdist::Exp,
        &crate::phases::Exp,
        &crate::sector::Exp,
        &crate::victim::Exp,
        &crate::assoc::Exp,
        &crate::context::Exp,
        &crate::assumptions::Exp,
        &crate::nb::Exp,
        &crate::reuse::Exp,
        &crate::sweep::Exp,
        &crate::grid::Exp,
    ]
}

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    all().into_iter().find(|e| e.id() == id)
}

/// Experiments whose id or tag set matches `filter` (registry order).
/// An empty filter or `all` selects everything.
pub fn matching(filter: &str) -> Vec<&'static dyn Experiment> {
    if filter.is_empty() || filter == "all" {
        return all();
    }
    all()
        .into_iter()
        .filter(|e| e.id() == filter || e.tags().contains(&filter))
        .collect()
}

/// [`matching`], but an unknown filter is a typed [`crate::Error`]
/// instead of an empty selection — every consumer (the `exp` binary's
/// `list`/`run`, the `tradeoff experiments` CLI) treats a filter that
/// selects nothing as bad usage, not silent success.
///
/// # Errors
///
/// [`crate::Error::NoMatch`] when nothing matches.
pub fn matching_or_err(filter: &str) -> Result<Vec<&'static dyn Experiment>, crate::Error> {
    let selection = matching(filter);
    if selection.is_empty() {
        return Err(crate::Error::NoMatch {
            filter: filter.to_string(),
        });
    }
    Ok(selection)
}

/// Writes a report's artifacts under `dir`, warning (not failing) on
/// I/O errors — the historical behaviour of the per-figure binaries.
pub fn write_artifacts_warn(dir: &Path, artifacts: &[Artifact]) {
    for a in artifacts {
        let path = dir.join(&a.name);
        if let Err(e) = report::write_artifact(&path, &a.render()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Runs one experiment at the standard context, writes its artifacts to
/// the results directory, and returns the section — the behaviour every
/// module's legacy `main_report()` keeps exposing.
pub fn main_report(exp: &dyn Experiment) -> String {
    let report = exp.run(&RunCtx::standard());
    write_artifacts_warn(&crate::common::results_dir(), &report.artifacts);
    report.section
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_and_findable() {
        let mut seen = HashSet::new();
        for e in all() {
            assert!(seen.insert(e.id()), "duplicate id {}", e.id());
            assert!(find(e.id()).is_some(), "{} not findable", e.id());
        }
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn filters_select_by_id_and_tag() {
        assert_eq!(matching("fig1").len(), 1);
        assert_eq!(matching("all").len(), all().len());
        assert_eq!(matching("").len(), all().len());
        let figures = matching("figure");
        assert!(figures.len() >= 6, "fig1..fig6 carry the figure tag");
        assert!(figures.iter().all(|e| e.tags().contains(&"figure")));
    }

    #[test]
    fn unknown_filters_are_typed_errors() {
        assert_eq!(matching_or_err("fig1").unwrap().len(), 1);
        let err = matching_or_err("no-such-filter")
            .map(|m| m.len())
            .unwrap_err();
        assert!(err.to_string().contains("no experiment matches"));
    }

    #[test]
    fn trace_keys_use_known_constants() {
        let known = [traces::SPEC_L32, traces::SPEC_L8, traces::SWEEP7];
        for e in all() {
            for key in e.depends_on_traces() {
                assert!(known.contains(key), "{}: unknown trace key {key}", e.id());
            }
        }
    }
}
