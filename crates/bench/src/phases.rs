//! EXP-X10 — per-phase application of the methodology.
//!
//! Table 1 scopes an "application" to *a task, a subroutine, or a phase
//! of computation*. This experiment shows why that scoping matters: a
//! program alternating a strided sweep, a Zipf gather and a hot loop has
//! wildly different `{HR, α, φ}` per phase, and the Eq. 2 prediction
//! built from *per-phase* profiles is exact while one built from the
//! aggregate profile smears the phases together (it still totals
//! correctly — the model is linear — but misattributes where time goes).

use crate::registry::{ExpReport, Experiment, RunCtx};
use report::Table;
use simcache::CacheConfig;
use simcpu::{CpuConfig, MissTimeline, SimResult, StallFeature, TimelineCpu};
use simmem::{BusWidth, MemoryTiming};
use simtrace::gen::{StridedSweep, TraceShape, WorkingSet, ZipfWorkingSet};
use simtrace::phases::{Phase, PhasedPattern};
use simtrace::Instr;
use std::sync::{Arc, OnceLock};

/// References per phase in the experiment's program.
pub const PHASE_REFS: u64 = 6_000;

/// Builds the three-phase program: sweep → gather → hot loop.
pub fn phased_trace(seed: u64) -> impl Iterator<Item = Instr> {
    PhasedPattern::new(vec![
        Phase::new(
            "sweep",
            StridedSweep::new(0x100_0000, 1 << 20, 8, 8, 3),
            PHASE_REFS,
        ),
        Phase::new(
            "gather",
            ZipfWorkingSet::new(0x200_0000, 64 * 1024, 8, 1.1, 0.2),
            PHASE_REFS,
        ),
        Phase::new(
            "hot loop",
            WorkingSet::new(0x30_0000, 4 * 1024, 0.4, 8),
            PHASE_REFS,
        ),
    ])
    .into_trace(
        TraceShape {
            mem_fraction: 0.33,
            branch_fraction: 0.02,
            code_bytes: 32 * 1024,
        },
        seed,
    )
}

/// One measured window (≈ one phase occupancy).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseWindow {
    /// Phase label.
    pub name: &'static str,
    /// Hit ratio within the window.
    pub hit_ratio: f64,
    /// Flush ratio within the window.
    pub alpha: f64,
    /// Stalling factor within the window.
    pub phi: f64,
    /// Cycles the window took.
    pub cycles: u64,
}

fn delta(name: &'static str, before: &SimResult, after: &SimResult) -> PhaseWindow {
    let hits = after.dcache.hits() - before.dcache.hits();
    let accesses = after.dcache.accesses() - before.dcache.accesses();
    let fills = after.dcache.fills - before.dcache.fills;
    let wbs = after.dcache.writebacks - before.dcache.writebacks;
    let miss_stall = after.miss_stall_cycles - before.miss_stall_cycles;
    PhaseWindow {
        name,
        hit_ratio: if accesses == 0 {
            0.0
        } else {
            hits as f64 / accesses as f64
        },
        alpha: if fills == 0 {
            0.0
        } else {
            wbs as f64 / fills as f64
        },
        phi: if fills == 0 {
            0.0
        } else {
            miss_stall as f64 / (fills as f64 * after.beta_m as f64)
        },
        cycles: after.cycles - before.cycles,
    }
}

fn phase_cache() -> CacheConfig {
    CacheConfig::new(8 * 1024, 32, 2).expect("valid cache")
}

fn phase_config(beta: u64) -> CpuConfig {
    CpuConfig::baseline(
        phase_cache(),
        MemoryTiming::new(BusWidth::new(4).expect("valid bus"), beta),
    )
    .with_stall(StallFeature::BusLocked)
}

/// The experiment's trace — one warm-up cycle plus the three measured
/// phases — cut right after its `6 · PHASE_REFS`-th data reference,
/// exactly where the measurement stops.
fn experiment_trace() -> Vec<Instr> {
    let mut trace = Vec::new();
    let mut refs = 0;
    for instr in phased_trace(0x9A5E) {
        trace.push(instr);
        if instr.mem.is_some() {
            refs += 1;
            if refs == 6 * PHASE_REFS {
                break;
            }
        }
    }
    trace
}

/// The trace's [`MissTimeline`], extracted once: the cache's event
/// sequence is shared by every β this experiment replays.
fn phase_timeline() -> Arc<MissTimeline> {
    static TIMELINE: OnceLock<Arc<MissTimeline>> = OnceLock::new();
    Arc::clone(
        TIMELINE.get_or_init(|| Arc::new(MissTimeline::extract(phase_cache(), experiment_trace()))),
    )
}

/// Runs one full phase cycle under BL stalling and measures per-phase
/// windows. The trace interleaves non-memory instructions, so windows
/// are delimited by *reference* counts: the timeline replay snapshots
/// the accumulated result at each phase boundary, bit-identical to
/// stepping the full simulator to the same reference counts (asserted
/// by `run_matches_full_simulation` below). Warm-up is one full phase
/// cycle (the first three marks fall inside it).
pub fn run(beta: u64) -> Vec<PhaseWindow> {
    let timeline = phase_timeline();
    let replay = TimelineCpu::new(&timeline, phase_config(beta)).expect("phase replay supported");
    let marks: Vec<u64> = (3..=6).map(|k| k * PHASE_REFS).collect();
    let (snaps, _) = replay.run_with_marks(&marks);
    ["sweep", "gather", "hot loop"]
        .into_iter()
        .zip(snaps.windows(2))
        .map(|(name, pair)| delta(name, &pair[0], &pair[1]))
        .collect()
}

/// Renders the per-phase table.
pub fn render(windows: &[PhaseWindow]) -> String {
    let mut t = Table::new(["phase", "HR", "α", "φ(BL)", "cycles"]);
    for w in windows {
        t.row([
            w.name.to_string(),
            format!("{:.2}%", 100.0 * w.hit_ratio),
            format!("{:.2}", w.alpha),
            format!("{:.2}", w.phi),
            w.cycles.to_string(),
        ]);
    }
    format!(
        "Per-phase profiles of a three-phase program (8K 2-way, L=32, D=4, BL):\n{}\
         Table 1 scopes the methodology to phases precisely because these rows differ:\n\
         one aggregate {{HR, α, φ}} would misprice every feature within each phase.\n",
        t.render()
    )
}

/// Registry entry for this experiment.
pub struct Exp;

impl Experiment for Exp {
    fn id(&self) -> &'static str {
        "phases"
    }
    fn title(&self) -> &'static str {
        "Per-phase profiles"
    }
    fn tags(&self) -> &'static [&'static str] {
        &["extension", "measured"]
    }
    fn module(&self) -> &'static str {
        module_path!()
    }
    fn run(&self, _ctx: &RunCtx) -> ExpReport {
        ExpReport::text_only(render(&run(8)))
    }
}

/// Entry point shared by the binary and the suite driver (runs at
/// the standard context and writes artifacts to the results dir).
pub fn main_report() -> String {
    crate::registry::main_report(&Exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by<'a>(ws: &'a [PhaseWindow], n: &str) -> &'a PhaseWindow {
        ws.iter().find(|w| w.name == n).unwrap()
    }

    #[test]
    fn phases_have_distinct_profiles() {
        let ws = run(8);
        assert_eq!(ws.len(), 3);
        // The hot loop hits almost always (its only misses are the
        // re-warm after the other phases evicted it); the sweep misses
        // once per line.
        assert!(by(&ws, "hot loop").hit_ratio > 0.95, "{ws:?}");
        assert!(by(&ws, "sweep").hit_ratio < 0.85, "{ws:?}");
        assert!(
            by(&ws, "gather").hit_ratio < by(&ws, "hot loop").hit_ratio,
            "{ws:?}"
        );
        // Every per-phase φ respects the BL band.
        for w in &ws {
            assert!((1.0..=8.0 + 1e-9).contains(&w.phi), "{ws:?}");
        }
    }

    #[test]
    fn sweep_phase_dominates_execution_time() {
        let ws = run(8);
        assert!(
            by(&ws, "sweep").cycles > by(&ws, "hot loop").cycles * 2,
            "{ws:?}"
        );
    }

    #[test]
    fn per_phase_alpha_varies() {
        let ws = run(8);
        let alphas: Vec<f64> = ws.iter().map(|w| w.alpha).collect();
        let spread = alphas.iter().cloned().fold(f64::MIN, f64::max)
            - alphas.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.1, "phases should differ in α: {alphas:?}");
    }

    #[test]
    fn run_matches_full_simulation() {
        // Oracle: the pre-timeline implementation — step the full
        // simulator through warm-up and the three windows, snapshotting
        // at the same reference boundaries.
        for beta in [8, 22] {
            let mut cpu = simcpu::Cpu::new(phase_config(beta));
            let mut trace = phased_trace(0x9A5E).into_iter();
            let mut refs = 0;
            for instr in trace.by_ref() {
                cpu.step(&instr);
                if instr.mem.is_some() {
                    refs += 1;
                    if refs == 3 * PHASE_REFS {
                        break;
                    }
                }
            }
            let mut oracle = Vec::new();
            for name in ["sweep", "gather", "hot loop"] {
                let before = cpu.snapshot();
                let mut refs = 0;
                for instr in trace.by_ref() {
                    cpu.step(&instr);
                    if instr.mem.is_some() {
                        refs += 1;
                        if refs == PHASE_REFS {
                            break;
                        }
                    }
                }
                oracle.push(delta(name, &before, &cpu.snapshot()));
            }
            assert_eq!(run(beta), oracle, "β = {beta}");
        }
    }

    #[test]
    fn render_lists_phases() {
        let text = main_report();
        assert!(text.contains("sweep") && text.contains("gather") && text.contains("hot loop"));
    }
}
