//! Request-coalescing contract of the trace store.
//!
//! This binary holds exactly one test so the process-wide store
//! counters see no traffic but its own: N concurrent lookups of one
//! cold key must pay exactly one extraction (the key gate), with every
//! other lookup served as a memo hit after blocking — never a
//! duplicated pass.

use bench::tracestore::{self, spec_histograms, spec_timeline};
use simcache::CacheConfig;
use simtrace::spec92::Spec92Program;
use std::sync::{Arc, Barrier};

const THREADS: usize = 8;

#[test]
fn concurrent_same_key_lookups_extract_once() {
    let cache = CacheConfig::new(8 * 1024, 32, 2).expect("valid cache");
    let seed = 0xC0A1_E5CE; // unique to this binary: counters are all ours

    // Timelines: N threads race one cold key.
    let before = tracestore::stats();
    let barrier = Arc::new(Barrier::new(THREADS));
    let timelines: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    spec_timeline(Spec92Program::Ear, seed, 200_000, &cache)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let delta = tracestore::stats().counts.since(&before.counts);
    assert_eq!(
        delta.timeline_misses, 1,
        "one cold key must cost exactly one extraction"
    );
    assert_eq!(
        delta.timeline_hits,
        (THREADS - 1) as u64,
        "every other lookup must be served from the memo"
    );
    for tl in &timelines[1..] {
        assert!(
            Arc::ptr_eq(&timelines[0], tl),
            "all callers share one allocation"
        );
    }

    // Histograms: same discipline on the reuse-distance fold path.
    let before = tracestore::stats();
    let barrier = Arc::new(Barrier::new(THREADS));
    let hists: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    spec_histograms(Spec92Program::Ear, seed, 200_000, 8, 128, 1 << 14, 40_000)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let after = tracestore::stats();
    let delta = after.counts.since(&before.counts);
    assert_eq!(delta.hist_misses, 1, "one fold for N concurrent requests");
    assert_eq!(delta.hist_hits, (THREADS - 1) as u64);
    for h in &hists[1..] {
        assert!(Arc::ptr_eq(&hists[0], h));
    }

    // Waits are timing-dependent (a late arrival can re-probe without
    // ever blocking), but the counter must stay within the racers.
    assert!(
        after.coalesced_waits <= 2 * (THREADS - 1) as u64,
        "at most N-1 waiters per cold key, got {}",
        after.coalesced_waits
    );
}
