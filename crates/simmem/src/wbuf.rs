//! Read-bypassing write buffers.
//!
//! Posting a dirty-line flush (or a write-around store) into a write
//! buffer removes it from the processor's critical path; the buffer drains
//! into memory whenever the memory port is otherwise idle. A *read
//! bypassing* buffer additionally lets a demand read overtake queued
//! writes. The paper treats the write buffers as hiding the flush term
//! `α(R/D)β_m` of Eq. 2 completely in the best case ("it is much easier to
//! hide the cache flush cycles successfully", Section 5.3); the
//! [`BypassMode`] selects between that ideal and a chunk-granular model in
//! which a read still waits for the bus chunk currently in flight.
//!
//! The drain model is *fluid*: between processor events the buffer drains
//! one service cycle per idle memory cycle, and demand fills freeze the
//! drain while they occupy the memory port ([`WriteBuffer::occupy`]).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How aggressively reads overtake buffered writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BypassMode {
    /// Reads never wait on buffered writes (the paper's best case).
    #[default]
    Ideal,
    /// Reads wait for the `D`-byte chunk currently on the bus to finish.
    ChunkGranular,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    total: u64,
    remaining: u64,
}

/// Statistics of one write buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteBufferStats {
    /// Entries posted.
    pub enqueued: u64,
    /// Cycles the processor stalled because the buffer was full.
    pub full_stall_cycles: u64,
    /// Cycles reads were delayed by in-flight write chunks.
    pub bypass_delay_cycles: u64,
}

/// A FIFO write buffer with read bypass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WriteBuffer {
    capacity: usize,
    chunk_cycles: u64,
    mode: BypassMode,
    entries: VecDeque<Entry>,
    last_update: u64,
    stats: WriteBufferStats,
}

impl WriteBuffer {
    /// Creates a buffer holding up to `capacity` posted writes.
    ///
    /// `chunk_cycles` is the bus occupancy of one `D`-byte transfer
    /// (`β_m`), used by [`BypassMode::ChunkGranular`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `chunk_cycles` is zero.
    pub fn new(capacity: usize, chunk_cycles: u64, mode: BypassMode) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        assert!(chunk_cycles > 0, "chunk service time must be positive");
        WriteBuffer {
            capacity,
            chunk_cycles,
            mode,
            entries: VecDeque::new(),
            last_update: 0,
            stats: WriteBufferStats::default(),
        }
    }

    /// Buffer statistics so far.
    pub fn stats(&self) -> &WriteBufferStats {
        &self.stats
    }

    /// Entries currently queued.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the buffer for the idle time elapsed up to `now`.
    ///
    /// Time never goes backwards; calls with an older `now` are no-ops.
    pub fn advance(&mut self, now: u64) {
        if now <= self.last_update {
            return;
        }
        let mut budget = now - self.last_update;
        self.last_update = now;
        while budget > 0 {
            match self.entries.front_mut() {
                None => return,
                Some(head) if head.remaining > budget => {
                    head.remaining -= budget;
                    return;
                }
                Some(head) => {
                    budget -= head.remaining;
                    self.entries.pop_front();
                }
            }
        }
    }

    /// Marks the memory port busy with a demand access (a fill) from `now`
    /// for `duration` cycles; the buffer does not drain during that time.
    pub fn occupy(&mut self, now: u64, duration: u64) {
        self.advance(now);
        self.last_update = self.last_update.max(now + duration);
    }

    /// Posts a write needing `service_cycles` of memory time at cycle
    /// `now`. Returns the cycles the *processor* stalls: zero unless the
    /// buffer is full, in which case the processor waits for the head
    /// entry to retire.
    pub fn enqueue(&mut self, now: u64, service_cycles: u64) -> u64 {
        self.advance(now);
        self.stats.enqueued += 1;
        let mut stall = 0;
        if self.entries.len() == self.capacity {
            let head = self.entries.front().expect("full buffer has a head");
            stall = head.remaining;
            self.advance(now + stall);
        }
        self.entries.push_back(Entry {
            total: service_cycles,
            remaining: service_cycles,
        });
        self.stats.full_stall_cycles += stall;
        stall
    }

    /// Returns how long a demand read arriving at `now` must wait before
    /// it can use the memory port.
    pub fn read_delay(&mut self, now: u64) -> u64 {
        self.advance(now);
        let delay = match self.mode {
            BypassMode::Ideal => 0,
            BypassMode::ChunkGranular => match self.entries.front() {
                None => 0,
                Some(head) => {
                    let progress = head.total - head.remaining;
                    let into_chunk = progress % self.chunk_cycles;
                    if into_chunk == 0 && progress == 0 {
                        // Head has not started a chunk yet; read goes first.
                        0
                    } else {
                        (self.chunk_cycles - into_chunk) % self.chunk_cycles
                    }
                }
            },
        };
        self.stats.bypass_delay_cycles += delay;
        delay
    }

    /// Cycles of queued write work remaining (for draining at the end of
    /// a simulation).
    pub fn backlog_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_with_idle_time() {
        let mut wb = WriteBuffer::new(4, 10, BypassMode::Ideal);
        assert_eq!(wb.enqueue(0, 30), 0);
        assert_eq!(wb.occupancy(), 1);
        wb.advance(29);
        assert_eq!(wb.occupancy(), 1);
        wb.advance(30);
        assert_eq!(wb.occupancy(), 0);
    }

    #[test]
    fn full_buffer_stalls_for_head() {
        let mut wb = WriteBuffer::new(2, 10, BypassMode::Ideal);
        wb.enqueue(0, 20);
        wb.enqueue(0, 20);
        // Buffer full; the head still needs all 20 cycles.
        let stall = wb.enqueue(0, 20);
        assert_eq!(stall, 20);
        assert_eq!(wb.occupancy(), 2);
        assert_eq!(wb.stats().full_stall_cycles, 20);
    }

    #[test]
    fn partial_drain_reduces_full_stall() {
        let mut wb = WriteBuffer::new(1, 10, BypassMode::Ideal);
        wb.enqueue(0, 20);
        // 15 idle cycles drain 15 of the head's 20.
        let stall = wb.enqueue(15, 20);
        assert_eq!(stall, 5);
    }

    #[test]
    fn ideal_reads_never_wait() {
        let mut wb = WriteBuffer::new(4, 10, BypassMode::Ideal);
        wb.enqueue(0, 40);
        assert_eq!(wb.read_delay(1), 0);
        assert_eq!(wb.stats().bypass_delay_cycles, 0);
    }

    #[test]
    fn chunk_granular_read_waits_for_chunk_boundary() {
        let mut wb = WriteBuffer::new(4, 10, BypassMode::ChunkGranular);
        wb.enqueue(0, 40);
        // At cycle 3 the head is 3 cycles into its first 10-cycle chunk.
        assert_eq!(wb.read_delay(3), 7);
        // Exactly on a chunk boundary: no wait.
        let mut wb2 = WriteBuffer::new(4, 10, BypassMode::ChunkGranular);
        wb2.enqueue(0, 40);
        assert_eq!(wb2.read_delay(10), 0);
    }

    #[test]
    fn chunk_granular_empty_buffer_no_wait() {
        let mut wb = WriteBuffer::new(4, 10, BypassMode::ChunkGranular);
        assert_eq!(wb.read_delay(5), 0);
    }

    #[test]
    fn occupy_freezes_drain() {
        let mut wb = WriteBuffer::new(4, 10, BypassMode::Ideal);
        wb.enqueue(0, 30);
        // Memory busy with a fill from cycle 0 to 100: nothing drains.
        wb.occupy(0, 100);
        wb.advance(100);
        assert_eq!(wb.backlog_cycles(), 30);
        wb.advance(130);
        assert_eq!(wb.backlog_cycles(), 0);
    }

    #[test]
    fn time_does_not_go_backwards() {
        let mut wb = WriteBuffer::new(4, 10, BypassMode::Ideal);
        wb.enqueue(0, 30);
        wb.advance(20);
        wb.advance(5); // stale timestamp: ignored
        assert_eq!(wb.backlog_cycles(), 10);
    }

    #[test]
    fn backlog_sums_entries() {
        let mut wb = WriteBuffer::new(4, 10, BypassMode::Ideal);
        wb.enqueue(0, 30);
        wb.enqueue(0, 25);
        assert_eq!(wb.backlog_cycles(), 55);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        WriteBuffer::new(0, 10, BypassMode::Ideal);
    }
}
