//! Line-fill schedules: who arrives when during a miss.
//!
//! A fill delivers the line's `L/D` bus chunks starting with the chunk the
//! missing access asked for (critical word first), then wrapping around
//! the line. The schedule answers the questions the stalling features ask:
//!
//! * BL / BNL1: *when is the whole line in?* ([`FillSchedule::complete_at`])
//! * BNL2 / BNL3: *when does the chunk holding address X arrive?*
//!   ([`FillSchedule::chunk_available_at`])

use crate::timing::MemoryTiming;
use serde::{Deserialize, Serialize};
use simtrace::{Addr, LineAddr};

/// The delivery schedule of one in-flight line fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FillSchedule {
    line: LineAddr,
    line_bytes: u64,
    chunk_bytes: u64,
    start: u64,
    critical_chunk: u64,
    beta_m: u64,
    q: Option<u64>,
}

impl FillSchedule {
    /// Starts a fill at absolute cycle `start` for the line containing
    /// `miss_addr`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `line_bytes` is not a valid line for `timing`.
    pub fn new(timing: &MemoryTiming, line_bytes: u64, miss_addr: Addr, start: u64) -> Self {
        debug_assert!(timing.check_line(line_bytes).is_ok());
        let chunk_bytes = timing.bus().bytes().min(line_bytes);
        FillSchedule {
            line: miss_addr.line(line_bytes),
            line_bytes,
            chunk_bytes,
            start,
            critical_chunk: miss_addr.chunk_in_line(line_bytes, chunk_bytes),
            beta_m: timing.beta_m(),
            q: timing.q(),
        }
    }

    /// The line being filled.
    pub fn line(&self) -> LineAddr {
        self.line
    }

    /// Absolute cycle the fill started.
    pub fn started_at(&self) -> u64 {
        self.start
    }

    /// Number of bus chunks in the line.
    pub fn chunks(&self) -> u64 {
        (self.line_bytes / self.chunk_bytes).max(1)
    }

    fn arrival_offset(&self, delivery_index: u64) -> u64 {
        match self.q {
            None => (delivery_index + 1) * self.beta_m,
            Some(q) => self.beta_m + delivery_index * q,
        }
    }

    /// Absolute cycle the *critical* (requested) chunk arrives.
    ///
    /// This is when a BL / BNL processor resumes after the triggering
    /// miss: `start + β_m`.
    pub fn critical_arrives_at(&self) -> u64 {
        self.start + self.arrival_offset(0)
    }

    /// Absolute cycle the whole line is in the cache.
    pub fn complete_at(&self) -> u64 {
        self.start + self.arrival_offset(self.chunks() - 1)
    }

    /// Returns `true` once the fill has fully completed at `cycle`.
    pub fn is_complete(&self, cycle: u64) -> bool {
        cycle >= self.complete_at()
    }

    /// Absolute cycle the chunk containing `addr` arrives.
    ///
    /// Chunks are delivered critical-word-first in wrap-around order.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not within the line being filled.
    pub fn chunk_available_at(&self, addr: Addr) -> u64 {
        assert_eq!(
            addr.line(self.line_bytes),
            self.line,
            "address outside the in-flight line"
        );
        let chunk = addr.chunk_in_line(self.line_bytes, self.chunk_bytes);
        let chunks = self.chunks();
        let delivery_index = (chunk + chunks - self.critical_chunk) % chunks;
        self.start + self.arrival_offset(delivery_index)
    }

    /// Returns `true` if the chunk containing `addr` has arrived by
    /// `cycle`.
    pub fn chunk_available(&self, addr: Addr, cycle: u64) -> bool {
        cycle >= self.chunk_available_at(addr)
    }

    /// Returns `true` if `addr` falls inside the line being filled.
    pub fn covers(&self, addr: Addr) -> bool {
        addr.line(self.line_bytes) == self.line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::BusWidth;

    fn timing(beta: u64) -> MemoryTiming {
        MemoryTiming::new(BusWidth::new(4).unwrap(), beta)
    }

    #[test]
    fn critical_word_first_ordering() {
        // Miss on the third chunk (offset 8) of a 16-byte line.
        let f = FillSchedule::new(&timing(10), 16, Addr::new(0x108), 100);
        assert_eq!(f.critical_arrives_at(), 110);
        // Delivery order: chunk 2, 3, 0, 1.
        assert_eq!(f.chunk_available_at(Addr::new(0x108)), 110);
        assert_eq!(f.chunk_available_at(Addr::new(0x10C)), 120);
        assert_eq!(f.chunk_available_at(Addr::new(0x100)), 130);
        assert_eq!(f.chunk_available_at(Addr::new(0x104)), 140);
        assert_eq!(f.complete_at(), 140);
    }

    #[test]
    fn complete_equals_start_plus_fill_time() {
        let t = timing(7);
        let f = FillSchedule::new(&t, 32, Addr::new(0x0), 50);
        assert_eq!(f.complete_at(), 50 + t.line_fill_time(32));
        assert!(!f.is_complete(f.complete_at() - 1));
        assert!(f.is_complete(f.complete_at()));
    }

    #[test]
    fn pipelined_schedule_compresses_tail() {
        let t = timing(10).pipelined(2);
        let f = FillSchedule::new(&t, 32, Addr::new(0x0), 0);
        assert_eq!(f.critical_arrives_at(), 10);
        assert_eq!(f.complete_at(), 10 + 2 * 7);
        // Second chunk arrives only q after the first.
        assert_eq!(f.chunk_available_at(Addr::new(0x4)), 12);
    }

    #[test]
    fn covers_only_its_line() {
        let f = FillSchedule::new(&timing(5), 32, Addr::new(0x40), 0);
        assert!(f.covers(Addr::new(0x5F)));
        assert!(!f.covers(Addr::new(0x60)));
        assert!(!f.covers(Addr::new(0x3F)));
    }

    #[test]
    #[should_panic(expected = "outside the in-flight line")]
    fn chunk_query_outside_line_panics() {
        let f = FillSchedule::new(&timing(5), 32, Addr::new(0x40), 0);
        f.chunk_available_at(Addr::new(0x100));
    }

    #[test]
    fn single_chunk_line() {
        let f = FillSchedule::new(&timing(9), 4, Addr::new(0x10), 3);
        assert_eq!(f.chunks(), 1);
        assert_eq!(f.critical_arrives_at(), 12);
        assert_eq!(f.complete_at(), 12);
    }

    #[test]
    fn all_chunks_arrive_by_completion() {
        let t = timing(6);
        let f = FillSchedule::new(&t, 32, Addr::new(0x214), 77);
        for off in (0..32).step_by(4) {
            let a = Addr::new(0x200 + off);
            assert!(f.chunk_available_at(a) <= f.complete_at());
            assert!(f.chunk_available_at(a) >= f.critical_arrives_at());
        }
    }
}
