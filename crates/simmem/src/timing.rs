//! Bus width and memory cycle timing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from timing-parameter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// The bus width was not a power of two in the supported range.
    BadBusWidth(u64),
    /// A cycle count parameter was zero.
    ZeroCycles(&'static str),
    /// A line size was not a positive multiple of the bus width.
    BadLine {
        /// Offending line size in bytes.
        line_bytes: u64,
        /// Bus width in bytes.
        bus_bytes: u64,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::BadBusWidth(d) => {
                write!(
                    f,
                    "bus width must be a power of two in 1..=64 bytes, got {d}"
                )
            }
            TimingError::ZeroCycles(what) => write!(f, "{what} must be at least one cycle"),
            TimingError::BadLine {
                line_bytes,
                bus_bytes,
            } => {
                write!(
                    f,
                    "line size {line_bytes} is not a positive multiple of bus width {bus_bytes}"
                )
            }
        }
    }
}

impl std::error::Error for TimingError {}

/// External data bus width `D` in bytes.
///
/// The paper restricts `D ∈ {4, 8, 16, 32}`; this type accepts any power
/// of two from 1 to 64 so ablations can step outside the paper's set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BusWidth(u64);

impl BusWidth {
    /// The paper's canonical widths.
    pub const PAPER_SET: [BusWidth; 4] = [BusWidth(4), BusWidth(8), BusWidth(16), BusWidth(32)];

    /// Creates a bus width.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadBusWidth`] unless `bytes` is a power of
    /// two in `1..=64`.
    pub fn new(bytes: u64) -> Result<Self, TimingError> {
        if bytes.is_power_of_two() && (1..=64).contains(&bytes) {
            Ok(BusWidth(bytes))
        } else {
            Err(TimingError::BadBusWidth(bytes))
        }
    }

    /// Width in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Width in bits (as quoted in the paper's prose, e.g. "a 32-bit bus").
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// The doubled bus, the paper's headline feature.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadBusWidth`] when doubling would exceed the
    /// supported range.
    pub fn doubled(self) -> Result<Self, TimingError> {
        BusWidth::new(self.0 * 2)
    }
}

impl fmt::Display for BusWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

impl TryFrom<u64> for BusWidth {
    type Error = TimingError;

    fn try_from(bytes: u64) -> Result<Self, Self::Error> {
        BusWidth::new(bytes)
    }
}

/// Memory timing: `β_m` cycles per `D`-byte transfer, optionally pipelined.
///
/// In a pipelined memory system a new `D`-byte request can issue every `q`
/// cycles while each individual request still takes `β_m` (paper Eq. 9:
/// `β_p = β_m + q(L/D − 1)` per `L`-byte line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryTiming {
    bus: BusWidth,
    beta_m: u64,
    /// Pipelined issue interval `q`; `None` means non-pipelined.
    q: Option<u64>,
    /// Write-cycle time per chunk; `None` = same as reads (the paper's
    /// assumption 5).
    beta_write: Option<u64>,
}

impl MemoryTiming {
    /// Creates a non-pipelined memory.
    ///
    /// # Panics
    ///
    /// Panics if `beta_m` is zero; use [`MemoryTiming::try_new`] to check
    /// fallibly.
    pub fn new(bus: BusWidth, beta_m: u64) -> Self {
        Self::try_new(bus, beta_m).expect("beta_m must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::ZeroCycles`] if `beta_m` is zero.
    pub fn try_new(bus: BusWidth, beta_m: u64) -> Result<Self, TimingError> {
        if beta_m == 0 {
            return Err(TimingError::ZeroCycles("beta_m"));
        }
        Ok(MemoryTiming {
            bus,
            beta_m,
            q: None,
            beta_write: None,
        })
    }

    /// Returns a pipelined variant with issue interval `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is zero.
    pub fn pipelined(mut self, q: u64) -> Self {
        assert!(q > 0, "pipeline issue interval must be positive");
        self.q = Some(q);
        self
    }

    /// Returns a non-pipelined variant.
    pub fn non_pipelined(mut self) -> Self {
        self.q = None;
        self
    }

    /// Page-mode DRAM: the first chunk of a line pays the full row access
    /// `row_miss`, subsequent same-row chunks stream at `row_hit`.
    ///
    /// Timing-wise this is *exactly* the paper's pipelined memory with
    /// `β_m = row_miss` and `q = row_hit` — fast-page-mode DRAM is one
    /// physical realisation of Eq. 9, which is why the pipelined curves
    /// of Figures 3–5 also describe page-mode parts.
    ///
    /// # Panics
    ///
    /// Panics if `row_hit` is zero or exceeds `row_miss`.
    pub fn page_mode(bus: BusWidth, row_miss: u64, row_hit: u64) -> Self {
        assert!(row_hit > 0, "row-hit time must be positive");
        assert!(
            row_hit <= row_miss,
            "row hits cannot be slower than row misses"
        );
        MemoryTiming::new(bus, row_miss).pipelined(row_hit)
    }

    /// The bus width `D`.
    pub fn bus(&self) -> BusWidth {
        self.bus
    }

    /// `β_m` in CPU cycles.
    pub fn beta_m(&self) -> u64 {
        self.beta_m
    }

    /// The pipelined issue interval `q`, if pipelined.
    pub fn q(&self) -> Option<u64> {
        self.q
    }

    /// Returns the same memory with a doubled bus.
    ///
    /// # Errors
    ///
    /// Propagates [`TimingError::BadBusWidth`] from [`BusWidth::doubled`].
    pub fn with_doubled_bus(&self) -> Result<Self, TimingError> {
        Ok(MemoryTiming {
            bus: self.bus.doubled()?,
            beta_m: self.beta_m,
            q: self.q,
            beta_write: self.beta_write,
        })
    }

    /// Number of bus chunks in an `line_bytes`-byte line.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the line is not a positive multiple of `D`; use
    /// [`MemoryTiming::check_line`] to validate fallibly.
    pub fn chunks_per_line(&self, line_bytes: u64) -> u64 {
        debug_assert!(self.check_line(line_bytes).is_ok());
        (line_bytes / self.bus.bytes()).max(1)
    }

    /// Validates a line size against the bus width.
    ///
    /// A line narrower than the bus is allowed (a single chunk fetches
    /// it), but a line that is not a multiple of `D` is not.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::BadLine`] on a zero line or a line that is
    /// neither a divisor nor a multiple of the bus width.
    pub fn check_line(&self, line_bytes: u64) -> Result<(), TimingError> {
        let d = self.bus.bytes();
        if line_bytes == 0 || (!line_bytes.is_multiple_of(d) && !d.is_multiple_of(line_bytes)) {
            return Err(TimingError::BadLine {
                line_bytes,
                bus_bytes: d,
            });
        }
        Ok(())
    }

    /// Cycles to transfer a whole line: the paper's `(L/D)β_m`, or
    /// `β_p = β_m + q(L/D − 1)` when pipelined (Eq. 9).
    pub fn line_fill_time(&self, line_bytes: u64) -> u64 {
        let chunks = self.chunks_per_line(line_bytes);
        match self.q {
            None => chunks * self.beta_m,
            Some(q) => self.beta_m + q * (chunks - 1),
        }
    }

    /// Cycle (relative to fill start) at which chunk `i` (0-based, in
    /// delivery order) has fully arrived.
    pub fn chunk_arrival(&self, i: u64) -> u64 {
        match self.q {
            None => (i + 1) * self.beta_m,
            Some(q) => self.beta_m + i * q,
        }
    }

    /// Cycles for a single `D`-byte (or smaller) transfer — the service
    /// time of a write-around store.
    pub fn single_transfer_time(&self) -> u64 {
        self.beta_m
    }

    /// Relaxes the paper's assumption 5 (equal read and write cycle
    /// times): writes take `beta_write` cycles per chunk instead.
    ///
    /// # Panics
    ///
    /// Panics if `beta_write` is zero.
    pub fn with_write_beta(mut self, beta_write: u64) -> Self {
        assert!(beta_write > 0, "write cycle time must be positive");
        self.beta_write = Some(beta_write);
        self
    }

    /// The write-cycle time per chunk (`β_w`, defaulting to `β_m`).
    pub fn beta_write(&self) -> u64 {
        self.beta_write.unwrap_or(self.beta_m)
    }

    /// Cycles to write a whole line back to memory.
    ///
    /// Follows the same pipelining shape as reads, with the write cycle
    /// time substituted.
    pub fn line_write_time(&self, line_bytes: u64) -> u64 {
        let chunks = self.chunks_per_line(line_bytes);
        let bw = self.beta_write();
        match self.q {
            None => chunks * bw,
            Some(q) => bw + q.min(bw) * (chunks - 1),
        }
    }

    /// Cycles for a single `D`-byte write — the service time of a
    /// write-around store under asymmetric timing.
    pub fn single_write_time(&self) -> u64 {
        self.beta_write()
    }
}

impl fmt::Display for MemoryTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.q {
            None => write!(f, "{} bus, βm={}", self.bus, self.beta_m),
            Some(q) => write!(f, "{} bus, βm={} pipelined q={}", self.bus, self.beta_m, q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_width_validation() {
        assert!(BusWidth::new(4).is_ok());
        assert!(BusWidth::new(64).is_ok());
        assert_eq!(BusWidth::new(0), Err(TimingError::BadBusWidth(0)));
        assert_eq!(BusWidth::new(12), Err(TimingError::BadBusWidth(12)));
        assert_eq!(BusWidth::new(128), Err(TimingError::BadBusWidth(128)));
    }

    #[test]
    fn bus_width_units() {
        let d = BusWidth::new(4).unwrap();
        assert_eq!(d.bytes(), 4);
        assert_eq!(d.bits(), 32);
        assert_eq!(d.to_string(), "32-bit");
    }

    #[test]
    fn doubling() {
        let d = BusWidth::new(4).unwrap();
        assert_eq!(d.doubled().unwrap().bytes(), 8);
        assert!(BusWidth::new(64).unwrap().doubled().is_err());
    }

    #[test]
    fn paper_set_is_valid() {
        for d in BusWidth::PAPER_SET {
            assert!(BusWidth::new(d.bytes()).is_ok());
        }
    }

    #[test]
    fn non_pipelined_fill_time_is_chunks_times_beta() {
        let t = MemoryTiming::new(BusWidth::new(4).unwrap(), 10);
        assert_eq!(t.chunks_per_line(32), 8);
        assert_eq!(t.line_fill_time(32), 80);
        assert_eq!(t.line_fill_time(4), 10);
    }

    #[test]
    fn pipelined_fill_time_matches_eq9() {
        let t = MemoryTiming::new(BusWidth::new(4).unwrap(), 10).pipelined(2);
        // β_p = β_m + q(L/D − 1) = 10 + 2·7 = 24
        assert_eq!(t.line_fill_time(32), 24);
        // L = D: pipelining does not help a single chunk.
        assert_eq!(t.line_fill_time(4), 10);
    }

    #[test]
    fn pipelining_with_q_equals_beta_is_non_pipelined() {
        let base = MemoryTiming::new(BusWidth::new(4).unwrap(), 6);
        let piped = base.pipelined(6);
        assert_eq!(base.line_fill_time(64), piped.line_fill_time(64));
    }

    #[test]
    fn chunk_arrivals_are_monotonic_and_end_at_fill_time() {
        for t in [
            MemoryTiming::new(BusWidth::new(4).unwrap(), 7),
            MemoryTiming::new(BusWidth::new(4).unwrap(), 7).pipelined(2),
        ] {
            let chunks = t.chunks_per_line(32);
            let mut prev = 0;
            for i in 0..chunks {
                let a = t.chunk_arrival(i);
                assert!(a > prev);
                prev = a;
            }
            assert_eq!(prev, t.line_fill_time(32));
        }
    }

    #[test]
    fn line_validation() {
        let t = MemoryTiming::new(BusWidth::new(8).unwrap(), 5);
        assert!(t.check_line(32).is_ok());
        assert!(t.check_line(8).is_ok());
        assert!(
            t.check_line(4).is_ok(),
            "line narrower than bus is one chunk"
        );
        assert!(t.check_line(12).is_err());
        assert!(t.check_line(0).is_err());
        assert_eq!(t.chunks_per_line(4), 1);
    }

    #[test]
    fn doubled_bus_halves_fill_time() {
        let t = MemoryTiming::new(BusWidth::new(4).unwrap(), 10);
        let t2 = t.with_doubled_bus().unwrap();
        assert_eq!(t2.line_fill_time(32), t.line_fill_time(32) / 2);
    }

    #[test]
    fn zero_beta_rejected() {
        assert!(MemoryTiming::try_new(BusWidth::new(4).unwrap(), 0).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_q_panics() {
        MemoryTiming::new(BusWidth::new(4).unwrap(), 5).pipelined(0);
    }

    #[test]
    fn asymmetric_write_timing() {
        let t = MemoryTiming::new(BusWidth::new(4).unwrap(), 8).with_write_beta(12);
        assert_eq!(t.beta_write(), 12);
        assert_eq!(t.single_write_time(), 12);
        assert_eq!(t.line_write_time(32), 8 * 12);
        // Reads untouched.
        assert_eq!(t.line_fill_time(32), 64);
        // Default: assumption 5 holds.
        let sym = MemoryTiming::new(BusWidth::new(4).unwrap(), 8);
        assert_eq!(sym.line_write_time(32), sym.line_fill_time(32));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_write_beta_panics() {
        MemoryTiming::new(BusWidth::new(4).unwrap(), 8).with_write_beta(0);
    }

    #[test]
    fn page_mode_is_eq9_in_disguise() {
        let bus = BusWidth::new(4).unwrap();
        let dram = MemoryTiming::page_mode(bus, 10, 2);
        let piped = MemoryTiming::new(bus, 10).pipelined(2);
        for line in [8u64, 32, 64] {
            assert_eq!(dram.line_fill_time(line), piped.line_fill_time(line));
        }
        // First chunk at row-miss, each further chunk one row-hit later.
        assert_eq!(dram.chunk_arrival(0), 10);
        assert_eq!(dram.chunk_arrival(1), 12);
    }

    #[test]
    #[should_panic(expected = "cannot be slower")]
    fn page_mode_rejects_inverted_times() {
        MemoryTiming::page_mode(BusWidth::new(4).unwrap(), 5, 10);
    }

    #[test]
    fn display_mentions_parameters() {
        let t = MemoryTiming::new(BusWidth::new(4).unwrap(), 5).pipelined(2);
        let s = t.to_string();
        assert!(s.contains("βm=5") && s.contains("q=2"));
    }
}
