//! Memory-system timing substrate.
//!
//! Models the parts of the paper's hardware below the caches:
//!
//! * the external data bus of width `D` bytes ([`BusWidth`]),
//! * a memory with cycle time `β_m` per `D`-byte transfer, optionally
//!   pipelined with issue interval `q` ([`MemoryTiming`]),
//! * the chunk-by-chunk delivery schedule of a line fill, critical word
//!   first ([`FillSchedule`]) — the information the BL/BNL2/BNL3 stalling
//!   features key off,
//! * a read-bypassing write buffer ([`WriteBuffer`]) that hides the
//!   `α(R/D)β_m` flush term of Eq. 2.
//!
//! All times are in CPU clock cycles, matching the paper's normalisation
//! (`β_m` is "memory cycle time per `D` bytes" in CPU cycles).
//!
//! # Example
//!
//! ```
//! use simmem::{BusWidth, MemoryTiming};
//!
//! let timing = MemoryTiming::new(BusWidth::new(4)?, 8); // D = 4 B, β_m = 8
//! assert_eq!(timing.line_fill_time(32), 64);            // (L/D)·β_m
//! let pipelined = timing.pipelined(2);
//! assert_eq!(pipelined.line_fill_time(32), 8 + 2 * 7);  // β_m + q(L/D − 1)
//! # Ok::<(), simmem::TimingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fill;
pub mod timing;
pub mod wbuf;

pub use fill::FillSchedule;
pub use timing::{BusWidth, MemoryTiming, TimingError};
pub use wbuf::{BypassMode, WriteBuffer};
