//! Property-based tests for fill schedules and write buffers.

use proptest::prelude::*;
use simmem::{BusWidth, BypassMode, FillSchedule, MemoryTiming, WriteBuffer};
use simtrace::Addr;

fn timing_params() -> impl Strategy<Value = (u64, u64, Option<u64>)> {
    // (bus bytes, beta_m, q)
    (
        prop_oneof![Just(4u64), Just(8), Just(16)],
        1u64..60,
        prop_oneof![Just(None), (1u64..10).prop_map(Some)],
    )
}

proptest! {
    /// Chunk arrivals are strictly increasing, start after β_m, and end
    /// exactly at the line fill time; every byte of the line is covered.
    #[test]
    fn fill_schedule_invariants(
        (bus, beta, q) in timing_params(),
        line_exp in 0u32..4, // line = bus << line_exp
        offset_word in 0u64..16,
        start in 0u64..10_000,
    ) {
        let line = bus << line_exp;
        let mut timing = MemoryTiming::new(BusWidth::new(bus).expect("valid"), beta);
        if let Some(q) = q {
            timing = timing.pipelined(q);
        }
        let miss = Addr::new(0x4_0000 + (offset_word * 4) % line);
        let sched = FillSchedule::new(&timing, line, miss, start);

        prop_assert_eq!(sched.critical_arrives_at(), start + beta);
        prop_assert_eq!(sched.complete_at(), start + timing.line_fill_time(line));
        prop_assert_eq!(sched.chunk_available_at(miss), sched.critical_arrives_at());

        let base = miss.line(line).base(line);
        let mut arrivals: Vec<u64> = (0..line / bus.min(line))
            .map(|i| sched.chunk_available_at(base.wrapping_add(i * bus.min(line))))
            .collect();
        for &a in &arrivals {
            prop_assert!(a >= sched.critical_arrives_at());
            prop_assert!(a <= sched.complete_at());
        }
        arrivals.sort_unstable();
        arrivals.dedup();
        prop_assert_eq!(arrivals.len() as u64, line / bus.min(line), "one slot per chunk");
    }

    /// The write buffer conserves work: everything enqueued eventually
    /// drains, and occupancy never exceeds capacity.
    #[test]
    fn write_buffer_conservation(
        capacity in 1usize..8,
        services in proptest::collection::vec((1u64..100, 0u64..50), 1..40),
        mode in prop_oneof![Just(BypassMode::Ideal), Just(BypassMode::ChunkGranular)],
    ) {
        let mut wb = WriteBuffer::new(capacity, 10, mode);
        let mut now = 0u64;
        let mut total_service = 0u64;
        for (service, gap) in services {
            now += gap;
            let stall = wb.enqueue(now, service);
            now += stall;
            total_service += service;
            prop_assert!(wb.occupancy() <= capacity);
            let delay = wb.read_delay(now);
            prop_assert!(delay < 10, "bypass delay bounded by one chunk");
        }
        // Far in the future everything has drained.
        wb.advance(now + total_service + 1);
        prop_assert!(wb.is_empty());
        prop_assert_eq!(wb.backlog_cycles(), 0);
        prop_assert_eq!(wb.stats().enqueued, wb.stats().enqueued);
    }

    /// Pipelined fills never take longer than non-pipelined ones, and
    /// `q = β_m` makes them identical.
    #[test]
    fn pipelining_never_hurts((bus, beta, _) in timing_params(), line_exp in 0u32..4, q in 1u64..60) {
        let line = bus << line_exp;
        let plain = MemoryTiming::new(BusWidth::new(bus).expect("valid"), beta);
        let piped = plain.pipelined(q.min(beta));
        prop_assert!(piped.line_fill_time(line) <= plain.line_fill_time(line));
        let equal = plain.pipelined(beta);
        prop_assert_eq!(equal.line_fill_time(line), plain.line_fill_time(line));
    }
}
