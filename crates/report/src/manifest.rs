//! The typed artifact manifest: `results/manifest.json`.
//!
//! Every suite run writes its artifacts through [`write_all`], which
//! records the exact bytes of each file as a SHA-256 entry. Determinism
//! and staleness then become mechanical checks: regenerate into a fresh
//! directory, compare manifests; or re-hash a committed directory against
//! its manifest. CI runs both (`ci.sh` `manifest` mode).

use crate::artifact::Artifact;
use crate::csv::write_artifact;
use crate::hash::sha256_hex;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// File name of the manifest inside a results directory.
pub const MANIFEST_NAME: &str = "manifest.json";

/// One hashed artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the results directory.
    pub name: String,
    /// Size of the rendered payload in bytes.
    pub bytes: u64,
    /// Lowercase-hex SHA-256 of the rendered payload.
    pub sha256: String,
}

/// One experiment's execution status in a degraded suite run
/// (`ok` / `retried(n)` / `failed` / `timed-out`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusEntry {
    /// Experiment id.
    pub id: String,
    /// Status keyword.
    pub status: String,
}

/// A content-addressed inventory of a results directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Entries sorted by name.
    pub entries: Vec<ManifestEntry>,
    /// Per-experiment statuses, in suite order. Empty for a fully
    /// clean run — and then absent from the JSON, so clean manifests
    /// are byte-identical to the pre-status schema.
    pub statuses: Vec<StatusEntry>,
}

/// One detected divergence between a manifest and reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// A listed artifact is absent from the directory.
    Missing {
        /// Artifact name.
        name: String,
    },
    /// A listed artifact exists but its bytes hash differently.
    Changed {
        /// Artifact name.
        name: String,
        /// Hash recorded in the manifest.
        expected: String,
        /// Hash of the bytes on disk.
        actual: String,
    },
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drift::Missing { name } => write!(f, "{name}: missing"),
            Drift::Changed {
                name,
                expected,
                actual,
            } => write!(f, "{name}: hash {actual} != manifest {expected}"),
        }
    }
}

impl Manifest {
    /// Builds a manifest over rendered artifacts, sorted by name.
    pub fn from_artifacts(artifacts: &[Artifact]) -> Manifest {
        let mut entries: Vec<ManifestEntry> = artifacts
            .iter()
            .map(|a| {
                let payload = a.render();
                ManifestEntry {
                    name: a.name.clone(),
                    bytes: payload.len() as u64,
                    sha256: sha256_hex(payload.as_bytes()),
                }
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Manifest {
            entries,
            statuses: Vec::new(),
        }
    }

    /// Attaches per-experiment statuses (suite order, not sorted). Pass
    /// an empty vector to keep the manifest in its clean-run shape.
    #[must_use]
    pub fn with_statuses(mut self, statuses: Vec<StatusEntry>) -> Manifest {
        self.statuses = statuses;
        self
    }

    /// Serialises the manifest as deterministic JSON (one entry per
    /// line, entries sorted by name, trailing newline). A degraded run
    /// additionally records an `"experiments"` status section; a clean
    /// manifest omits it and serialises byte-identically to the
    /// pre-status schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        if !self.statuses.is_empty() {
            out.push_str("  \"experiments\": [\n");
            for (i, s) in self.statuses.iter().enumerate() {
                let comma = if i + 1 == self.statuses.len() {
                    ""
                } else {
                    ","
                };
                out.push_str(&format!(
                    "    {{\"id\": \"{}\", \"status\": \"{}\"}}{comma}\n",
                    s.id, s.status
                ));
            }
            out.push_str("  ],\n");
        }
        out.push_str("  \"artifacts\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"bytes\": {}, \"sha256\": \"{}\"}}{comma}\n",
                e.name, e.bytes, e.sha256
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a manifest previously emitted by [`Manifest::to_json`].
    ///
    /// The parser is deliberately line-oriented: it accepts exactly the
    /// one-entry-per-line shape this module writes (artifact names never
    /// contain quotes or escapes).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn parse(json: &str) -> Result<Manifest, String> {
        fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
            let tag = format!("\"{key}\":");
            let rest = &line[line.find(&tag)? + tag.len()..];
            let rest = rest.trim_start();
            if let Some(stripped) = rest.strip_prefix('"') {
                stripped.split('"').next()
            } else {
                rest.split(|c: char| c == ',' || c == '}' || c.is_whitespace())
                    .next()
            }
        }
        let mut entries = Vec::new();
        let mut statuses = Vec::new();
        for line in json.lines() {
            if line.contains("\"name\"") {
                let name = field(line, "name").ok_or(format!("bad manifest line: {line}"))?;
                let bytes = field(line, "bytes")
                    .and_then(|v| v.parse().ok())
                    .ok_or(format!("bad byte count: {line}"))?;
                let sha256 = field(line, "sha256").ok_or(format!("bad sha256: {line}"))?;
                entries.push(ManifestEntry {
                    name: name.to_string(),
                    bytes,
                    sha256: sha256.to_string(),
                });
            } else if line.contains("\"id\"") {
                let id = field(line, "id").ok_or(format!("bad status line: {line}"))?;
                let status = field(line, "status").ok_or(format!("bad status: {line}"))?;
                statuses.push(StatusEntry {
                    id: id.to_string(),
                    status: status.to_string(),
                });
            }
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        // Statuses keep their written (suite) order.
        Ok(Manifest { entries, statuses })
    }

    /// Re-hashes every listed artifact under `dir` and reports drift.
    pub fn verify_dir(&self, dir: &Path) -> Vec<Drift> {
        let mut drift = Vec::new();
        for e in &self.entries {
            match fs::read(dir.join(&e.name)) {
                Err(_) => drift.push(Drift::Missing {
                    name: e.name.clone(),
                }),
                Ok(bytes) => {
                    let actual = sha256_hex(&bytes);
                    if actual != e.sha256 {
                        drift.push(Drift::Changed {
                            name: e.name.clone(),
                            expected: e.sha256.clone(),
                            actual,
                        });
                    }
                }
            }
        }
        drift
    }
}

/// Writes every artifact plus the manifest under `dir` and returns the
/// manifest. This is the single write path for experiment outputs.
///
/// # Errors
///
/// Propagates the first I/O error.
pub fn write_all(dir: &Path, artifacts: &[Artifact]) -> io::Result<Manifest> {
    let manifest = Manifest::from_artifacts(artifacts);
    for a in artifacts {
        write_artifact(dir.join(&a.name), &a.render())?;
    }
    write_artifact(dir.join(MANIFEST_NAME), &manifest.to_json())?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Artifact> {
        vec![
            Artifact::text("b.txt", "hello\n"),
            Artifact::csv("a.csv", &["x"], vec![vec!["1".into()]]),
        ]
    }

    #[test]
    fn manifest_is_sorted_and_round_trips() {
        let m = Manifest::from_artifacts(&sample());
        assert_eq!(m.entries[0].name, "a.csv");
        assert_eq!(m.entries[1].name, "b.txt");
        assert_eq!(m.entries[1].bytes, 6);
        let parsed = Manifest::parse(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn write_all_produces_verifiable_directory() {
        let dir = std::env::temp_dir().join("manifest_write_all_test");
        let _ = fs::remove_dir_all(&dir);
        let m = write_all(&dir, &sample()).unwrap();
        assert!(m.verify_dir(&dir).is_empty());
        assert!(dir.join(MANIFEST_NAME).exists());
        // Doctor one artifact: drift must be reported.
        fs::write(dir.join("a.csv"), "x\n2\n").unwrap();
        let drift = m.verify_dir(&dir);
        assert_eq!(drift.len(), 1);
        assert!(matches!(&drift[0], Drift::Changed { name, .. } if name == "a.csv"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_artifact_is_drift() {
        let dir = std::env::temp_dir().join("manifest_missing_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let m = Manifest::from_artifacts(&sample());
        let drift = m.verify_dir(&dir);
        assert_eq!(drift.len(), 2);
        assert!(drift.iter().all(|d| matches!(d, Drift::Missing { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_artifacts_hash_identically() {
        let a = Manifest::from_artifacts(&sample());
        let b = Manifest::from_artifacts(&sample());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn empty_statuses_leave_the_json_unchanged() {
        let m = Manifest::from_artifacts(&sample());
        let clean = m.to_json();
        assert_eq!(m.clone().with_statuses(Vec::new()).to_json(), clean);
        assert!(!clean.contains("experiments"));
    }

    #[test]
    fn statuses_round_trip_in_suite_order() {
        let statuses = vec![
            StatusEntry {
                id: "zeta".into(),
                status: "ok".into(),
            },
            StatusEntry {
                id: "alpha".into(),
                status: "timed-out".into(),
            },
        ];
        let m = Manifest::from_artifacts(&sample()).with_statuses(statuses.clone());
        let json = m.to_json();
        assert!(json.contains("\"experiments\": ["));
        assert!(json.contains("{\"id\": \"alpha\", \"status\": \"timed-out\"}"));
        let parsed = Manifest::parse(&json).unwrap();
        assert_eq!(parsed, m);
        // Suite order is preserved, not sorted.
        assert_eq!(parsed.statuses[0].id, "zeta");
    }
}
