//! Multi-series ASCII line charts.

/// Renders a one-line sparkline of non-negative magnitudes using five
/// density glyphs, scaled to the series maximum.
///
/// # Example
///
/// ```
/// let s = report::chart::sparkline(&[0, 1, 4, 9, 4, 1, 0]);
/// assert_eq!(s.len(), 7);
/// assert_eq!(&s[3..4], "#");
/// ```
pub fn sparkline(values: &[u64]) -> String {
    const GLYPHS: [char; 5] = [' ', '.', ':', '|', '#'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| match (v * 4 + max / 2).checked_div(max) {
            None => GLYPHS[0],
            Some(level) => GLYPHS[level.min(4) as usize],
        })
        .collect()
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// A chart under construction.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Chart {
    /// Creates an empty chart with a plot area of `width`×`height`
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is smaller than 2.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        width: usize,
        height: usize,
    ) -> Self {
        assert!(width >= 2 && height >= 2, "plot area must be at least 2×2");
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, y)` points; returns `self` for
    /// chaining.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut pts = self.series.iter().flat_map(|(_, p)| p.iter()).copied();
        let (x0, y0) = pts.next()?;
        let mut b = (x0, x0, y0, y0);
        for (x, y) in pts {
            b.0 = b.0.min(x);
            b.1 = b.1.max(x);
            b.2 = b.2.min(y);
            b.3 = b.3.max(y);
        }
        Some(b)
    }

    /// Renders the chart to a string.
    ///
    /// An empty chart (no series or no points) renders a placeholder
    /// message rather than panicking.
    pub fn render(&self) -> String {
        let Some((x_min, x_max, y_min, y_max)) = self.bounds() else {
            return format!("{}\n  (no data)\n", self.title);
        };
        let x_span = if x_max > x_min { x_max - x_min } else { 1.0 };
        let y_span = if y_max > y_min { y_max - y_min } else { 1.0 };
        let mut grid = vec![vec![' '; self.width]; self.height];

        for (si, (_, points)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in points {
                let cx = (((x - x_min) / x_span) * (self.width - 1) as f64).round() as usize;
                let cy = (((y - y_min) / y_span) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                grid[row][cx.min(self.width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.title, self.y_label));
        for (i, row) in grid.iter().enumerate() {
            let y_here = y_max - (i as f64 / (self.height - 1) as f64) * y_span;
            out.push_str(&format!("{y_here:>10.3} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>10}  {:<w$.3}{:>.3}  ({})\n",
            "",
            x_min,
            x_max,
            self.x_label,
            w = self.width.saturating_sub(6)
        ));
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("    {} {}\n", GLYPHS[si % GLYPHS.len()], name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axis_and_legend() {
        let mut c = Chart::new("Figure 2", "beta", "dHR", 30, 8);
        c.series("L=32", vec![(2.0, 3.0), (20.0, 2.0)]);
        c.series("L=8", vec![(2.0, 2.5), (20.0, 2.1)]);
        let text = c.render();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("L=32") && text.contains("L=8"));
        assert!(text.contains("beta"));
        assert!(text.contains('*') && text.contains('o'));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = Chart::new("Nothing", "x", "y", 10, 4);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn single_point_series_does_not_panic() {
        let mut c = Chart::new("One", "x", "y", 10, 4);
        c.series("p", vec![(1.0, 1.0)]);
        let text = c.render();
        assert!(text.contains('*'));
    }

    #[test]
    fn extreme_points_land_on_edges() {
        let mut c = Chart::new("Edges", "x", "y", 11, 5);
        c.series("s", vec![(0.0, 0.0), (10.0, 10.0)]);
        let text = c.render();
        let lines: Vec<&str> = text.lines().collect();
        // First grid row (max y) holds the max point at the right edge.
        assert!(lines[1].trim_end().ends_with('*'));
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn tiny_plot_area_panics() {
        Chart::new("t", "x", "y", 1, 5);
    }

    #[test]
    fn sparkline_scales_and_handles_empty() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "  ");
        let s = sparkline(&[1, 2, 4, 8]);
        assert_eq!(s.chars().last(), Some('#'));
        assert!(s.starts_with(['.', ':']), "{s:?}");
    }
}
