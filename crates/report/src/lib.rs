//! Experiment output rendering: ASCII line charts, markdown tables and
//! CSV files.
//!
//! The benchmark harness regenerates every figure of the paper; since the
//! reproduction is terminal-first, figures are emitted as multi-series
//! ASCII charts (one glyph per series) alongside machine-readable CSV.
//!
//! # Example
//!
//! ```
//! use report::chart::Chart;
//!
//! let mut chart = Chart::new("ΔHR vs β_m", "beta_m", "ΔHR (%)", 40, 10);
//! chart.series("L=8", (2..=20).map(|b| (b as f64, 100.0 / b as f64)).collect());
//! let text = chart.render();
//! assert!(text.contains("ΔHR vs β_m"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod chart;
pub mod csv;
pub mod hash;
pub mod json;
pub mod manifest;
pub mod table;

pub use artifact::{Artifact, ArtifactKind};
pub use chart::Chart;
pub use csv::{write_artifact, write_csv};
pub use hash::sha256_hex;
pub use json::Json;
pub use manifest::{Drift, Manifest, ManifestEntry, MANIFEST_NAME};
pub use table::Table;
