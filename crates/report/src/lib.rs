//! Experiment output rendering: ASCII line charts, markdown tables and
//! CSV files.
//!
//! The benchmark harness regenerates every figure of the paper; since the
//! reproduction is terminal-first, figures are emitted as multi-series
//! ASCII charts (one glyph per series) alongside machine-readable CSV.
//!
//! # Example
//!
//! ```
//! use report::chart::Chart;
//!
//! let mut chart = Chart::new("ΔHR vs β_m", "beta_m", "ΔHR (%)", 40, 10);
//! chart.series("L=8", (2..=20).map(|b| (b as f64, 100.0 / b as f64)).collect());
//! let text = chart.render();
//! assert!(text.contains("ΔHR vs β_m"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod csv;
pub mod table;

pub use chart::Chart;
pub use csv::write_csv;
pub use table::Table;
