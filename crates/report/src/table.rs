//! Aligned markdown-style tables.

/// A table under construction.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; extra cells are dropped, missing cells are blank.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        row.truncate(self.header.len());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["feature", "ΔHR"]);
        t.row(["doubling bus", "5.2%"]);
        t.row(["write buffers", "3.1%"]);
        let text = t.render();
        assert!(text.contains("| feature "));
        assert!(text.contains("| doubling bus "));
        assert!(text.lines().nth(1).unwrap().starts_with("|--"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded_long_rows_truncated() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        let text = t.render();
        assert_eq!(text.lines().count(), 4);
        assert!(!text.contains('3'));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
