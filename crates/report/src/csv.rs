//! Minimal CSV output for experiment series.

use std::fs;
use std::io;
use std::path::Path;

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders rows as CSV text.
pub fn to_csv_string<S: AsRef<str>>(header: &[S], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| escape(h.as_ref()))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes rows as a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_csv<S: AsRef<str>>(
    path: impl AsRef<Path>,
    header: &[S],
    rows: &[Vec<String>],
) -> io::Result<()> {
    write_artifact(path, &to_csv_string(header, rows))
}

/// The single write entry point for experiment artifacts: writes
/// already-rendered payload bytes, creating parent directories as
/// needed. Both [`write_csv`] and the manifest writer
/// ([`crate::manifest::write_all`]) funnel through here.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_artifact(path: impl AsRef<Path>, payload: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_basic_csv() {
        let text = to_csv_string(
            &["beta", "dhr"],
            &[
                vec!["2".into(), "3.0".into()],
                vec!["4".into(), "2.5".into()],
            ],
        );
        assert_eq!(text, "beta,dhr\n2,3.0\n4,2.5\n");
    }

    #[test]
    fn escapes_commas_and_quotes() {
        let text = to_csv_string(&["a"], &[vec!["x,y".into()], vec!["say \"hi\"".into()]]);
        assert!(text.contains("\"x,y\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn writes_file_with_parents() {
        let dir = std::env::temp_dir().join("report_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/exp.csv");
        write_csv(&path, &["x"], &[vec!["1".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
