//! Typed experiment artifacts.
//!
//! Experiments used to render their machine-readable outputs straight to
//! disk (each module carried its own "write rows + header to
//! `results/*.csv`" block). An [`Artifact`] instead carries the
//! *structured* payload — CSV rows, a JSON document, or plain text — and
//! rendering/writing happens exactly once, in the manifest writer
//! ([`crate::manifest::write_all`]), so every byte that lands under
//! `results/` is also content-hashed.

use crate::csv::to_csv_string;

/// The payload of one artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Tabular series data, rendered as CSV.
    Csv {
        /// Column names.
        header: Vec<String>,
        /// Row cells, one `Vec` per row.
        rows: Vec<Vec<String>>,
    },
    /// A pre-serialised JSON document.
    Json(String),
    /// Plain text (reports, logs).
    Text(String),
}

/// One named experiment output destined for the results directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// File name relative to the results directory (e.g. `fig1.csv`).
    pub name: String,
    /// The typed payload.
    pub kind: ArtifactKind,
}

impl Artifact {
    /// A CSV artifact from a header and rows.
    pub fn csv<S: Into<String> + Clone>(
        name: impl Into<String>,
        header: &[S],
        rows: Vec<Vec<String>>,
    ) -> Self {
        Artifact {
            name: name.into(),
            kind: ArtifactKind::Csv {
                header: header.iter().cloned().map(Into::into).collect(),
                rows,
            },
        }
    }

    /// A plain-text artifact.
    pub fn text(name: impl Into<String>, content: impl Into<String>) -> Self {
        Artifact {
            name: name.into(),
            kind: ArtifactKind::Text(content.into()),
        }
    }

    /// A JSON artifact from an already-serialised document.
    pub fn json(name: impl Into<String>, content: impl Into<String>) -> Self {
        Artifact {
            name: name.into(),
            kind: ArtifactKind::Json(content.into()),
        }
    }

    /// Renders the payload to the exact bytes written to disk.
    pub fn render(&self) -> String {
        match &self.kind {
            ArtifactKind::Csv { header, rows } => to_csv_string(header, rows),
            ArtifactKind::Json(s) | ArtifactKind::Text(s) => s.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_artifact_renders_like_write_csv() {
        let a = Artifact::csv(
            "t.csv",
            &["a", "b"],
            vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(a.render(), "a,b\n1,2\n3,4\n");
        assert_eq!(a.name, "t.csv");
    }

    #[test]
    fn text_and_json_render_verbatim() {
        assert_eq!(Artifact::text("r.txt", "hello\n").render(), "hello\n");
        assert_eq!(Artifact::json("m.json", "{}\n").render(), "{}\n");
    }
}
