//! A small JSON value model: parse, build, and deterministic rendering.
//!
//! The workspace's `serde` is an offline marker stand-in (no
//! `serde_json`), while the query service (`tradeoff::api`, the
//! `tradeoff-server` binary) needs a real wire format. This module is
//! the shared substrate: a [`Json`] tree with a recursive-descent
//! parser and a writer whose output is deterministic — object keys keep
//! insertion order, numbers render via Rust's shortest round-trip
//! `f64` formatting — so identical values always serialise to identical
//! bytes (the property the CLI/server byte-equality tests pin).
//!
//! The dialect is standard JSON with two deliberate limits: numbers are
//! `f64` (every wire quantity fits: hit ratios, byte counts, latencies)
//! and parsing depth is bounded to keep hostile request bodies from
//! recursing the stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order so rendering is
    /// deterministic and round-trips byte-identically.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// The value under `key`, when this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, when it is one exactly
    /// (non-negative, integral, inside `u64`'s exact-`f64` range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The object's keys as a set (for strict unknown-key validation).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Parses a JSON document (one value, surrounded by nothing but
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the malformation.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Renders the value compactly (`{"a":1,"b":[true,null]}`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// A sorted (key → rendered value) view of an object, for tests and
    /// diffing; non-objects yield an empty map.
    pub fn sorted_entries(&self) -> BTreeMap<String, String> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, v)| (k.clone(), v.render())).collect(),
            _ => BTreeMap::new(),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes a number the way JSON expects: integral values without a
/// fraction part, everything else via `f64`'s shortest round-trip form.
/// Non-finite values (which JSON cannot carry) render as `null`.
fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected {:?} at offset {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near offset {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled; lone
                            // surrogates become the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at offset {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at offset {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?}"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn numbers_render_deterministically() {
        assert_eq!(Json::Num(1.0).render(), "1");
        assert_eq!(Json::Num(0.95).render(), "0.95");
        assert_eq!(Json::Num(-2.0).render(), "-2");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        // Shortest round-trip form re-parses to the same bits.
        let tricky = 0.1 + 0.2;
        let back = Json::parse(&Json::Num(tricky).render()).unwrap();
        assert_eq!(back.as_f64().unwrap().to_bits(), tricky.to_bits());
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = Json::obj(vec![
            ("zeta", Json::num(1.0)),
            ("alpha", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.render(), "{\"zeta\":1,\"alpha\":[true,null]}");
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.keys(), vec!["zeta", "alpha"]);
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse("{\"a\": {\"b\": [1, 2.5, \"x\"]}, \"ok\": true}").unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_u64(), None, "2.5 is not an exact u64");
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let rendered = Json::Str(s.to_string()).render();
        assert_eq!(rendered, "\"line\\nquote\\\"back\\\\slash\\ttab\\u0001\"");
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        assert_eq!(Json::parse("\"\\u00e9\\/\"").unwrap().as_str(), Some("é/"));
    }

    #[test]
    fn malformed_documents_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "01e",
            "--1",
            "\"\\q\"",
            "Infinity",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_bound_rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let fine = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::parse("\"φ ΔHR β_m\"").unwrap();
        assert_eq!(v.as_str(), Some("φ ΔHR β_m"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
